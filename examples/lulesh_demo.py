#!/usr/bin/env python
"""LULESH under the tools: a Table II row, live.

Runs the dependent-task LULESH proxy (-s 8, for speed) four ways:

* no tool, 4 threads — the reference;
* Archer, 1 thread — fast, but blind to the injected race (the runtime
  serialized the tasks, and Archer is thread-centric);
* Taskgrind, 1 thread — ~100x slower, ~6x the memory, finds the race;
* Taskgrind, 4 threads — reproduces the paper's deadlock.

Run with::

    python examples/lulesh_demo.py
"""

from repro.bench.runner import TOOLS
from repro.core.reports import format_report
from repro.errors import SimDeadlock
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.workloads.lulesh import LuleshConfig, run_lulesh


def run(tool_name: str, nthreads: int, racy: bool):
    machine = Machine(seed=0)
    tool = TOOLS[tool_name]()
    if tool_name != "none":
        machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads, source_file="lulesh.cc")
    if tool_name != "none":
        env.rt.ompt.register(tool.make_ompt_shim())
    cfg = LuleshConfig(s=8, racy=racy)
    try:
        machine.run(lambda: run_lulesh(env, cfg))
    except SimDeadlock as exc:
        print(f"  {tool_name} ({nthreads}T): DEADLOCK — {exc}")
        return None
    reports = tool.finalize()
    meter = machine.memory_meter()
    print(f"  {tool_name} ({nthreads}T): {machine.cost.seconds:8.4f} s  "
          f"{meter.total_mib:6.1f} MiB  {len(reports)} report(s)")
    return reports


def main() -> None:
    print("correct LULESH -s 8:")
    run("none", 4, racy=False)
    run("archer", 1, racy=False)
    run("taskgrind", 1, racy=False)

    print("\nracy LULESH -s 8 (kinematics halo dependence removed):")
    run("none", 4, racy=True)
    run("archer", 1, racy=True)     # 0 reports: serialized tasks hide it
    reports = run("taskgrind", 1, racy=True)

    print("\nfirst Taskgrind report:")
    print(format_report(reports[0]))

    print("\nTaskgrind with 4 threads (the paper's Table II deadlock):")
    run("taskgrind", 4, racy=False)


if __name__ == "__main__":
    main()
