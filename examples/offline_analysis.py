#!/usr/bin/env python
"""Offline race analysis: record once, analyze anywhere.

The paper's Section VII notes the determinacy-race pass is embarrassingly
parallel but runs sequentially inside Valgrind.  The reproduction's answer:
dump the segment graph at exit and run Algorithm 1 *outside* the tool —
sequentially, thread-parallel, or on another machine.

This example records a racy LULESH run to a trace file, then analyzes it
offline in all three modes and shows they agree.

Run with::

    python examples/offline_analysis.py
"""

import tempfile
import time
from pathlib import Path

from repro.core.tool import TaskgrindTool
from repro.core.trace import analyze_trace, save_trace
from repro.core.reports import format_report
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.workloads.lulesh import LuleshConfig, run_lulesh


def main() -> None:
    # 1. the instrumented run: record only, no analysis
    machine = Machine(seed=0)
    tool = TaskgrindTool()
    machine.add_tool(tool)
    env = make_env(machine, nthreads=1, source_file="lulesh.cc")
    env.rt.ompt.register(tool.make_ompt_shim())
    machine.run(lambda: run_lulesh(env, LuleshConfig(s=8, racy=True,
                                                     iterations=2)))

    trace_path = Path(tempfile.mkdtemp()) / "lulesh.trace.json"
    save_trace(tool, machine, str(trace_path))
    size_kib = trace_path.stat().st_size / 1024
    segments = len(tool.builder.graph.segments)
    print(f"recorded {segments} segments to {trace_path} ({size_kib:.0f} KiB)")

    # 2. offline analysis, three ways
    for mode in ("naive", "indexed", "parallel"):
        t0 = time.perf_counter()
        reports = analyze_trace(str(trace_path), mode=mode, workers=4)
        dt = (time.perf_counter() - t0) * 1000
        print(f"  {mode:8s}: {len(reports)} race(s) in {dt:6.1f} ms")

    # 3. the reports carry full debug info, exactly as online
    reports = analyze_trace(str(trace_path))
    print("\nfirst offline report:")
    print(format_report(reports[0]))


if __name__ == "__main__":
    main()
