#!/usr/bin/env python
"""The paper's core motivation, live: races inside binary-only code.

A "vendor library" exists only as machine code — here, a program in the
simulated guest ISA, JIT-translated to VEX-style IR and executed by the
guest VM.  Two tasks call into it concurrently and it writes a shared word.

* Compile-time tools (Archer, TaskSanitizer) never instrumented the blob:
  they see *nothing* — the false-negative class the paper opens with.
* Taskgrind, being heavyweight DBI, instruments every translated load and
  store: the race is found, with the allocation site of the shared buffer.

Run with::

    python examples/binary_blob.py
"""

from repro.baselines.archer import ArcherTool
from repro.core.reports import format_report
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.vex.translate import Assembler, GuestVM

VENDOR_BLOB = """
    ; r1 = output pointer, r2 = value: a "fast accumulate" routine
    ld  r3, [r1]
    add r3, r3, r2
    st  [r1], r3
    halt
"""


def run_under(tool_factory):
    machine = Machine(seed=0)
    tool = tool_factory()
    machine.add_tool(tool)
    env = make_env(machine, nthreads=4, source_file="app.c")
    env.rt.ompt.register(tool.make_ompt_shim())
    ctx = env.ctx

    def main() -> None:
        with ctx.function("main", line=1):
            shared = ctx.malloc(8, line=3, name="shared")
            binary = Assembler().assemble(VENDOR_BLOB)

            def call_vendor(tv):
                vm = GuestVM(ctx, binary, symbol="vendor_accumulate",
                             library="libvendor.so")
                vm.regs[1] = shared.addr
                vm.regs[2] = 21
                vm.run()

            def body() -> None:
                ctx.line(8)
                env.task(call_vendor, name="worker1")
                ctx.line(10)
                env.task(call_vendor, name="worker2")
                env.taskwait()
            env.parallel_single(body)

    machine.run(main)
    return tool, tool.finalize()


def main() -> None:
    print("two tasks call vendor_accumulate() — a binary-only routine that")
    print("read-modify-writes a shared word with no synchronisation\n")

    _, archer_reports = run_under(ArcherTool)
    print(f"Archer (compile-time instrumentation): "
          f"{len(archer_reports)} report(s) — blind to the blob")

    tool, tg_reports = run_under(TaskgrindTool)
    print(f"Taskgrind (heavyweight DBI): {len(tg_reports)} report(s)\n")
    for report in tg_reports:
        print(format_report(report))
    assert tg_reports and not archer_reports


if __name__ == "__main__":
    main()
