#!/usr/bin/env python
"""Trial-and-error parallelization with Taskgrind as the referee.

The paper's conclusion sketches Taskgrind as "a more general trial and error
parallel programming assistant".  This example plays that loop out on a
small blocked prefix-sum kernel:

* attempt 1 — embarrassingly-parallel tasks, no dependences: Taskgrind
  reports the loop-carried races;
* attempt 2 — dependences added, but only on the *left* neighbour: the
  remaining race is found, with the conflicting source lines;
* attempt 3 — the correct dependence chain: Taskgrind reports a clean run,
  and the computed values match the serial reference.

Run with::

    python examples/porting_assistant.py
"""

from repro.core.assistant import render_suggestions
from repro.core.reports import format_report
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env

N = 16           # elements
CHUNK = 4        # elements per task


def run_attempt(describe, make_deps):
    """Run one parallelization attempt; returns (reports, values)."""
    machine = Machine(seed=0)
    tool = TaskgrindTool()
    machine.add_tool(tool)
    env = make_env(machine, nthreads=4, source_file="prefix.c")
    env.rt.ompt.register(tool.make_ompt_shim())
    ctx = env.ctx
    values = {}

    def program() -> None:
        with ctx.function("main", line=1):
            a = ctx.malloc(8 * N, line=3, name="a", elem=8)
            for i in range(N):
                a.write(i, i + 1, line=5)

            def single_body() -> None:
                for c in range(0, N, CHUNK):
                    def body(tv, lo=c):
                        # block prefix: a[i] += a[lo-1] (the carry)
                        carry = a.read(lo - 1, line=12) if lo else 0
                        for i in range(lo, lo + CHUNK):
                            a.write(i, a.read(i, line=13) + carry, line=14)
                    ctx.line(10)
                    env.task(body, depend=make_deps(a, c), name=f"blk{c}")
                env.taskwait()

            env.parallel_single(single_body)
            values.update({i: a.read(i) for i in range(N)})

    machine.run(program)
    reports = tool.finalize()
    print(f"--- {describe}: {len(reports)} race report(s)")
    for r in reports[:2]:
        print(format_report(r))
        print(render_suggestions(r))
    print()
    return reports, values


def main() -> None:
    # attempt 1: no dependences at all
    r1, _ = run_attempt(
        "attempt 1 (no dependences)",
        lambda a, c: None)

    # attempt 2: each block depends only on its own range
    r2, _ = run_attempt(
        "attempt 2 (own-range deps only)",
        lambda a, c: {"out": [(a.index_addr(c), 8 * CHUNK)]})

    # attempt 3: the chain — read the left block, own block inout
    r3, vals = run_attempt(
        "attempt 3 (carry dependence added)",
        lambda a, c: {
            "inout": [(a.index_addr(c), 8 * CHUNK)],
            "in": ([(a.index_addr(c - CHUNK), 8 * CHUNK)] if c else []),
        })

    assert r1, "attempt 1 must be flagged"
    assert r2, "attempt 2 must be flagged"
    assert not r3, "attempt 3 must be clean"
    print("attempt 3 is data-race free; Taskgrind signs off the port.")


if __name__ == "__main__":
    main()
