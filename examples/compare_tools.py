#!/usr/bin/env python
"""Tool shoot-out on the benchmark that motivates Taskgrind.

Runs DRB173 (non-sibling task dependences — the dependence clauses look
right but bind nothing, so the program races) under all four modeled tools
and prints the Table I row live: only Taskgrind reports the race.

Then runs the corrected DRB174 to show the flip side: Taskgrind's remaining
false positive from task-descriptor recycling in the runtime's private
allocator (the paper's Section IV-B future-work limitation).

Run with::

    python examples/compare_tools.py
"""

from repro.bench import drb
from repro.bench.runner import run_benchmark
from repro.util.tables import render_table

TOOLS = ["tasksanitizer", "archer", "romp", "taskgrind"]


def row_for(name: str) -> list:
    program = drb.by_name(name)
    cells = [name, "yes" if program.racy else "no"]
    for tool in TOOLS:
        result = run_benchmark(program, tool, nthreads=4, seed=2)
        cells.append(f"{result.cell()} ({result.report_count} reports)")
    return cells


def main() -> None:
    rows = [row_for("173-non-sibling-taskdep"),
            row_for("174-non-sibling-taskdep")]
    print(render_table(
        ["benchmark", "race"] + TOOLS, rows,
        title="Non-sibling task dependences: who sees what"))
    print()
    print("DRB173: the depend clauses bind only siblings, so the uncle and")
    print("nephew race.  TaskSanitizer and ROMP match dependences by")
    print("address across scopes and believe the pair ordered (FN);")
    print("Archer's verdict depends on the observed schedule; Taskgrind's")
    print("sibling-scoped segment graph reports it (TP).")
    print()
    print("DRB174 is the fixed version; Taskgrind still reports a conflict —")
    print("the firstprivate payloads of the two reader tasks share a")
    print("recycled descriptor in the runtime's __kmp_fast_allocate pool,")
    print("which the no-op free cannot reach (paper Section IV-B).")


if __name__ == "__main__":
    main()
