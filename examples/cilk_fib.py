#!/usr/bin/env python
"""Cilk support: fib under Taskgrind, and a race only Taskgrind's model sees.

The paper lists Cilk support as work-in-progress; the simulated runtime is
complete enough to run spawn/sync programs under three analyzers:

* Taskgrind's Cilk shim (series-parallel segment graph);
* SP-bags / Nondeterminator (serial elision);
* nothing (the reference).

Run with::

    python examples/cilk_fib.py
"""

from repro.baselines.spbags import SpBagsTool
from repro.cilk.runtime import make_cilk_env
from repro.core.cilk_shim import attach_cilk
from repro.core.reports import format_report
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine


def fib_program(env, n):
    def fib(frame, k):
        if k < 2:
            return k
        a = env.spawn(frame, fib, k - 1)
        b = fib(frame, k - 2)
        env.sync(frame)
        return a.result + b
    return env.run(fib, n)


def racy_program(env):
    """A spawn/continuation race on a shared accumulator."""
    ctx = env.ctx
    with ctx.function("cilk_main", line=1):
        _racy_body(env)


def _racy_body(env):
    ctx = env.ctx
    total = ctx.malloc(8, line=3, name="total")

    def child(frame):
        total.write(0, total.read(0, line=6) + 1, line=6)

    def root(frame):
        ctx.line(9)
        env.spawn(frame, child)
        total.write(0, total.read(0, line=10) + 1, line=10)   # races!
        env.sync(frame)

    env.run(root)


def main() -> None:
    # 1. clean fib under Taskgrind
    machine = Machine(seed=0)
    tool = TaskgrindTool()
    machine.add_tool(tool)
    env = make_cilk_env(machine, nworkers=4, source_file="fib.cilk")
    attach_cilk(tool, env)
    result_box = {}

    def fib_main():
        with env.ctx.function("cilk_main", line=1):
            result_box["r"] = fib_program(env, 12)
    machine.run(fib_main)
    print(f"cilk fib(12) = {result_box['r']}  "
          f"(Taskgrind: {len(tool.finalize())} races — clean)")

    # 2. the racy accumulator under Taskgrind
    machine = Machine(seed=0)
    tool = TaskgrindTool()
    machine.add_tool(tool)
    env = make_cilk_env(machine, nworkers=4, source_file="acc.cilk")
    attach_cilk(tool, env)
    machine.run(lambda: racy_program(env))
    reports = tool.finalize()
    print(f"\nracy accumulator: Taskgrind found {len(reports)} race(s)")
    print(format_report(reports[0]))

    # 3. the same program under SP-bags (serial elision)
    machine = Machine(seed=0)
    sp = SpBagsTool()
    machine.add_tool(sp)
    env = make_cilk_env(machine, nworkers=4, serial_elision=True,
                        source_file="acc.cilk")
    sp.attach_cilk(env)
    machine.run(lambda: racy_program(env))
    races = sp.finalize()
    print(f"\nSP-bags (serial elision) agrees: {len(races)} race(s), "
          f"kind {races[0].kind}")


if __name__ == "__main__":
    main()
