#!/usr/bin/env python
"""Quickstart: find a determinacy race in a task-parallel program.

This is the 60-second tour of the public API:

1. build a simulated machine and an OpenMP environment,
2. attach the Taskgrind tool (the paper's contribution),
3. write an OpenMP-style task program against the guest API,
4. run it and print the race reports.

Run with::

    python examples/quickstart.py
"""

from repro.core.reports import format_report
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import make_env


def main() -> None:
    # 1. the simulated process + the tool, wired like Valgrind would
    machine = Machine(seed=0)
    taskgrind = TaskgrindTool()
    machine.add_tool(taskgrind)

    # 2. an OpenMP environment on top (4 simulated threads)
    env = make_env(machine, nthreads=4, source_file="quickstart.c")
    env.rt.ompt.register(taskgrind.make_ompt_shim())
    ctx = env.ctx

    # 3. the guest program: two tasks update a shared counter; the second
    #    one is missing its depend clause — a classic determinacy race
    def program() -> None:
        with ctx.function("main", line=1):
            counter = ctx.malloc(8, line=3, name="counter")

            def single_body() -> None:
                ctx.line(6)
                env.task(lambda tv: counter.write(0, 1, line=7),
                         depend={"out": [counter]}, name="producer")
                ctx.line(9)
                env.task(lambda tv: counter.write(0, 2, line=10),
                         name="consumer")        # forgot depend(in: counter)!
                env.taskwait()

            env.parallel_single(single_body)

    # 4. run + analyze
    machine.run(program)
    reports = taskgrind.finalize()

    print(f"Taskgrind found {len(reports)} determinacy race(s):\n")
    for report in reports:
        print(format_report(report))
        print()
    assert reports, "the race must be detected"


if __name__ == "__main__":
    main()
