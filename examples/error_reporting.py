#!/usr/bin/env python
"""The paper's Listings 4-6: what a useful race report looks like.

Transcribes Listing 4 (task.1.c — two sibling tasks both write x[0]) and
prints the ROMP-style report (raw addresses, Listing 5) next to the
Taskgrind report (segment pragma locations + allocation site, Listing 6).

Run with::

    python examples/error_reporting.py
"""

from repro.bench.errorreport import render


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
