"""Setuptools shim so ``pip install -e .`` works without the ``wheel`` package.

The offline environment lacks ``wheel`` (needed for PEP 660 editable builds
with this setuptools version); ``python setup.py develop`` / legacy editable
installs go through this shim instead.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
