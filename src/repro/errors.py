"""Exception hierarchy for the Taskgrind reproduction.

Every failure mode the simulation can hit — guest program faults, simulated
deadlocks, tool crashes that the paper reports (ROMP ``segv``), unsupported
constructs ("ncs" rows of Table I) — is a distinct exception type so the
benchmark runner can classify outcomes exactly the way the paper's tables do.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MachineError(ReproError):
    """Faults raised by the simulated process substrate."""


class SegmentationFault(MachineError):
    """Guest access to an unmapped or protected address."""

    def __init__(self, addr: int, size: int = 1, kind: str = "access") -> None:
        super().__init__(f"segmentation fault: {kind} of {size} byte(s) at {addr:#x}")
        self.addr = addr
        self.size = size
        self.kind = kind


class DoubleFree(MachineError):
    """``free`` of an address that is not a live allocation."""


class OutOfMemory(MachineError):
    """Heap arena exhausted (used to model ROMP blowing up on LULESH)."""


class SimDeadlock(MachineError):
    """No simulated thread is runnable and at least one is blocked.

    Carries a human-readable dump of the blocked threads' wait reasons so the
    Table II harness can report ``deadlock`` cells faithfully.
    """

    def __init__(self, states: dict) -> None:
        lines = ", ".join(f"thread {t}: {why}" for t, why in sorted(states.items()))
        super().__init__(f"simulated deadlock ({lines})")
        self.states = dict(states)


class GuestCrash(ReproError):
    """The *instrumented* execution aborted (models ROMP's ``segv``)."""

    def __init__(self, tool: str, reason: str) -> None:
        super().__init__(f"{tool}: instrumented execution crashed: {reason}")
        self.tool = tool
        self.reason = reason


class NoCompilerSupport(ReproError):
    """The modeled compiler front-end rejects a construct.

    Reproduces the ``ncs`` cells of Table I: TaskSanitizer requires Clang 8.x,
    which lacks several OpenMP 4.5/5.0 tasking features.
    """

    def __init__(self, tool: str, construct: str) -> None:
        super().__init__(f"{tool}: no compiler support for '{construct}'")
        self.tool = tool
        self.construct = construct


class RuntimeModelError(ReproError):
    """Misuse of the simulated parallel runtime (bug in a guest program)."""


class ToolError(ReproError):
    """Internal error of an analysis tool (distinct from guest faults)."""


# ---------------------------------------------------------------------------
# trace-loading taxonomy (strict mode of repro.core.trace)
# ---------------------------------------------------------------------------

class TraceError(ReproError):
    """Base class for trace save/load failures.

    The salvage reader (:func:`repro.core.trace.load_trace_salvaged`) never
    raises these — it degrades to the longest valid prefix instead.  Only
    the strict loaders (``load_trace`` / ``--strict-trace``) escalate.
    """


class TraceFormatError(TraceError, ValueError):
    """The file is not a Taskgrind trace at all (or is structurally broken).

    Subclasses :class:`ValueError` so pre-taxonomy callers that caught
    ``ValueError`` keep working.
    """

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(f"{path}: not a readable taskgrind trace: {reason}")
        self.path = path
        self.reason = reason


class TraceVersionError(TraceFormatError):
    """The trace declares a version this reader does not speak."""

    def __init__(self, path: str, found, expected) -> None:
        ValueError.__init__(
            self,
            f"{path}: unsupported trace version {found!r} "
            f"(this reader speaks {expected}); re-record the trace or "
            "analyze it with a matching repro checkout")
        self.path = path
        self.found = found
        self.expected = expected


class TraceCorruptionError(TraceError):
    """A chunk failed its checksum or the file is truncated mid-chunk.

    Carries the byte offset and chunk sequence number of the first bad
    chunk so operators can tell torn writes from bit rot.  Salvage mode
    (`load_trace_salvaged`, the default offline path) recovers the valid
    prefix instead of raising this.
    """

    def __init__(self, path: str, *, byte_offset: int,
                 chunk_seq: Optional[int], reason: str) -> None:
        where = f"chunk {chunk_seq} " if chunk_seq is not None else ""
        super().__init__(
            f"{path}: corrupt trace: {where}at byte offset {byte_offset}: "
            f"{reason} (rerun without --strict-trace to salvage the valid "
            "prefix)")
        self.path = path
        self.byte_offset = byte_offset
        self.chunk_seq = chunk_seq
        self.reason = reason


# ---------------------------------------------------------------------------
# schedule-document + replay taxonomy (repro.replay, two-phase detection)
# ---------------------------------------------------------------------------

class ScheduleError(ReproError):
    """Base class for ``taskgrind-schedule/1`` save/load/replay failures.

    Unlike traces, schedule documents have **no salvage mode**: replaying a
    guessed prefix of a schedule would silently pin the wrong interleaving
    and every downstream verdict would be about a different execution.  All
    loaders are strict and fail fast.
    """


class ScheduleFormatError(ScheduleError, ValueError):
    """The file is not a Taskgrind schedule document at all."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(
            f"{path}: not a readable taskgrind schedule: {reason}")
        self.path = path
        self.reason = reason


class ScheduleVersionError(ScheduleFormatError):
    """The schedule declares a version this replayer does not speak."""

    def __init__(self, path: str, found, expected) -> None:
        ValueError.__init__(
            self,
            f"{path}: unsupported schedule version {found!r} "
            f"(this replayer speaks {expected}); re-record with a matching "
            "repro checkout")
        self.path = path
        self.found = found
        self.expected = expected


class ScheduleCorruptionError(ScheduleError):
    """A schedule chunk failed its checksum or the stream is truncated.

    There is deliberately no salvage counterpart: a schedule is only usable
    whole, so corruption always refuses to replay.
    """

    def __init__(self, path: str, *, byte_offset: int,
                 chunk_seq: Optional[int], reason: str) -> None:
        where = f"chunk {chunk_seq} " if chunk_seq is not None else ""
        super().__init__(
            f"{path}: corrupt schedule: {where}at byte offset "
            f"{byte_offset}: {reason} (re-record the schedule; partial "
            "replay of a damaged schedule is never attempted)")
        self.path = path
        self.byte_offset = byte_offset
        self.chunk_seq = chunk_seq
        self.reason = reason


class ReplayDivergenceError(ScheduleError):
    """The replayed execution departed from the recorded schedule.

    Carries the first point of disagreement in structured form so a CI log
    (or the fuzz oracle) can print exactly where determinism broke:

    * ``what`` — ``"pick"`` / ``"segment"`` / ``"edge"`` / ``"alloc"`` /
      ``"vclock"`` / ``"count"`` / ``"rng"``;
    * ``index`` — position in the recorded event stream of that kind;
    * ``expected`` / ``actual`` — recorded vs replayed value (for ``edge``
      this is the first mismatched ``[src, dst]`` pair).
    """

    def __init__(self, what: str, index: int, expected, actual,
                 detail: str = "") -> None:
        msg = (f"replay diverged at {what}[{index}]: "
               f"expected {expected!r}, got {actual!r}")
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)
        self.what = what
        self.index = index
        self.expected = expected
        self.actual = actual
        self.detail = detail

    def to_dict(self) -> dict:
        return {"what": self.what, "index": self.index,
                "expected": self.expected, "actual": self.actual,
                "detail": self.detail}


class ProfileError(ReproError):
    """Base class for ``taskgrind-profile/1`` save/load failures.

    Profiles follow the schedule documents' strictness, not the traces':
    a profile with a corrupt bucket chunk would silently misattribute ops,
    so loaders fail fast — there is no salvage mode.
    """


class ProfileFormatError(ProfileError, ValueError):
    """The file is not a Taskgrind profile document at all."""

    def __init__(self, path: str, reason: str) -> None:
        super().__init__(
            f"{path}: not a readable taskgrind profile: {reason}")
        self.path = path
        self.reason = reason


class ProfileCorruptionError(ProfileError):
    """A profile chunk failed its checksum or the stream is truncated."""

    def __init__(self, path: str, *, chunk_seq: Optional[int],
                 reason: str) -> None:
        where = f"chunk {chunk_seq}: " if chunk_seq is not None else ""
        super().__init__(
            f"{path}: corrupt profile: {where}{reason} "
            "(re-profile the run; partial profiles are never loaded)")
        self.path = path
        self.chunk_seq = chunk_seq
        self.reason = reason


# ---------------------------------------------------------------------------
# ingestion-service taxonomy (repro.serve)
# ---------------------------------------------------------------------------

class ServeError(ReproError):
    """Base class for trace-ingestion-service request failures.

    Each subclass carries the structured fields the HTTP layer serializes
    into the error body (``{"error": {"type": ..., "message": ..., ...}}``)
    so clients can branch on machine-readable state instead of parsing
    messages.  Trace-content failures deliberately reuse the existing
    :class:`TraceError` taxonomy — a CRC mismatch at the upload edge is the
    same defect as one found by the offline reader.
    """

    def fields(self) -> dict:
        """Structured extras merged into the HTTP error body."""
        return {}


class ResourceNotFound(ServeError):
    """A trace or job id that the service has never issued."""

    def __init__(self, kind: str, resource_id: str) -> None:
        super().__init__(f"no such {kind}: {resource_id!r}")
        self.kind = kind
        self.resource_id = resource_id

    def fields(self) -> dict:
        return {"resource": self.kind, "id": self.resource_id}


class UploadSequenceError(ServeError):
    """A chunk upload that breaks the dense-prefix contract.

    ``taskgrind-trace/2`` salvage semantics only guarantee loss-not-
    invention for a *dense* chunk prefix, so the server refuses gaps,
    duplicates and post-``end`` uploads outright instead of accepting an
    order it would later have to second-guess.
    """

    def __init__(self, trace_id: str, *, expected_seq: Optional[int],
                 got_seq: int, reason: str) -> None:
        super().__init__(
            f"trace {trace_id}: chunk seq {got_seq} rejected: {reason}"
            + (f" (expected seq {expected_seq})"
               if expected_seq is not None else ""))
        self.trace_id = trace_id
        self.expected_seq = expected_seq
        self.got_seq = got_seq
        self.reason = reason

    def fields(self) -> dict:
        return {"trace_id": self.trace_id, "expected_seq": self.expected_seq,
                "got_seq": self.got_seq, "reason": self.reason}


class ServeOverloadError(ServeError):
    """The service shed this request to protect itself (HTTP 429).

    Raised by the admission-control layer (bounded job-queue depth,
    bounded in-flight upload bytes), an open per-endpoint circuit breaker,
    or a draining server.  Always carries ``retry_after_s`` — the server's
    estimate of when capacity returns — which the HTTP layer surfaces as a
    ``Retry-After`` header so well-behaved clients back off instead of
    hammering an overloaded queue.
    """

    def __init__(self, resource: str, *, retry_after_s: float,
                 limit: Optional[int] = None,
                 current: Optional[int] = None,
                 draining: bool = False) -> None:
        detail = f"{resource} at capacity"
        if limit is not None:
            detail += f" ({current}/{limit})"
        if draining:
            detail = f"{resource}: server draining, not accepting work"
        super().__init__(
            f"overloaded: {detail}; retry after {retry_after_s:.3f}s")
        self.resource = resource
        self.retry_after_s = retry_after_s
        self.limit = limit
        self.current = current
        self.draining = draining

    def fields(self) -> dict:
        return {"resource": self.resource,
                "retry_after_s": round(self.retry_after_s, 4),
                "limit": self.limit, "current": self.current,
                "draining": self.draining}


class StateDirError(ServeError):
    """The durable serve layer cannot use its ``--state-dir``.

    Raised when the directory is unwritable, the write-ahead journal
    declares a schema this build does not speak, or recovery replay fails
    structurally.  The CLI turns this into a one-line blame and a non-zero
    exit — a server asked to be durable must never silently fall back to
    in-memory state.
    """

    def __init__(self, state_dir: str, reason: str) -> None:
        super().__init__(f"state dir {state_dir}: {reason}")
        self.state_dir = state_dir
        self.reason = reason

    def fields(self) -> dict:
        return {"state_dir": self.state_dir, "reason": self.reason}


class JobStateError(ServeError):
    """A job-resource request its current lifecycle state cannot serve."""

    def __init__(self, job_id: str, state: str, reason: str) -> None:
        super().__init__(f"job {job_id} ({state}): {reason}")
        self.job_id = job_id
        self.state = state
        self.reason = reason

    def fields(self) -> dict:
        return {"job_id": self.job_id, "state": self.state,
                "reason": self.reason}


class InjectedFault(ReproError):
    """An error raised on purpose by the fault-injection framework.

    Distinct from every organic failure so tests and the differential
    oracle can tell "the fault we planted" from "a real bug the fault
    uncovered".
    """

    def __init__(self, kind: str, detail: str = "") -> None:
        super().__init__(f"injected fault [{kind}]"
                         + (f": {detail}" if detail else ""))
        self.fault_kind = kind
