"""Exception hierarchy for the Taskgrind reproduction.

Every failure mode the simulation can hit — guest program faults, simulated
deadlocks, tool crashes that the paper reports (ROMP ``segv``), unsupported
constructs ("ncs" rows of Table I) — is a distinct exception type so the
benchmark runner can classify outcomes exactly the way the paper's tables do.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class MachineError(ReproError):
    """Faults raised by the simulated process substrate."""


class SegmentationFault(MachineError):
    """Guest access to an unmapped or protected address."""

    def __init__(self, addr: int, size: int = 1, kind: str = "access") -> None:
        super().__init__(f"segmentation fault: {kind} of {size} byte(s) at {addr:#x}")
        self.addr = addr
        self.size = size
        self.kind = kind


class DoubleFree(MachineError):
    """``free`` of an address that is not a live allocation."""


class OutOfMemory(MachineError):
    """Heap arena exhausted (used to model ROMP blowing up on LULESH)."""


class SimDeadlock(MachineError):
    """No simulated thread is runnable and at least one is blocked.

    Carries a human-readable dump of the blocked threads' wait reasons so the
    Table II harness can report ``deadlock`` cells faithfully.
    """

    def __init__(self, states: dict) -> None:
        lines = ", ".join(f"thread {t}: {why}" for t, why in sorted(states.items()))
        super().__init__(f"simulated deadlock ({lines})")
        self.states = dict(states)


class GuestCrash(ReproError):
    """The *instrumented* execution aborted (models ROMP's ``segv``)."""

    def __init__(self, tool: str, reason: str) -> None:
        super().__init__(f"{tool}: instrumented execution crashed: {reason}")
        self.tool = tool
        self.reason = reason


class NoCompilerSupport(ReproError):
    """The modeled compiler front-end rejects a construct.

    Reproduces the ``ncs`` cells of Table I: TaskSanitizer requires Clang 8.x,
    which lacks several OpenMP 4.5/5.0 tasking features.
    """

    def __init__(self, tool: str, construct: str) -> None:
        super().__init__(f"{tool}: no compiler support for '{construct}'")
        self.tool = tool
        self.construct = construct


class RuntimeModelError(ReproError):
    """Misuse of the simulated parallel runtime (bug in a guest program)."""


class ToolError(ReproError):
    """Internal error of an analysis tool (distinct from guest faults)."""
