"""Resilience self-test: ``python -m repro faults``.

Runs the fixed builtin fault matrix (one plan per fault class) through the
full resilient pipeline and checks, for every plan, the three graceful-
degradation invariants the resilience layer promises:

1. **fired** — the planned fault actually triggered (a chaos test whose
   fault misses its trigger index proves nothing);
2. **no escape** — no unhandled exception left the pipeline: crashes are
   salvaged, trace damage is recovered, analysis failures are quarantined;
3. **subset** — the degraded run's report set is a subset of the fault-free
   baseline's (degradation may lose races, it must never invent them).

Exit code 0 when every plan upholds all three, 1 otherwise; ``--json``
emits the per-plan verdict document (the chaos-smoke CI artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional, Set, Tuple

from repro.core.tool import TaskgrindOptions
from repro.core.trace import analyze_trace_with_stats, save_trace
from repro.errors import InjectedFault
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan, builtin_matrix

#: default guinea pig: racy (missing dependence), several tasks, several
#: mallocs — every builtin trigger index exists
DEFAULT_PROGRAM = "027-taskdependmissing-orig"


def _report_keys(reports) -> Set[Tuple[str, str]]:
    """Normalize reports to comparable label-pair keys."""
    return {r.key() for r in reports}


def _options() -> TaskgrindOptions:
    # parallel analysis so worker faults have a supervisor to hit; a short
    # per-chunk deadline so a planted hang quarantines instead of stalling
    return TaskgrindOptions(analysis="parallel", analysis_workers=2,
                            analysis_deadline_s=0.1, analysis_max_retries=1)


def run_plan(plan: FaultPlan, *, program_name: str = DEFAULT_PROGRAM,
             nthreads: int = 2, seed: int = 0,
             baseline_keys: Optional[Set[Tuple[str, str]]] = None) -> dict:
    """One plan through run → save → salvage-load → analyze; verdict doc."""
    from repro.bench.runner import _find_program, run_benchmark
    program = _find_program(program_name)
    assert program is not None, f"unknown program {program_name!r}"

    if baseline_keys is None:
        baseline = run_benchmark(program, "taskgrind", nthreads=nthreads,
                                 seed=seed, taskgrind_options=_options())
        baseline_keys = _report_keys(baseline.reports)

    verdict = {
        "plan": plan.name,
        "fired": {},
        "escaped": None,
        "run_verdict": None,
        "salvaged_reports": 0,
        "offline_reports": None,
        "coverage_complete": None,
        "subset_ok": None,
        "ok": False,
    }
    tmpdir = tempfile.mkdtemp(prefix="taskgrind-faults-")
    trace_path = os.path.join(tmpdir, "faulted.trace.json")
    try:
        result = run_benchmark(program, "taskgrind", nthreads=nthreads,
                               seed=seed, taskgrind_options=_options(),
                               fault_plan=plan, keep_machine=True)
        verdict["run_verdict"] = result.verdict.name
        verdict["salvaged_reports"] = result.report_count
        run_keys = _report_keys(result.reports)
        fired = dict(plan.fired_summary())

        offline_keys: Set[Tuple[str, str]] = set()
        if result.machine is not None and result.tool_obj is not None:
            try:
                with inject_plan(plan):
                    save_trace(result.tool_obj, result.machine, trace_path)
            except InjectedFault:
                pass            # writer died; tmp cleaned, target untouched
            for name, count in plan.fired_summary().items():
                fired[name] = fired.get(name, 0) + count
        if os.path.exists(trace_path):
            reports, stats = analyze_trace_with_stats(trace_path,
                                                      mode="parallel",
                                                      workers=2)
            offline_keys = _report_keys(reports)
            verdict["offline_reports"] = len(reports)
            verdict["coverage_complete"] = stats["coverage"]["complete"]
        verdict["fired"] = fired
        verdict["escaped"] = False
        # subset: neither the salvaged run nor the offline pass over the
        # damaged trace may report a race the clean baseline did not
        extra = (run_keys | offline_keys) - baseline_keys
        verdict["subset_ok"] = not extra
        if extra:
            verdict["extra_reports"] = sorted(map(list, extra))
        verdict["ok"] = (any(fired.values()) and verdict["subset_ok"])
    except Exception as exc:   # an escape IS the failure being tested for
        verdict["escaped"] = repr(exc)
        verdict["ok"] = False
    finally:
        for name in os.listdir(tmpdir):
            os.unlink(os.path.join(tmpdir, name))
        os.rmdir(tmpdir)
    return verdict


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro faults", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--program", default=DEFAULT_PROGRAM,
                        help="benchmark program to torture "
                             f"(default {DEFAULT_PROGRAM})")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", metavar="KIND@AT", default=None,
                        help="run a single builtin plan by name")
    parser.add_argument("--json", action="store_true",
                        help="emit the verdict document as JSON")
    args = parser.parse_args(argv)

    plans = builtin_matrix()
    if args.only is not None:
        plans = [p for p in plans if p.name == args.only]
        if not plans:
            print(f"no builtin plan named {args.only!r}", file=sys.stderr)
            return 2

    from repro.bench.runner import _find_program, run_benchmark
    program = _find_program(args.program)
    if program is None:
        print(f"unknown program {args.program!r}", file=sys.stderr)
        return 2
    baseline = run_benchmark(program, "taskgrind", nthreads=args.threads,
                             seed=args.seed, taskgrind_options=_options())
    baseline_keys = _report_keys(baseline.reports)

    verdicts = [run_plan(plan, program_name=args.program,
                         nthreads=args.threads, seed=args.seed,
                         baseline_keys=baseline_keys)
                for plan in plans]
    failed = [v for v in verdicts if not v["ok"]]
    doc = {
        "schema": "taskgrind-faults-selftest/1",
        "program": args.program,
        "threads": args.threads,
        "seed": args.seed,
        "baseline_reports": len(baseline_keys),
        "plans": verdicts,
        "ok": not failed,
    }
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        for v in verdicts:
            status = "ok" if v["ok"] else "FAIL"
            fired = sum(v["fired"].values()) if v["fired"] else 0
            detail = (f"run={v['run_verdict']} fired={fired} "
                      f"salvaged={v['salvaged_reports']} "
                      f"offline={v['offline_reports']}")
            if v["escaped"]:
                detail += f" ESCAPED={v['escaped']}"
            elif v["subset_ok"] is False:
                detail += " SPURIOUS-REPORTS"
            print(f"{status:>4}  {v['plan']:<20} {detail}")
        print(f"\n{len(verdicts) - len(failed)}/{len(verdicts)} fault "
              f"classes degrade gracefully "
              f"(baseline: {len(baseline_keys)} report(s))")
    return 0 if not failed else 1


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
