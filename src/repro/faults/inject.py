"""The injector: hooks the hot paths consult when a plan is active.

Zero-overhead contract: every hook begins with a module-level ``None``
check, so with no plan active the instrumented paths pay one attribute
load.  Activation is a context manager (:func:`inject_plan`) so a crashed
test can never leak an armed plan into the next one.

The injector also books every fired point into the metrics registry
(``resilience.faults_fired`` + ``resilience.fault.<kind>``) so campaign
reports can prove the fault actually triggered — a chaos test whose fault
silently missed its trigger index is a green lie.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Optional

from repro.errors import InjectedFault, OutOfMemory
from repro.faults.plan import FaultPlan, FaultPoint


class FaultInjector:
    """Holds the active plan and evaluates trigger points."""

    def __init__(self) -> None:
        self.plan: Optional[FaultPlan] = None
        self._alloc_ops = 0

    # -- lifecycle -----------------------------------------------------------

    def activate(self, plan: FaultPlan) -> None:
        plan.reset()
        self.plan = plan
        self._alloc_ops = 0

    def deactivate(self) -> None:
        self.plan = None
        self._alloc_ops = 0

    @property
    def active(self) -> bool:
        return self.plan is not None

    def _fire(self, point: FaultPoint) -> None:
        point.fired += 1
        from repro.obs.metrics import get_registry
        reg = get_registry()
        reg.counter("resilience.faults_fired").inc()
        reg.counter(f"resilience.fault.{point.kind}").inc()

    # -- hooks ---------------------------------------------------------------

    def on_alloc(self) -> None:
        """Called by the allocator before each malloc; may raise OOM."""
        plan = self.plan
        if plan is None:
            return
        op = self._alloc_ops
        self._alloc_ops += 1
        for point in plan.points_of("alloc-oom"):
            if point.at == op and point.armed:
                self._fire(point)
                raise OutOfMemory(
                    f"injected allocator OOM at malloc op {op}")

    def on_analysis_chunk(self, index: int) -> None:
        """Called at the top of each supervised analysis chunk attempt."""
        plan = self.plan
        if plan is None:
            return
        for point in plan.points_of("worker-exc", "worker-hang"):
            if point.at != index or not point.armed:
                continue
            self._fire(point)
            if point.kind == "worker-hang":
                time.sleep(point.seconds)
            else:
                raise InjectedFault("worker-exc",
                                    f"analysis chunk {index}")

    def on_upload_chunk(self, seq: int, line: bytes) -> bytes:
        """Called by the ingestion server with each uploaded chunk body.

        Mirrors :meth:`on_trace_chunk` on the read side of the wire:
        ``trace-corrupt`` flips a payload byte (the edge CRC check must
        catch it), ``trace-truncate`` models the client connection dying
        mid-stream, and ``save-crash`` models the ingest worker dying
        *after* chunk ``at`` was accepted.  The latter two raise
        :class:`~repro.errors.InjectedFault` for the HTTP layer to map to
        503/500.
        """
        plan = self.plan
        if plan is None:
            return line
        for point in plan.points_of("trace-truncate"):
            if point.at == seq and point.armed:
                self._fire(point)
                raise InjectedFault("trace-truncate",
                                    f"client stream died at chunk {seq}")
        for point in plan.points_of("save-crash"):
            # fires *after* chunk ``at`` was accepted, on the next one
            if point.at + 1 == seq and point.armed:
                self._fire(point)
                raise InjectedFault("save-crash",
                                    f"ingest worker died before chunk {seq}")
        for point in plan.points_of("trace-corrupt"):
            if point.at == seq and point.armed:
                self._fire(point)
                return _flip_payload(line)
        return line

    def on_wal_record(self, seq: int, line: bytes) -> Optional[bytes]:
        """Called by the serve write-ahead journal with each record line.

        ``wal-torn-write`` returns ``None`` — the journal emits a torn
        half-line and freezes, modelling a process killed mid-``write``.
        ``kill-server`` raises :class:`~repro.errors.InjectedFault` at the
        trigger record — the durable layer freezes the journal and the
        chaos bench then restarts the server against the same state dir.
        """
        plan = self.plan
        if plan is None:
            return line
        for point in plan.points_of("wal-torn-write"):
            if point.at == seq and point.armed:
                self._fire(point)
                return None
        for point in plan.points_of("kill-server"):
            if point.at == seq and point.armed:
                self._fire(point)
                raise InjectedFault("kill-server",
                                    f"server killed at WAL record {seq}")
        return line

    def on_trace_chunk(self, seq: int, line: bytes) -> Optional[bytes]:
        """Called by the trace writer with each serialized chunk line.

        Returns the (possibly corrupted) line to write, or ``None`` to
        stop the stream (truncation).  ``save-crash`` raises instead —
        modelling the writer process dying mid-save.
        """
        plan = self.plan
        if plan is None:
            return line
        for point in plan.points_of("trace-truncate"):
            if point.at == seq and point.armed:
                self._fire(point)
                return None
        for point in plan.points_of("save-crash"):
            # fires *after* chunk ``at`` was written, on the next one
            if point.at + 1 == seq and point.armed:
                self._fire(point)
                raise InjectedFault("save-crash",
                                    f"writer killed before chunk {seq}")
        for point in plan.points_of("trace-corrupt"):
            if point.at == seq and point.armed:
                self._fire(point)
                return _flip_payload(line)
        return line


def _flip_payload(line: bytes) -> bytes:
    """Damage a chunk line without breaking the outer JSON framing.

    Swaps the case of the first alphabetic byte inside the payload span,
    which changes the payload's checksum input while keeping the line
    parseable — the reader must catch this via the checksum, not via a
    JSON decode error (the harder, realistic bit-rot case).
    """
    marker = b'"payload"'
    start = line.find(marker)
    if start < 0:
        return line[:-10] + b"CORRUPTED" + line[-1:]
    for i in range(start + len(marker), len(line)):
        b = line[i:i + 1]
        if b.isalpha():
            return line[:i] + b.swapcase() + line[i + 1:]
    return line


#: the process-wide injector (hot paths consult it through the helpers)
_INJECTOR = FaultInjector()


def get_injector() -> FaultInjector:
    return _INJECTOR


def active_plan() -> Optional[FaultPlan]:
    return _INJECTOR.plan


@contextlib.contextmanager
def inject_plan(plan: Optional[FaultPlan]) -> Iterator[FaultInjector]:
    """Arm ``plan`` for the duration of the with-block (None = no-op)."""
    if plan is None:
        yield _INJECTOR
        return
    _INJECTOR.activate(plan)
    try:
        yield _INJECTOR
    finally:
        _INJECTOR.deactivate()
