"""Fault plans: the ``taskgrind-fault-plan/1`` document.

A plan is a list of fault points.  Each point names one injector hook
(``kind``), the trigger index at that hook (``at``), and optional
kind-specific parameters.  The schema is deliberately small and positional
so plans are byte-stable and diffable — the chaos CI matrix checks plans
into the workflow verbatim.

Kinds
-----

==================  ========================================================
kind                fires where
==================  ========================================================
``alloc-oom``       the ``at``-th guest ``malloc`` raises
                    :class:`~repro.errors.OutOfMemory`
``worker-exc``      analysis chunk ``at`` raises
                    :class:`~repro.errors.InjectedFault` in its worker
                    (every attempt, so retries exhaust into quarantine
                    unless ``times`` bounds it)
``worker-hang``     analysis chunk ``at`` sleeps ``seconds`` per attempt —
                    the supervisor's per-chunk deadline must fire
``trace-truncate``  the trace writer stops after chunk ``at`` (and emits a
                    torn half-line, as a crashed writer would)
``trace-corrupt``   the trace writer flips payload bytes of chunk ``at``
                    *after* computing its checksum
``save-crash``      the trace writer raises mid-stream after chunk ``at``
                    (exercises the atomic tmp+rename guarantee)
``wal-torn-write``  the serve write-ahead journal emits a torn half-line
                    at record ``at`` and freezes (a process killed
                    mid-``write``); recovery must drop the torn record
``kill-server``     the serve journal raises at record ``at`` and freezes
                    — models SIGKILL; the chaos bench restarts the server
                    against the same ``--state-dir`` and asserts recovery
==================  ========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

FAULT_PLAN_SCHEMA = "taskgrind-fault-plan/1"

FAULT_KINDS = (
    "alloc-oom",
    "worker-exc",
    "worker-hang",
    "trace-truncate",
    "trace-corrupt",
    "save-crash",
    "wal-torn-write",
    "kill-server",
)

#: kinds that target the analysis supervisor's chunk loop
ANALYSIS_KINDS = ("worker-exc", "worker-hang")
#: kinds that target the trace writer's chunk stream
TRACE_KINDS = ("trace-truncate", "trace-corrupt", "save-crash")
#: kinds that target the serve layer's write-ahead journal — exercised by
#: the kill-restart chaos bench (``repro.bench.serve --faults``), not by
#: the guest-pipeline selftest matrix (the journal never runs there)
SERVE_WAL_KINDS = ("wal-torn-write", "kill-server")


@dataclass
class FaultPoint:
    """One planned failure: ``kind`` fires at trigger index ``at``."""

    kind: str
    at: int
    #: how many times the point fires before disarming (0 = unlimited);
    #: ``worker-exc`` with ``times=1`` fails the first attempt only, so a
    #: retrying supervisor recovers instead of quarantining
    times: int = 0
    #: ``worker-hang`` sleep length per attempt
    seconds: float = 0.05
    fired: int = 0

    def to_dict(self) -> dict:
        doc: dict = {"kind": self.kind, "at": self.at}
        if self.times:
            doc["times"] = self.times
        if self.kind == "worker-hang":
            doc["seconds"] = self.seconds
        return doc

    @property
    def armed(self) -> bool:
        return self.times == 0 or self.fired < self.times

    def validate(self) -> List[str]:
        problems = []
        if self.kind not in FAULT_KINDS:
            problems.append(f"unknown fault kind {self.kind!r} "
                            f"(choose from {list(FAULT_KINDS)})")
        if not isinstance(self.at, int) or self.at < 0:
            problems.append(f"fault point 'at' must be a non-negative "
                            f"integer, got {self.at!r}")
        if self.times < 0:
            problems.append(f"fault point 'times' must be >= 0, "
                            f"got {self.times!r}")
        if self.seconds < 0:
            problems.append(f"fault point 'seconds' must be >= 0, "
                            f"got {self.seconds!r}")
        return problems


@dataclass
class FaultPlan:
    """An ordered list of fault points plus a human-readable name."""

    points: List[FaultPoint] = field(default_factory=list)
    name: str = ""

    # -- construction --------------------------------------------------------

    @classmethod
    def single(cls, kind: str, at: int, **params) -> "FaultPlan":
        """A one-point plan (the common chaos-matrix shape)."""
        return cls(points=[FaultPoint(kind=kind, at=at, **params)],
                   name=f"{kind}@{at}")

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if doc.get("schema") != FAULT_PLAN_SCHEMA:
            raise ValueError(
                f"not a fault plan: schema={doc.get('schema')!r} "
                f"(expected {FAULT_PLAN_SCHEMA})")
        points = [FaultPoint(kind=p["kind"], at=int(p["at"]),
                             times=int(p.get("times", 0)),
                             seconds=float(p.get("seconds", 0.05)))
                  for p in doc.get("faults", [])]
        plan = cls(points=points, name=doc.get("name", ""))
        problems = plan.validate()
        if problems:
            raise ValueError("invalid fault plan: " + "; ".join(problems))
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict:
        return {"schema": FAULT_PLAN_SCHEMA, "name": self.name,
                "faults": [p.to_dict() for p in self.points]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    # -- queries -------------------------------------------------------------

    def validate(self) -> List[str]:
        problems: List[str] = []
        for i, point in enumerate(self.points):
            problems.extend(f"faults[{i}]: {p}" for p in point.validate())
        return problems

    def points_of(self, *kinds: str) -> List[FaultPoint]:
        return [p for p in self.points if p.kind in kinds]

    def fired_summary(self) -> Dict[str, int]:
        """``{kind@at: fired}`` for post-run reporting."""
        return {f"{p.kind}@{p.at}": p.fired for p in self.points}

    def reset(self) -> None:
        for p in self.points:
            p.fired = 0


def load_fault_plan(path: str) -> FaultPlan:
    """Read and validate a plan file (the ``--fault-plan`` argument)."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: fault plan is not valid JSON: {exc}") \
                from exc
    try:
        return FaultPlan.from_dict(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def builtin_matrix() -> List[FaultPlan]:
    """The fixed chaos-smoke matrix (CI + ``python -m repro.faults``).

    One plan per *guest-pipeline* fault class, trigger indices chosen so
    the target structure exists by the time the fault fires (malloc op 1
    exists once the program allocates anything after its first block;
    analysis chunk 0 and trace chunk 1+ always exist for a racy program).
    The serve-journal kinds live in :func:`serve_matrix` — a guest run
    never touches the write-ahead journal, so putting them here would make
    the selftest's "fired" invariant unprovable.
    """
    hang = FaultPlan.single("worker-hang", 0, seconds=0.2)
    return [
        FaultPlan.single("alloc-oom", 1),
        FaultPlan.single("worker-exc", 0),
        hang,
        FaultPlan.single("trace-truncate", 2),
        FaultPlan.single("trace-corrupt", 1),
        FaultPlan.single("save-crash", 1),
    ]


def serve_matrix() -> List[FaultPlan]:
    """The serve kill-chaos matrix (``repro.bench.serve --faults``).

    Record 2 of a fresh journal is the first ``chunk-accepted`` (after
    the header and ``upload-created``) — both plans therefore fire while
    an upload is demonstrably mid-flight.
    """
    return [
        FaultPlan.single("wal-torn-write", 2),
        FaultPlan.single("kill-server", 2),
    ]


_BUILTIN_NAMES: Optional[Dict[str, FaultPlan]] = None


def builtin_plan(name: str) -> FaultPlan:
    """Look up a matrix plan (guest or serve) by its ``kind@at`` name."""
    global _BUILTIN_NAMES
    if _BUILTIN_NAMES is None:
        _BUILTIN_NAMES = {p.name: p
                          for p in builtin_matrix() + serve_matrix()}
    try:
        return _BUILTIN_NAMES[name]
    except KeyError:
        raise ValueError(f"unknown builtin fault plan {name!r} "
                         f"(choose from {sorted(_BUILTIN_NAMES)})") from None
