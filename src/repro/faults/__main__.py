"""``python -m repro.faults`` — alias for the resilience self-test."""

import sys

from repro.faults.selftest import main

if __name__ == "__main__":
    sys.exit(main())
