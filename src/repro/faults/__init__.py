"""Plan-driven fault injection for resilience testing.

The resilience layer (trace/2 salvage, the supervised parallel analysis,
the memory-budget guard) only earns trust if something actually breaks on
demand.  This package is the breaker: a :class:`~repro.faults.plan.FaultPlan`
names *where* to fail (allocator op N, analysis chunk K, trace chunk M) and
the injector hooks compiled into the hot paths fire exactly there — and
nowhere else, at zero cost when no plan is active.

Entry points:

* ``python -m repro run PROGRAM --fault-plan plan.json`` — one faulted run;
* ``python -m repro.fuzz --faults`` — differential fault campaign (salvaged
  report set must be a subset of the fault-free run's);
* ``python -m repro.faults`` — the fixed self-test matrix (CI chaos smoke).
"""

from repro.faults.inject import (FaultInjector, active_plan, get_injector,
                                 inject_plan)
from repro.faults.plan import (FAULT_KINDS, FaultPlan, FaultPoint,
                               load_fault_plan)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "active_plan",
    "get_injector",
    "inject_plan",
    "load_fault_plan",
]
