"""Simulated OpenMP runtime: tasking, dependencies, worksharing, OMPT.

This is the reproduction's ``libomp``: a work-stealing tasking runtime over
the deterministic simulated threads of :mod:`repro.machine.threads`, with the
synchronisation surface the paper's benchmarks exercise:

* parallel regions (fork/join, implicit barrier), ``single``/``master``
* explicit tasks with ``depend`` (``in``/``out``/``inout``/``inoutset``/
  ``mutexinoutset``), ``firstprivate``, ``if``, ``final``, ``mergeable``,
  ``detach``, priorities
* ``taskwait``, ``taskgroup``, explicit barriers, ``critical``/locks
* ``taskloop`` (with ``collapse`` and ``nogroup``), static worksharing loops
* ``threadprivate`` variables (over the simulated ELF-TLS)

Faithful-to-LLVM behaviours that the paper's evaluation depends on are
modeled explicitly:

* on a single-thread team every task is *included* (executed immediately at
  the creation point) — the LLVM issue the paper cites, and the reason Archer
  reports nothing on serialized runs;
* task descriptors (including firstprivate storage) are allocated from the
  runtime's private :class:`~repro.machine.allocator.FastArena`
  (``__kmp_fast_allocate``), which recycles memory even when a tool has
  replaced ``free`` — the mechanism behind the paper's remaining multi-thread
  false positives;
* runtime-internal bookkeeping runs in ``__kmp*`` symbols compiled *without*
  instrumentation, so compile-time tools never see it and Taskgrind filters
  it via its ignore-list.

Tool integration happens exclusively through the OMPT-like callback interface
in :mod:`repro.openmp.ompt`, mirroring how Archer and Taskgrind's OMPT shim
attach to the real runtime.
"""

from repro.openmp.ompt import OmptObserver, OmptDispatcher, TaskFlags, SyncKind
from repro.openmp.tasks import Task, DetachEvent
from repro.openmp.runtime import OmpRuntime
from repro.openmp.api import OmpEnv

__all__ = [
    "OmptObserver", "OmptDispatcher", "TaskFlags", "SyncKind",
    "Task", "DetachEvent", "OmpRuntime", "OmpEnv",
]
