"""Loop-related constructs: ``taskloop`` chunking and ``collapse``.

``taskloop`` splits an iteration space into chunks and creates one explicit
task per chunk; unless ``nogroup`` is given, the chunks run inside an
implicit ``taskgroup``.  ``collapse(2)`` linearizes two nested loops into a
single iteration space before chunking — DRB096 exercises exactly this.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def chunk_iteration_space(lo: int, hi: int, *, num_tasks: Optional[int] = None,
                          grainsize: Optional[int] = None
                          ) -> List[Tuple[int, int]]:
    """Split ``[lo, hi)`` into chunk bounds per the taskloop rules.

    Exactly one of ``num_tasks``/``grainsize`` may be given; with neither, the
    runtime default (one task per iteration, capped at 64 chunks) applies.
    """
    total = hi - lo
    if total <= 0:
        return []
    if num_tasks is not None and grainsize is not None:
        raise ValueError("num_tasks and grainsize are mutually exclusive")
    if grainsize is not None:
        size = max(1, grainsize)
    elif num_tasks is not None:
        size = max(1, (total + num_tasks - 1) // num_tasks)
    else:
        size = max(1, (total + 63) // 64)
    chunks = []
    start = lo
    while start < hi:
        end = min(start + size, hi)
        chunks.append((start, end))
        start = end
    return chunks


def collapse2(lo1: int, hi1: int, lo2: int, hi2: int
              ) -> Tuple[int, int, "Collapse2Map"]:
    """Linearize two nested loops; returns (0, n1*n2, mapper)."""
    n2 = hi2 - lo2
    return 0, (hi1 - lo1) * n2, Collapse2Map(lo1, lo2, n2)


class Collapse2Map:
    """Maps a linear index back to the (i, j) pair of a collapsed 2-loop."""

    def __init__(self, lo1: int, lo2: int, n2: int) -> None:
        self.lo1 = lo1
        self.lo2 = lo2
        self.n2 = n2

    def __call__(self, linear: int) -> Tuple[int, int]:
        return self.lo1 + linear // self.n2, self.lo2 + linear % self.n2
