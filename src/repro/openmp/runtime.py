"""The simulated OpenMP runtime core.

Implements fork/join parallel regions, explicit tasks with the full
dependence surface, task scheduling with per-thread deques and seeded work
stealing, barriers that execute outstanding tasks, taskwait/taskgroup,
``critical``/locks, and detachable tasks — over the deterministic simulated
threads of :mod:`repro.machine.threads`.

Modeled-from-LLVM behaviours (each load-bearing for the paper's evaluation):

* **Serial-team inclusion** — on a team of one thread every explicit task is
  *included*: executed immediately at the creation point, inside the
  creator's stack frame (llvm-project issue #89398, cited by the paper).
* **Descriptor recycling** — task descriptors (header + firstprivate payload)
  come from the runtime's :class:`~repro.machine.allocator.FastArena`
  (``__kmp_fast_allocate``), released at task completion and reused LIFO.
  Tool-level ``free`` replacement does not reach this pool.
* **Runtime opacity** — all internal bookkeeping memory traffic happens
  inside ``__kmp*`` symbols marked ``instrumented=False``: compile-time tools
  cannot see it, and Taskgrind drops it via its default ignore-list.
* **Tied-task scheduling constraint** — a thread suspended at ``taskwait``
  only executes descendants of the suspended task.
"""

from __future__ import annotations

import collections
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import RuntimeModelError
from repro.machine.program import Buffer, GuestContext
from repro.obs.tracer import get_tracer
from repro.openmp.deps import DependencyTracker
from repro.openmp.ompt import (DepKind, Dependence, OmptDispatcher, SyncKind, TaskFlags)
from repro.openmp.tasks import (DESCRIPTOR_HEADER_BYTES, PRIVATE_SLOT_BYTES,
                                DetachEvent, Task, TaskState)

RUNTIME_LIB = "libomp.so"

_TRACER = get_tracer()


class Taskgroup:
    """An active ``taskgroup`` region: counts outstanding member tasks."""

    def __init__(self, owner: Task) -> None:
        self.owner = owner
        self.outstanding = 0
        self.members: List[Task] = []


class TeamBarrier:
    """Task-executing team barrier with generations."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.generation = 0
        self.arrived = 0


class ParallelRegion:
    """One dynamic instance of ``#pragma omp parallel``."""

    _next_id = 0

    def __init__(self, runtime: "OmpRuntime", size: int,
                 encountering_task: Task) -> None:
        self.id = ParallelRegion._next_id
        ParallelRegion._next_id += 1
        self.runtime = runtime
        self.size = size
        self.encountering_task = encountering_task
        self.barrier = TeamBarrier(size)
        self.member_threads: List[int] = []       # sim thread ids by member idx
        self.implicit_tasks: List[Optional[Task]] = [None] * size
        self.incomplete_tasks = 0                  # explicit tasks bound here
        self.single_winner: Dict[int, int] = {}    # single seq -> member idx
        self._single_seen: Dict[int, int] = {}     # member idx -> singles hit
        self.done_members = 0


class TaskView:
    """What an explicit task's body receives: private storage + detach event."""

    def __init__(self, runtime: "OmpRuntime", task: Task) -> None:
        self._runtime = runtime
        self.task = task

    def private(self, name: str) -> Buffer:
        """Firstprivate variable ``name`` as a Buffer over descriptor memory.

        Only deferred tasks have descriptor storage; included/undeferred
        tasks take the synchronous fast path (use :meth:`private_value`).
        """
        if not self.task.descriptor_addr:
            raise RuntimeModelError(
                f"{self.task.label()} has no descriptor (included fast path)")
        addr = self.task.private_addr(name)
        return Buffer(self._runtime.ctx, addr, PRIVATE_SLOT_BYTES,
                      name=f"{name}.private", elem=PRIVATE_SLOT_BYTES)

    def private_value(self, name: str) -> object:
        """The captured value (reads the private copy when it is in memory)."""
        if self.task.descriptor_addr:
            self.private(name).read()
        return self.task.private_values[name]

    @property
    def detach_event(self) -> Optional[DetachEvent]:
        return self.task.detach_event


class OmpRuntime:
    """The runtime instance bound to one guest program run."""

    #: named rng streams this runtime's scheduler consumes (work-stealing
    #: victim order).  The schedule recorder (repro.replay) snapshots the
    #: per-stream draw counts and the replayer cross-checks them: a replayed
    #: run must steal in exactly the recorded pattern.
    SCHED_STREAMS = ("omp.steal",)

    def __init__(self, ctx: GuestContext, *, max_threads: int = 4) -> None:
        self.ctx = ctx
        self.machine = ctx.machine
        self.max_threads = max_threads
        self.ompt = OmptDispatcher()
        # region ids are only used as within-run keys (builder fork/join
        # maps, barrier clock keys) but leak into ``.omp_outlined.rN``
        # symbol names; restart them per runtime so back-to-back runs in
        # one process produce identical symbols (and thus bit-identical
        # attribution profiles)
        ParallelRegion._next_id = 0
        self._next_task_id = 0
        self._deques: Dict[int, collections.deque] = {}
        self._task_stack: Dict[int, List[Task]] = {}
        self._locks: Dict[str, int] = {}            # lock name -> holder thread
        self._mutexinoutset_held: Dict[int, int] = {}   # addr -> task id
        self._regions: List[ParallelRegion] = []
        self._initial_task: Optional[Task] = None

    # -- runtime-internal shared state ----------------------------------------
    #
    # Real runtimes constantly touch shared words (task deques, barrier
    # counters, lock words) from every thread.  These accesses happen in
    # ``__kmp*`` symbols compiled without instrumentation: compile-time tools
    # never see them, Taskgrind drops them via its default ignore-list — and
    # a *naive* DBI run without the ignore-list floods with exactly these
    # conflicts (the paper's Section IV-A motivation).

    def _rt_touch(self, tag: str, *, read_first: bool = False) -> None:
        addr = self.machine.global_var(f"__kmp_{tag}", 8)
        with self.ctx.function("__kmp_runtime_state", instrumented=False,
                               library=RUNTIME_LIB):
            if read_first:
                self.ctx.read_mem(addr, 8)
            self.ctx.write_mem(addr, 8)

    # -- identity helpers ---------------------------------------------------

    def _tid(self) -> int:
        return self.machine.scheduler.current_id()

    def current_task(self) -> Task:
        tid = self._tid()
        stack = self._task_stack.get(tid)
        if stack:
            return stack[-1]
        return self.initial_task()

    def initial_task(self) -> Task:
        if self._initial_task is None:
            self._initial_task = Task(
                runtime=self, tid=self._new_task_id(), fn=None, parent=None,
                flags=TaskFlags.INITIAL, symbol_name="main")
            self._initial_task.state = TaskState.RUNNING
            self._initial_task.dep_tracker = DependencyTracker()  # type: ignore[attr-defined]
            self._initial_task.group_stack = []                   # type: ignore[attr-defined]
        return self._initial_task

    def _new_task_id(self) -> int:
        self._next_task_id += 1
        return self._next_task_id - 1

    def current_region(self) -> Optional[ParallelRegion]:
        task = self.current_task()
        return task.region

    def thread_num(self) -> int:
        """``omp_get_thread_num()`` — member index within the current team."""
        region = self.current_region()
        if region is None:
            return 0
        return region.member_threads.index(self._tid())

    def num_threads(self) -> int:
        region = self.current_region()
        return region.size if region is not None else 1

    # -- parallel regions ----------------------------------------------------------

    def parallel(self, fn: Callable[[int], None],
                 num_threads: Optional[int] = None) -> ParallelRegion:
        """Run ``fn(member_index)`` on a team; implicit barrier at the end."""
        size = num_threads if num_threads is not None else self.max_threads
        if size < 1:
            raise RuntimeModelError(f"invalid team size {size}")
        encountering = self.current_task()
        region = ParallelRegion(self, size, encountering)
        self._regions.append(region)
        self.ompt.emit("on_parallel_begin", region, encountering)

        my_tid = self._tid()
        region.member_threads = [my_tid] + [-1] * (size - 1)
        workers = []
        for member in range(1, size):
            t = self.machine.new_thread(
                self._worker_entry(region, member, fn), name=f"omp.w{member}")
            region.member_threads[member] = t.id
            workers.append(t)
            self.ompt.emit("on_thread_begin", t.id)

        # the encountering thread is member 0
        self._implicit_body(region, 0, fn)

        self.machine.scheduler.block_until(
            lambda: region.done_members == size, "parallel join")
        self.ompt.emit("on_parallel_end", region, encountering)
        return region

    def _worker_entry(self, region: ParallelRegion, member: int,
                      fn: Callable[[int], None]) -> Callable[[], None]:
        def entry() -> None:
            # wait until the encountering thread has registered every member
            self.machine.scheduler.block_until(
                lambda: all(t >= 0 for t in region.member_threads),
                "team setup")
            self._implicit_body(region, member, fn)
            self.ompt.emit("on_thread_end", self._tid())
        return entry

    def _implicit_body(self, region: ParallelRegion, member: int,
                       fn: Callable[[int], None]) -> None:
        tid = self._tid()
        task = Task(runtime=self, tid=self._new_task_id(), fn=None,
                    parent=region.encountering_task,
                    flags=TaskFlags.IMPLICIT, region=region,
                    symbol_name=f".omp_outlined.r{region.id}")
        task.dep_tracker = DependencyTracker()      # type: ignore[attr-defined]
        task.group_stack = []                       # type: ignore[attr-defined]
        task.state = TaskState.RUNNING
        task.exec_thread = tid
        region.implicit_tasks[member] = task
        self._task_stack.setdefault(tid, []).append(task)
        self.ompt.emit("on_implicit_task_begin", region, task)
        with self.ctx.function(task.symbol_name, line=0):
            fn(member)
            self.barrier(implicit=True)
        self.ompt.emit("on_implicit_task_end", region, task)
        self._task_stack[tid].pop()
        task.state = TaskState.COMPLETED
        region.done_members += 1

    # -- explicit tasks ---------------------------------------------------------------

    def create_task(self, fn: Callable[[TaskView], None], *,
                    depend: Optional[Dict[str, Sequence]] = None,
                    firstprivate: Optional[Dict[str, object]] = None,
                    lazy_capture: Optional[Dict[str, Buffer]] = None,
                    if_: bool = True, final: bool = False,
                    mergeable: bool = False, untied: bool = False,
                    detachable: bool = False,
                    priority: int = 0, name: Optional[str] = None,
                    annotate_deferrable: bool = False) -> Task:
        """``#pragma omp task`` — create (and possibly inline-execute) a task."""
        creator = self.current_task()
        region = creator.region
        loc = self.ctx.current_location
        # parse (and validate) the depend clause before any bookkeeping so a
        # malformed clause cannot leave counters half-updated
        deps = self._parse_depend(depend)
        self.machine.cost.charge_task(self.machine.scheduler.current())

        flags = TaskFlags.EXPLICIT
        serial_team = region is None or region.size == 1
        if not if_:
            flags |= TaskFlags.UNDEFERRED
        if final or (creator.flags & TaskFlags.FINAL and not creator.is_implicit):
            flags |= TaskFlags.FINAL | TaskFlags.INCLUDED
        if serial_team:
            # LLVM executes every task included on a serial team
            flags |= TaskFlags.INCLUDED
        if untied:
            flags |= TaskFlags.UNTIED
        if mergeable:
            flags |= TaskFlags.MERGEABLE
            if flags & (TaskFlags.UNDEFERRED | TaskFlags.INCLUDED):
                flags |= TaskFlags.MERGED
        if detachable:
            flags |= TaskFlags.DETACHABLE

        task = Task(runtime=self, tid=self._new_task_id(), fn=fn,
                    parent=creator, flags=flags, region=region,
                    symbol_name=name or f".omp_task.{self._next_task_id - 1}",
                    create_loc=loc, priority=priority,
                    annotated_deferrable=annotate_deferrable)
        task.lazy_sources = dict(lazy_capture or {})
        task.dep_tracker = DependencyTracker()       # type: ignore[attr-defined]
        task.group_stack = []                        # type: ignore[attr-defined]
        task.create_thread = self._tid()
        self._rt_touch("task_counter", read_first=True)
        if detachable:
            task.detach_event = DetachEvent(task)

        # -- firstprivate capture: the *reads* of the originals happen in user
        # context at the pragma (by-value semantics); lazy captures are
        # re-read by the task itself at start instead.
        fp = firstprivate or {}
        off = 0
        for pname, src in fp.items():
            if isinstance(src, Buffer):
                task.private_values[pname] = src.read()
            else:
                task.private_values[pname] = src
            task.private_offsets[pname] = off
            off += PRIVATE_SLOT_BYTES

        deferred = not (flags & (TaskFlags.INCLUDED | TaskFlags.UNDEFERRED))
        if deferred:
            # Deferred tasks get a heap descriptor from the runtime's private
            # pool (``__kmp_fast_allocate`` — recycles even under a tool's
            # free replacement).  Included/undeferred tasks take LLVM's
            # synchronous fast path: no descriptor at all.
            with self.ctx.function("__kmpc_omp_task_alloc",
                                   instrumented=False, library=RUNTIME_LIB):
                size_needed = DESCRIPTOR_HEADER_BYTES + \
                    PRIVATE_SLOT_BYTES * max(1, len(fp))
                task.descriptor_addr = self.machine.fast_arena.alloc(
                    max(size_needed, 64), site=loc, thread=self._tid())

        # -- taskgroup membership (innermost active group of the creator)
        group = creator.group_stack[-1] if getattr(creator, "group_stack", None) \
            else creator.taskgroup
        task.taskgroup = group
        if group is not None:
            group.outstanding += 1
            group.members.append(task)

        # -- bookkeeping
        creator.children_incomplete += 1
        if region is not None:
            region.incomplete_tasks += 1

        # -- dependences (sibling-scoped: tracked on the *parent*)
        task.deps = deps
        if _TRACER.enabled:
            _TRACER.instant("task.create", task.create_thread, cat="task",
                            args={"task": task.tid, "label": task.label(),
                                  "deferred": deferred, "deps": len(deps)})
        self.ompt.emit("on_task_create", task, creator)
        if deps:
            self.ompt.emit("on_task_dependences", task, deps)
            preds = creator.dep_tracker.register(task, deps)  # type: ignore[attr-defined]
            for pred, dep in preds:
                self.ompt.emit("on_task_dependence_pair", pred, task, dep)
                if not pred.done:
                    task.dep_pending += 1
                    pred.successors.append(task)
                    pred.successor_deps.append(dep)

        if annotate_deferrable:
            # the paper's LULESH annotation: user code informs Taskgrind the
            # task is semantically deferrable even if LLVM serialized it
            self.ctx.client_request("taskgrind_deferrable", task)

        # -- dispatch
        if task.flags & (TaskFlags.INCLUDED | TaskFlags.UNDEFERRED):
            self._wait_for_deps(task)
            self._execute_task(task)
        elif task.dep_pending == 0:
            self._enqueue(task, self._tid())
            self.machine.scheduler.yield_point()     # let thieves steal
        # else: released when the last predecessor completes
        return task

    def _parse_depend(self, depend: Optional[Dict[str, Sequence]]
                      ) -> List[Dependence]:
        deps: List[Dependence] = []
        if not depend:
            return deps
        for kind_name, items in depend.items():
            kind = DepKind(kind_name)
            for item in items:
                if isinstance(item, Buffer):
                    deps.append(Dependence(kind, item.addr, item.size))
                elif isinstance(item, tuple):
                    deps.append(Dependence(kind, item[0], item[1]))
                else:
                    deps.append(Dependence(kind, int(item)))
        return deps

    def _wait_for_deps(self, task: Task) -> None:
        """Undeferred/included tasks must still respect their dependences."""
        while task.dep_pending > 0:
            other = self._find_work(descendant_of=None)
            if other is not None:
                self._execute_task(other)
            else:
                self.machine.scheduler.block_until(
                    lambda: task.dep_pending == 0 or self._work_visible(),
                    f"deps of {task.label()}")

    # -- queues / stealing -----------------------------------------------------------

    def _enqueue(self, task: Task, tid: int) -> None:
        task.state = TaskState.READY
        self._rt_touch(f"deque.t{tid}", read_first=True)
        self._deques.setdefault(tid, collections.deque()).append(task)

    def _work_visible(self, descendant_of: Optional[Task] = None) -> bool:
        """True when some queued task is *eligible* for this thread.

        Eligibility (not mere queue occupancy) matters: a task blocked by a
        held ``mutexinoutset`` must not wake the waiter, or the waiter would
        livelock between the scheduler and an empty :meth:`_find_work`.
        """
        for dq in self._deques.values():
            for task in dq:
                if self._eligible(task, descendant_of):
                    return True
        return False

    def _mutex_free(self, task: Task) -> bool:
        return all(self._mutexinoutset_held.get(a, task.tid) == task.tid
                   for a in task.mutexinoutset_addrs)

    def _eligible(self, task: Task, descendant_of: Optional[Task]) -> bool:
        if not self._mutex_free(task):
            return False
        if descendant_of is None:
            return True
        p = task.parent
        while p is not None:
            if p is descendant_of:
                return True
            p = p.parent
        return False

    def _find_work(self, descendant_of: Optional[Task] = None) -> Optional[Task]:
        """Pop an eligible task: own deque LIFO first, then steal FIFO."""
        tid = self._tid()
        own = self._deques.get(tid)
        if own:
            for i in range(len(own) - 1, -1, -1):
                if self._eligible(own[i], descendant_of):
                    task = own[i]
                    del own[i]
                    self._rt_touch(f"deque.t{tid}", read_first=True)
                    return task
        victims = [t for t, dq in self._deques.items() if t != tid and dq]
        if victims:
            order = list(victims)
            self.machine.rng.shuffle("omp.steal", order)
            for victim in order:
                dq = self._deques[victim]
                for i in range(len(dq)):
                    if self._eligible(dq[i], descendant_of):
                        task = dq[i]
                        del dq[i]
                        self._rt_touch(f"deque.t{victim}", read_first=True)
                        return task
        return None

    # -- execution -----------------------------------------------------------------------

    def _execute_task(self, task: Task) -> None:
        tid = self._tid()
        self.machine.cost.charge_schedule(self.machine.scheduler.current())
        task.state = TaskState.RUNNING
        task.exec_thread = tid
        for addr in task.mutexinoutset_addrs:
            self._mutexinoutset_held[addr] = task.tid
            # the mutual exclusion is a real lock inside the runtime; TSan's
            # interceptors (Archer) see it as a mutex
            self.ompt.emit("on_mutex_acquired", f"mutexinoutset:{addr:#x}",
                           tid)
        self._task_stack.setdefault(tid, []).append(task)
        self.ompt.emit("on_task_schedule_begin", task, tid)
        loc = task.create_loc
        with self.ctx.function(task.symbol_name,
                               file=loc.file if loc else self.ctx.source_file,
                               line=loc.line if loc else 0):
            # Prologue register spills: real outlined functions write their
            # frame before any user statement.  Sanitizer instrumentation
            # never covers spill slots (compile-time tools are blind), but
            # DBI sees every one of them — with frame reuse this is the
            # Section IV-D false-positive source at scale.
            tctx = self.machine.context(tid)
            spill = tctx.stack.alloca(32, "spill")      # in the task frame
            with self.ctx.function(".omp_task_prologue", instrumented=False):
                self.ctx.write_mem(spill, 32)
            if task.descriptor_addr and task.private_offsets:
                # The outlined prologue copies the firstprivate payload into
                # the descriptor via libc memcpy: invisible to compile-time
                # tools, *visible* to DBI tools — and ``memcpy`` is not on
                # Taskgrind's ``__kmp*`` ignore-list, so descriptor recycling
                # surfaces there (the paper's residual multi-thread FPs).
                with self.ctx.function("memcpy", instrumented=False,
                                       library="libc.so.6"):
                    for pname in task.private_offsets:
                        self.ctx.write_mem(task.private_addr(pname),
                                           PRIVATE_SLOT_BYTES)
            if task.lazy_sources:
                # Reference-style capture lowering: the task re-reads the
                # original location at start (DRB100/101).  Emitted in a
                # dedicated helper symbol so ROMP's runtime integration can
                # reclassify it.
                with self.ctx.function(".omp.copyin", instrumented=True):
                    for src in task.lazy_sources.values():
                        src.read()
            if task.fn is not None:
                task.fn(TaskView(self, task))
        self._task_stack[tid].pop()
        for addr in task.mutexinoutset_addrs:
            if self._mutexinoutset_held.get(addr) == task.tid:
                del self._mutexinoutset_held[addr]
                self.ompt.emit("on_mutex_released",
                               f"mutexinoutset:{addr:#x}", tid)
        if (task.detach_event is not None
                and not task.detach_event.fulfilled):
            task.state = TaskState.DETACHED
            self.ompt.emit("on_task_schedule_end", task, tid, False)
            self.machine.scheduler.yield_point()
            return
        self._complete_task(task)
        # task completion is a task scheduling point: give the scheduler a
        # chance to run another thread (e.g. a thief picking up a successor)
        self.machine.scheduler.yield_point()

    def _complete_task(self, task: Task) -> None:
        tid = self._tid()
        self.ompt.emit("on_task_schedule_end", task, tid, True)
        task.state = TaskState.COMPLETED
        if _TRACER.enabled:
            _TRACER.instant("task.complete", tid, cat="task",
                            args={"task": task.tid, "label": task.label()})
        # release the descriptor back to the fast arena (recycles even under
        # Taskgrind's no-op free — the paper's future-work limitation)
        if task.descriptor_addr:
            with self.ctx.function("__kmp_fast_free", instrumented=False,
                                   library=RUNTIME_LIB):
                self.machine.fast_arena.release(task.descriptor_addr)
        if task.parent is not None:
            task.parent.children_incomplete -= 1
        if task.taskgroup is not None:
            task.taskgroup.outstanding -= 1
        if task.region is not None and not task.is_implicit:
            task.region.incomplete_tasks -= 1
        for succ in task.successors:
            succ.dep_pending -= 1
            if succ.dep_pending == 0 and succ.state == TaskState.CREATED:
                self._enqueue(succ, tid)

    def _on_detach_fulfill(self, task: Task) -> None:
        tid = self._tid()
        self.ompt.emit("on_task_detach_fulfill", task, tid)
        if task.state == TaskState.DETACHED:
            self._complete_task(task)
        # if still RUNNING, completion happens normally at body end

    # -- synchronisation -------------------------------------------------------------------

    def taskwait(self) -> None:
        """``#pragma omp taskwait`` — wait for the current task's children."""
        task = self.current_task()
        tid = self._tid()
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        if _TRACER.enabled:
            _TRACER.instant("sync.taskwait", tid, cat="sync",
                            args={"task": task.label(),
                                  "children": task.children_incomplete})
        self.ompt.emit("on_sync_region_begin", SyncKind.TASKWAIT, task, tid)
        while task.children_incomplete > 0:
            # tied-task scheduling constraint: descendants only
            other = self._find_work(descendant_of=task)
            if other is not None:
                self._execute_task(other)
            else:
                self.machine.scheduler.block_until(
                    lambda: task.children_incomplete == 0
                    or self._work_visible(task),
                    f"taskwait in {task.label()}")
        self.ompt.emit("on_sync_region_end", SyncKind.TASKWAIT, task, tid)

    def taskgroup(self, body: Callable[[], None]) -> None:
        """``#pragma omp taskgroup { body() }``."""
        task = self.current_task()
        tid = self._tid()
        group = Taskgroup(task)
        task.group_stack.append(group)           # type: ignore[attr-defined]
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        if _TRACER.enabled:
            _TRACER.instant("sync.taskgroup", tid, cat="sync",
                            args={"task": task.label()})
        self.ompt.emit("on_sync_region_begin", SyncKind.TASKGROUP, task, tid)
        try:
            body()
        finally:
            task.group_stack.pop()               # type: ignore[attr-defined]
            while group.outstanding > 0:
                other = self._find_work(descendant_of=task)
                if other is not None:
                    self._execute_task(other)
                else:
                    self.machine.scheduler.block_until(
                        lambda: group.outstanding == 0
                        or self._work_visible(task),
                        f"taskgroup in {task.label()}")
            self.ompt.emit("on_sync_region_end", SyncKind.TASKGROUP, task, tid)

    def barrier(self, implicit: bool = False) -> None:
        """Team barrier; executes outstanding tasks while waiting."""
        region = self.current_region()
        task = self.current_task()
        tid = self._tid()
        kind = SyncKind.BARRIER_IMPLICIT if implicit else SyncKind.BARRIER
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        if _TRACER.enabled:
            _TRACER.instant("sync.barrier", tid, cat="sync",
                            args={"implicit": implicit,
                                  "team": region.size if region else 1})
        self.ompt.emit("on_sync_region_begin", kind, task, tid)
        if region is None or region.size == 1:
            # serial team: just drain any remaining tasks
            while True:
                other = self._find_work()
                if other is None:
                    break
                self._execute_task(other)
            self.ompt.emit("on_sync_region_end", kind, task, tid)
            return

        bar = region.barrier
        my_gen = bar.generation
        self._rt_touch(f"barrier.r{region.id}", read_first=True)
        bar.arrived += 1
        while True:
            if bar.generation > my_gen:
                break
            if bar.arrived == bar.size and region.incomplete_tasks == 0:
                # last observer releases everyone
                bar.generation += 1
                bar.arrived = 0
                break
            other = self._find_work()
            if other is not None:
                bar.arrived -= 1
                self._execute_task(other)
                bar.arrived += 1
                continue
            self.machine.scheduler.block_until(
                lambda: bar.generation > my_gen
                or (bar.arrived == bar.size and region.incomplete_tasks == 0)
                or self._work_visible(),
                f"barrier region {region.id}")
        self.ompt.emit("on_sync_region_end", kind, task, tid)

    # -- worksharing ----------------------------------------------------------------------

    def single(self, body: Callable[[], None], *, nowait: bool = False) -> bool:
        """``#pragma omp single`` — first arriver executes; barrier unless nowait."""
        region = self.current_region()
        if region is None:
            body()
            return True
        member = self.thread_num()
        seq = region._single_seen.get(member, 0)
        region._single_seen[member] = seq + 1
        winner = region.single_winner.setdefault(seq, member)
        executed = winner == member
        if executed:
            body()
        if not nowait:
            self.barrier()
        return executed

    def master(self, body: Callable[[], None]) -> bool:
        """``#pragma omp master`` — member 0 only, no barrier."""
        if self.thread_num() == 0:
            body()
            return True
        return False

    def static_range(self, lo: int, hi: int) -> range:
        """``#pragma omp for schedule(static)`` — this thread's block."""
        region = self.current_region()
        n = region.size if region else 1
        me = self.thread_num()
        total = hi - lo
        chunk = (total + n - 1) // n
        start = lo + me * chunk
        return range(start, min(start + chunk, hi))

    # -- mutual exclusion ------------------------------------------------------------------

    def lock_acquire(self, name: str) -> None:
        tid = self._tid()
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        self.machine.scheduler.block_until(
            lambda: name not in self._locks, f"lock {name}")
        self._locks[name] = tid
        self._rt_touch(f"lock.{name}", read_first=True)
        self.ompt.emit("on_mutex_acquired", name, tid)

    def lock_release(self, name: str) -> None:
        tid = self._tid()
        if self._locks.get(name) != tid:
            raise RuntimeModelError(f"unlock of {name} by non-owner")
        del self._locks[name]
        self.ompt.emit("on_mutex_released", name, tid)
