"""OpenMP task-dependence matching.

Dependences order *sibling* tasks (children of the same parent) that name
overlapping storage locations.  The matching rules implemented here follow
the OpenMP 5.x specification:

* ``out``/``inout`` ("writers") are ordered after every earlier sibling that
  referenced an overlapping location with any dependence type;
* ``in`` ("readers") are ordered after earlier writers only — concurrent
  readers run in parallel;
* ``inoutset`` members form a *set*: mutually unordered, but ordered against
  earlier and later non-``inoutset`` references (this is the dependence type
  TaskSanitizer lacks and Taskgrind supports — Table I rows 131/133/165/168);
* ``mutexinoutset`` adds mutual exclusion *without* ordering among the set's
  members, plus ``inoutset``-like ordering against everyone else.

Because dependences only bind siblings, two tasks created by *different*
parents with matching ``depend`` clauses are **not** ordered — the
DRB173 "non-sibling-taskdep" race that only Taskgrind catches in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple, TYPE_CHECKING

from repro.openmp.ompt import DepKind, Dependence

if TYPE_CHECKING:  # pragma: no cover
    from repro.openmp.tasks import Task


@dataclass
class _AddrState:
    """Dependence history for one storage location within one sibling set."""

    #: last "writer generation": tasks every later reference must follow
    last_writers: List["Task"] = field(default_factory=list)
    #: readers since the last writer generation
    readers_since: List["Task"] = field(default_factory=list)
    #: which kind produced the current writer generation (for set semantics)
    writer_kind: DepKind = DepKind.OUT
    #: what the current (inout)set generation itself had to follow — a task
    #: *joining* the set must inherit exactly these predecessors
    set_preds: List["Task"] = field(default_factory=list)


class DependencyTracker:
    """Per-parent-task dependence matcher."""

    def __init__(self) -> None:
        self._state: Dict[int, _AddrState] = {}

    def register(self, task: "Task",
                 deps: List[Dependence]) -> List[Tuple["Task", Dependence]]:
        """Record ``task``'s dependences; returns (predecessor, dep) pairs.

        The caller wires the returned edges into the scheduler (pending
        counts) and announces them via OMPT ``task_dependence`` events.
        """
        preds: List[Tuple["Task", Dependence]] = []
        seen: Set[int] = set()

        def add_pred(p: "Task", dep: Dependence) -> None:
            if p is task or p.tid in seen:
                return
            seen.add(p.tid)
            preds.append((p, dep))

        for dep in deps:
            st = self._state.get(dep.addr)
            if st is None:
                st = self._state[dep.addr] = _AddrState()

            if dep.kind == DepKind.IN:
                for w in st.last_writers:
                    add_pred(w, dep)
                st.readers_since.append(task)
                continue

            if dep.kind in (DepKind.INOUTSET, DepKind.MUTEXINOUTSET):
                if st.writer_kind == dep.kind and not st.readers_since \
                        and st.last_writers:
                    # joining the current set: mutually unordered with the
                    # other members, but still ordered after everything the
                    # set generation itself followed
                    for p in st.set_preds:
                        add_pred(p, dep)
                    st.last_writers.append(task)
                else:
                    preds_now = list(st.last_writers) + list(st.readers_since)
                    for p in preds_now:
                        add_pred(p, dep)
                    st.set_preds = preds_now
                    st.last_writers = [task]
                    st.readers_since = []
                    st.writer_kind = dep.kind
                if dep.kind == DepKind.MUTEXINOUTSET and \
                        dep.addr not in task.mutexinoutset_addrs:
                    task.mutexinoutset_addrs.append(dep.addr)
                continue

            # OUT / INOUT: follow everything seen so far at this address
            for w in st.last_writers:
                add_pred(w, dep)
            for r in st.readers_since:
                add_pred(r, dep)
            st.last_writers = [task]
            st.readers_since = []
            st.writer_kind = dep.kind

        return preds
