"""User-facing OpenMP API: what benchmark programs actually call.

:class:`OmpEnv` is a thin facade over :class:`repro.openmp.runtime.OmpRuntime`
shaped so benchmark code reads like the pragmas it transcribes::

    def program(env: OmpEnv) -> None:
        ctx = env.ctx
        x = ctx.malloc(8, line=3)

        def region(tid: int) -> None:
            def single_body() -> None:
                env.task(lambda tv: x.write(0, line=9), name="t1")
                env.task(lambda tv: x.write(0, line=12), name="t2")
            env.single(single_body)

        env.parallel(region)

The benchmark runner builds one :class:`OmpEnv` per run (program × tool ×
thread count × seed) via :func:`make_env`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, Optional, Sequence

from repro.machine.machine import Machine
from repro.machine.program import Buffer, GuestContext
from repro.openmp.loops import chunk_iteration_space, collapse2
from repro.openmp.runtime import OmpRuntime, ParallelRegion, Task, TaskView


class OmpLock:
    """``omp_lock_t`` over the runtime's named locks."""

    _counter = 0

    def __init__(self, env: "OmpEnv", name: Optional[str] = None) -> None:
        if name is None:
            name = f"omp_lock_{OmpLock._counter}"
            OmpLock._counter += 1
        self.env = env
        self.name = name

    def acquire(self) -> None:
        self.env.rt.lock_acquire(self.name)

    def release(self) -> None:
        self.env.rt.lock_release(self.name)

    def __enter__(self) -> "OmpLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class OmpEnv:
    """One guest program's OpenMP environment."""

    def __init__(self, ctx: GuestContext, *, nthreads: int = 4) -> None:
        self.ctx = ctx
        self.nthreads = nthreads
        self.rt = OmpRuntime(ctx, max_threads=nthreads)

    # -- regions -------------------------------------------------------------

    def parallel(self, fn: Callable[[int], None],
                 num_threads: Optional[int] = None) -> ParallelRegion:
        """``#pragma omp parallel`` — run ``fn(thread_num)`` on a team."""
        return self.rt.parallel(fn, num_threads)

    def parallel_single(self, fn: Callable[[], None],
                        num_threads: Optional[int] = None) -> None:
        """The ubiquitous ``parallel`` + ``single`` prologue of task codes."""
        def region(_tid: int) -> None:
            self.rt.single(fn)
        self.rt.parallel(region, num_threads)

    def single(self, fn: Callable[[], None], *, nowait: bool = False) -> bool:
        return self.rt.single(fn, nowait=nowait)

    def master(self, fn: Callable[[], None]) -> bool:
        return self.rt.master(fn)

    # -- tasks ---------------------------------------------------------------------

    def task(self, fn: Callable[[TaskView], None], *,
             depend: Optional[Dict[str, Sequence]] = None,
             firstprivate: Optional[Dict[str, object]] = None,
             lazy_capture: Optional[Dict[str, Buffer]] = None,
             if_: bool = True, final: bool = False, mergeable: bool = False,
             untied: bool = False, detachable: bool = False,
             priority: int = 0, name: Optional[str] = None,
             annotate_deferrable: bool = False) -> Task:
        """``#pragma omp task`` with the full clause surface."""
        return self.rt.create_task(
            fn, depend=depend, firstprivate=firstprivate,
            lazy_capture=lazy_capture, if_=if_,
            final=final, mergeable=mergeable, untied=untied,
            detachable=detachable, priority=priority,
            name=name, annotate_deferrable=annotate_deferrable)

    def taskwait(self) -> None:
        self.rt.taskwait()

    def taskgroup(self, body: Callable[[], None]) -> None:
        self.rt.taskgroup(body)

    def barrier(self) -> None:
        self.rt.barrier()

    def taskloop(self, body: Callable[[TaskView, int, int], None],
                 lo: int, hi: int, *, num_tasks: Optional[int] = None,
                 grainsize: Optional[int] = None, nogroup: bool = False,
                 firstprivate: Optional[Dict[str, object]] = None,
                 name: Optional[str] = None) -> None:
        """``#pragma omp taskloop`` over ``[lo, hi)``."""
        chunks = chunk_iteration_space(lo, hi, num_tasks=num_tasks,
                                       grainsize=grainsize)

        def create_all() -> None:
            for clo, chi in chunks:
                # the chunk bounds are firstprivate in the real lowering —
                # they ride in the task descriptor like any other capture
                fp = dict(firstprivate or {})
                fp[".lb"] = clo
                fp[".ub"] = chi
                self.task(lambda tv, a=clo, b=chi: (
                    tv.private_value(".lb"), tv.private_value(".ub"),
                    body(tv, a, b)),
                    firstprivate=fp,
                    name=name or f".omp_taskloop.{lo}_{hi}")

        if nogroup:
            create_all()
        else:
            self.taskgroup(create_all)

    def taskloop_collapse2(self, body: Callable[[TaskView, int, int], None],
                           lo1: int, hi1: int, lo2: int, hi2: int, *,
                           num_tasks: Optional[int] = None,
                           nogroup: bool = False) -> None:
        """``#pragma omp taskloop collapse(2)`` (DRB096)."""
        lo, hi, unmap = collapse2(lo1, hi1, lo2, hi2)

        def chunk_body(tv: TaskView, clo: int, chi: int) -> None:
            for linear in range(clo, chi):
                i, j = unmap(linear)
                body(tv, i, j)

        self.taskloop(chunk_body, lo, hi, num_tasks=num_tasks,
                      nogroup=nogroup, name=".omp_taskloop_collapse2")

    # -- worksharing ---------------------------------------------------------------------

    def for_static(self, lo: int, hi: int) -> range:
        """``#pragma omp for schedule(static)`` — this thread's iterations.

        The caller is responsible for the closing barrier semantics (call
        :meth:`barrier` unless ``nowait``), matching how the benchmarks use
        it.
        """
        return self.rt.static_range(lo, hi)

    # -- mutual exclusion ------------------------------------------------------------------

    @contextlib.contextmanager
    def critical(self, name: str = "default") -> Iterator[None]:
        """``#pragma omp critical [(name)]``."""
        self.rt.lock_acquire(f"critical.{name}")
        try:
            yield
        finally:
            self.rt.lock_release(f"critical.{name}")

    def lock(self, name: Optional[str] = None) -> OmpLock:
        return OmpLock(self, name)

    # -- data environment ---------------------------------------------------------------------

    def threadprivate(self, name: str, size: int = 8) -> Buffer:
        """``#pragma omp threadprivate`` — per-thread copy over simulated TLS."""
        return self.ctx.tls_var(f"threadprivate.{name}", size,
                                elem=min(size, 8))

    # -- queries -------------------------------------------------------------------------------

    def thread_num(self) -> int:
        """``omp_get_thread_num()``."""
        return self.rt.thread_num()

    def num_threads(self) -> int:
        """``omp_get_num_threads()``."""
        return self.rt.num_threads()


def make_env(machine: Machine, *, nthreads: int = 4,
             source_file: str = "main.c") -> OmpEnv:
    """Build the GuestContext + OmpEnv pair for one run."""
    ctx = GuestContext(machine, source_file=source_file, nthreads=nthreads)
    env = OmpEnv(ctx, nthreads=nthreads)
    ctx.extensions["omp"] = env
    return env
