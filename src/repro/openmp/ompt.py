"""OMPT-like tool callback interface.

The real OMPT lets a tool register callbacks on runtime events; Taskgrind
injects an OMPT tool that forwards everything to the Valgrind plugin via
client requests, and Archer is itself an OMPT tool over ThreadSanitizer.

The event surface here is the subset the paper's analyses need, with the same
shape: parallel region begin/end, implicit/explicit task lifecycle with task
flags, task dependences, sync regions (barrier / taskwait / taskgroup),
mutexes, and task-detach completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.openmp.tasks import Task
    from repro.openmp.runtime import ParallelRegion


class TaskFlags(enum.Flag):
    """OMPT-style task flags (subset of ``ompt_task_flag_t``)."""

    NONE = 0
    INITIAL = enum.auto()
    IMPLICIT = enum.auto()
    EXPLICIT = enum.auto()
    #: ``if(false)`` — task is undeferred *by program semantics*.
    UNDEFERRED = enum.auto()
    #: executed inline because the team is serial (LLVM single-thread mode).
    INCLUDED = enum.auto()
    FINAL = enum.auto()
    MERGEABLE = enum.auto()
    #: actually merged into the encountering task (no separate data env).
    MERGED = enum.auto()
    UNTIED = enum.auto()
    DETACHABLE = enum.auto()


class SyncKind(enum.Enum):
    """``ompt_sync_region_t`` subset."""

    BARRIER = "barrier"
    BARRIER_IMPLICIT = "barrier_implicit"
    TASKWAIT = "taskwait"
    TASKGROUP = "taskgroup"


class DepKind(enum.Enum):
    """OpenMP dependence types (all of them, unlike some of the tools...)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    INOUTSET = "inoutset"
    MUTEXINOUTSET = "mutexinoutset"


@dataclass(frozen=True)
class Dependence:
    """One ``depend(kind: addr)`` item on a task."""

    kind: DepKind
    addr: int
    size: int = 4


class OmptObserver:
    """Base class for OMPT tools; override the events you care about.

    Every callback runs on the simulated thread where the event occurred, so
    ``runtime.current_thread_id()`` is meaningful inside.
    """

    # threads
    def on_thread_begin(self, thread_id: int) -> None: ...
    def on_thread_end(self, thread_id: int) -> None: ...

    # parallel regions
    def on_parallel_begin(self, region: "ParallelRegion",
                          encountering_task: "Task") -> None: ...
    def on_parallel_end(self, region: "ParallelRegion",
                        encountering_task: "Task") -> None: ...
    def on_implicit_task_begin(self, region: "ParallelRegion",
                               task: "Task") -> None: ...
    def on_implicit_task_end(self, region: "ParallelRegion",
                             task: "Task") -> None: ...

    # explicit tasks
    def on_task_create(self, task: "Task", parent: "Task") -> None: ...
    def on_task_dependences(self, task: "Task",
                            deps: List[Dependence]) -> None: ...
    def on_task_dependence_pair(self, pred: "Task", succ: "Task",
                                dep: Dependence) -> None: ...
    def on_task_schedule_begin(self, task: "Task", thread_id: int) -> None: ...
    def on_task_schedule_end(self, task: "Task", thread_id: int,
                             completed: bool) -> None: ...
    def on_task_detach_fulfill(self, task: "Task", thread_id: int) -> None: ...

    # synchronisation
    def on_sync_region_begin(self, kind: SyncKind, task: "Task",
                             thread_id: int) -> None: ...
    def on_sync_region_end(self, kind: SyncKind, task: "Task",
                           thread_id: int) -> None: ...

    # mutual exclusion (critical / locks); Taskgrind ignores these (paper VI.b)
    def on_mutex_acquired(self, name: str, thread_id: int) -> None: ...
    def on_mutex_released(self, name: str, thread_id: int) -> None: ...


class OmptDispatcher:
    """Fans runtime events out to every registered observer."""

    def __init__(self) -> None:
        self.observers: List[OmptObserver] = []
        self.event_count = 0

    def register(self, observer: OmptObserver) -> None:
        self.observers.append(observer)

    def emit(self, method: str, *args) -> None:
        self.event_count += 1
        for obs in self.observers:
            getattr(obs, method)(*args)
