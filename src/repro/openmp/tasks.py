"""Task descriptors and detach events.

A :class:`Task` is both the logical OpenMP task and its runtime descriptor.
The descriptor's *storage* is allocated from the runtime's private
:class:`~repro.machine.allocator.FastArena` — LLVM's ``__kmp_fast_allocate``
— and holds the firstprivate payload.  User code touches that storage in
*instrumented* context (the outlined task function reads/writes its privates
straight out of the descriptor, as LLVM-generated code does); the arena's
recycling of released descriptors is therefore visible to the tools and is
the mechanism behind the paper's remaining multi-thread TMB false positives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.obs.tracer import get_tracer
from repro.openmp.ompt import Dependence, TaskFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.openmp.runtime import OmpRuntime, ParallelRegion, Taskgroup

_TRACER = get_tracer()


class TaskState(enum.Enum):
    CREATED = "created"        # waiting on dependences
    READY = "ready"            # in some queue
    RUNNING = "running"
    SUSPENDED = "suspended"    # at a scheduling point (taskwait/taskgroup)
    DETACHED = "detached"      # body done, waiting for the detach event
    COMPLETED = "completed"


#: Byte layout of the firstprivate payload inside the descriptor.
PRIVATE_SLOT_BYTES = 8
DESCRIPTOR_HEADER_BYTES = 32       # flags/refcount/etc. (runtime-internal)


class DetachEvent:
    """An ``omp_event_handle_t`` for ``detach(event)`` tasks."""

    def __init__(self, task: "Task") -> None:
        self.task = task
        self.fulfilled = False

    def fulfill(self) -> None:
        """Complete the detached task (callable from any thread/task)."""
        if self.fulfilled:
            return
        self.fulfilled = True
        if _TRACER.enabled:
            _TRACER.instant("task.detach_fulfill",
                            self.task.runtime._tid(), cat="task",
                            args={"task": self.task.tid,
                                  "label": self.task.label()})
        self.task.runtime._on_detach_fulfill(self.task)


@dataclass
class Task:
    """One OpenMP task (implicit or explicit) plus its descriptor."""

    runtime: "OmpRuntime"
    tid: int                                   # task id, creation order
    fn: Optional[Callable]                     # outlined body; None = implicit
    parent: Optional["Task"]
    flags: TaskFlags
    region: Optional["ParallelRegion"] = None
    deps: List[Dependence] = field(default_factory=list)
    symbol_name: str = "task"
    create_loc: Optional[object] = None        # SourceLocation of the pragma
    priority: int = 0
    #: user annotation: "semantically deferrable" (Taskgrind client request,
    #: the Table II LULESH annotation)
    annotated_deferrable: bool = False

    # descriptor storage (FastArena address; 0 for implicit/included tasks —
    # the runtime's included fast path passes privates synchronously and
    # allocates nothing)
    descriptor_addr: int = 0
    private_offsets: Dict[str, int] = field(default_factory=dict)
    private_values: Dict[str, object] = field(default_factory=dict)
    #: lazy (reference-style) captures: the task re-reads the original
    #: location at start, in the ``.omp.copyin`` helper (DRB100/101 modeling)
    lazy_sources: Dict[str, object] = field(default_factory=dict)

    # scheduling state
    state: TaskState = TaskState.CREATED
    dep_pending: int = 0
    exec_thread: int = -1
    create_thread: int = -1
    children_incomplete: int = 0
    taskgroup: Optional["Taskgroup"] = None
    detach_event: Optional[DetachEvent] = None
    successors: List["Task"] = field(default_factory=list)
    successor_deps: List[Dependence] = field(default_factory=list)
    mutexinoutset_addrs: List[int] = field(default_factory=list)

    def __hash__(self) -> int:
        return self.tid

    def __eq__(self, other) -> bool:
        return self is other

    # -- convenience -------------------------------------------------------

    @property
    def is_implicit(self) -> bool:
        return bool(self.flags & (TaskFlags.IMPLICIT | TaskFlags.INITIAL))

    @property
    def is_included(self) -> bool:
        return bool(self.flags & TaskFlags.INCLUDED)

    @property
    def is_undeferred(self) -> bool:
        return bool(self.flags & TaskFlags.UNDEFERRED)

    @property
    def is_merged(self) -> bool:
        return bool(self.flags & TaskFlags.MERGED)

    @property
    def done(self) -> bool:
        return self.state == TaskState.COMPLETED

    def private_addr(self, name: str) -> int:
        """Descriptor address of firstprivate variable ``name``."""
        return self.descriptor_addr + DESCRIPTOR_HEADER_BYTES + \
            self.private_offsets[name]

    def label(self) -> str:
        loc = f" @ {self.create_loc}" if self.create_loc else ""
        kind = "implicit" if self.is_implicit else "explicit"
        return f"task#{self.tid} ({kind}{loc})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.label()} {self.state.value}>"
