"""``python -m repro`` — the harness launcher.

Subcommands map one-to-one to the paper's artifacts::

    python -m repro table1            # Table I verdict matrix
    python -m repro table2            # Table II LULESH matrix
    python -m repro fig4 [--romp]     # Fig. 4 sweep
    python -m repro errorreport       # Listings 4-6
    python -m repro extras            # the beyond-the-paper suite
    python -m repro stability         # verdict stability across seeds
    python -m repro offline TRACE     # offline analysis of a saved trace
    python -m repro run PROGRAM       # one program under one tool
    python -m repro replay SCHEDULE   # deterministic two-phase replay
    python -m repro perf              # record/analyze fast-path bench
    python -m repro fuzz              # differential schedule-fuzzing
    python -m repro faults            # resilience self-test (fault matrix)
    python -m repro profile           # overhead-attribution profiles
                                      # (run/diff/show/check)
    python -m repro serve             # the trace-ingestion HTTP server
                                      # (--smoke: record/upload/diff check)

Global flags (work with every subcommand)::

    --stats[=json|pretty|prom]        # print the observability document
                                      # (phase wall/virtual timings, counters,
                                      # per-tool stats) after the subcommand;
                                      # 'prom' renders Prometheus text
                                      # exposition format
    --trace-timeline OUT.json         # record the execution timeline and
                                      # export Chrome trace-event JSON
                                      # (virtual-time axis; load in Perfetto)
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

COMMANDS = {
    "table1": "repro.bench.table1",
    "table2": "repro.bench.table2",
    "fig4": "repro.bench.fig4",
    "errorreport": "repro.bench.errorreport",
    "extras": "repro.bench.extras",
    "stability": "repro.bench.stability",
    "offline": "repro.core.offline",
    "run": "repro.bench.runner",
    "replay": "repro.replay.cli",
    "perf": "repro.bench.perf",
    "fuzz": "repro.fuzz.cli",
    "faults": "repro.faults.selftest",
    "profile": "repro.obs.profdoc",
    "serve": "repro.serve.cli",
}


def _extract_stats_flag(argv: List[str]) -> Tuple[List[str], Optional[str]]:
    """Strip a launcher-level ``--stats[=json|pretty|prom]`` from anywhere."""
    out: List[str] = []
    mode: Optional[str] = None
    for arg in argv:
        if arg == "--stats":
            mode = "pretty"
        elif arg.startswith("--stats="):
            value = arg.split("=", 1)[1]
            if value not in ("json", "pretty", "prom"):
                print(f"unknown --stats mode {value!r} "
                      "(expected json, pretty or prom)", file=sys.stderr)
                value = "pretty"
            mode = value
        else:
            out.append(arg)
    return out, mode


def _extract_timeline_flag(argv: List[str]
                           ) -> Tuple[List[str], Optional[str]]:
    """Strip a launcher-level ``--trace-timeline OUT`` / ``=OUT``."""
    out: List[str] = []
    path: Optional[str] = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--trace-timeline":
            if i + 1 >= len(argv):
                print("--trace-timeline needs an output path",
                      file=sys.stderr)
            else:
                path = argv[i + 1]
                i += 1
        elif arg.startswith("--trace-timeline="):
            path = arg.split("=", 1)[1]
        else:
            out.append(arg)
        i += 1
    return out, path


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    argv, stats_mode = _extract_stats_flag(argv)
    argv, timeline_path = _extract_timeline_flag(argv)
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in COMMANDS:
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    tracer = None
    if timeline_path is not None:
        from repro.obs.tracer import get_tracer
        tracer = get_tracer()
        tracer.enable()
    import importlib
    module = importlib.import_module(COMMANDS[argv[0]])
    rc = module.main(argv[1:])
    if tracer is not None:
        tracer.export(timeline_path)
        tracer.disable()
        print(f"wrote timeline to {timeline_path} ({len(tracer)} events)")
    if stats_mode is not None:
        from repro.obs.metrics import get_registry
        registry = get_registry()
        if stats_mode == "json":
            import json
            print(json.dumps(registry.snapshot(), indent=2))
        elif stats_mode == "prom":
            sys.stdout.write(registry.render_prom())
        else:
            print(registry.render())
    return rc


if __name__ == "__main__":
    sys.exit(main())
