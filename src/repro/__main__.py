"""``python -m repro`` — the harness launcher.

Subcommands map one-to-one to the paper's artifacts::

    python -m repro table1            # Table I verdict matrix
    python -m repro table2            # Table II LULESH matrix
    python -m repro fig4 [--romp]     # Fig. 4 sweep
    python -m repro errorreport       # Listings 4-6
    python -m repro extras            # the beyond-the-paper suite
    python -m repro stability         # verdict stability across seeds
    python -m repro offline TRACE     # offline analysis of a saved trace
"""

from __future__ import annotations

import sys
from typing import List, Optional

COMMANDS = {
    "table1": "repro.bench.table1",
    "table2": "repro.bench.table2",
    "fig4": "repro.bench.fig4",
    "errorreport": "repro.bench.errorreport",
    "extras": "repro.bench.extras",
    "stability": "repro.bench.stability",
    "offline": "repro.core.offline",
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in COMMANDS:
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    import importlib
    module = importlib.import_module(COMMANDS[argv[0]])
    return module.main(argv[1:])


if __name__ == "__main__":
    sys.exit(main())
