"""Load generator for the trace-ingestion server (CI-gated).

Replays recorded traces — the fuzz corpus plus the synthetic workloads —
as ``--clients`` concurrent clients against an **in-process** server
(real sockets, real HTTP, no subprocess), measuring what the perf gate
cares about:

* per-endpoint p50/p95 latency (``create_trace`` / ``upload_chunk`` /
  ``analyze`` / ``job_status`` / ``report``), exact percentiles over the
  recorded samples, in milliseconds;
* chunk-ingest throughput (accepted chunks per wall second);
* per-job phase p50/p95 (queue-wait/build/analyze/report) — the blame
  axis when the gate trips.

The block lands under the top-level ``"serve"`` key of the perf document
(``--merge-into BENCH_perf.json``) and is gated by
:func:`repro.bench.perf.compare_to_baseline` at the same tolerance as
the workload speedups (``--baseline``).

``--faults`` switches to the chaos campaign the nightly ``serve-chaos``
job runs: every session is re-driven under worker-hang, trace-corrupt
and save-crash plans from :mod:`repro.faults`, and the bench asserts the
service's degradation contract — every job terminates (no hangs), every
degraded job still serves a well-formed partial report with
``unchecked_pairs`` accounting, and no degraded report invents a race
the clean run did not have.

Exit codes: 0 ok; 1 gate/verification/chaos failure; 3 unusable
baseline (mirrors ``repro.bench.perf``).
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.perf import EXIT_BASELINE_UNUSABLE, compare_to_baseline
from repro.core.reports import report_to_dict
from repro.core.trace import analyze_trace, save_trace
from repro.errors import GuestCrash, OutOfMemory, SimDeadlock
from repro.faults.plan import builtin_plan
from repro.faults.inject import inject_plan
from repro.obs.metrics import get_registry
from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient, read_trace_lines
from repro.serve.server import ServerThread

SCHEMA = "taskgrind-serve-bench/1"

#: the chaos matrix: (builtin plan name, what it attacks)
CHAOS_PLANS = (
    ("worker-hang@0", "analysis worker wedged on its first chunk"),
    ("trace-corrupt@1", "bit-rot in an uploaded chunk payload"),
    ("save-crash@1", "ingest worker dying mid-upload"),
)


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


# ---------------------------------------------------------------------------
# trace materialization (corpus + synthetics → taskgrind-trace/2 files)
# ---------------------------------------------------------------------------

def record_program_trace(name: str, path: str, *, seed: int = 0,
                         nthreads: int = 4) -> None:
    """Record one registered bench program's trace to ``path``."""
    from repro.bench.runner import _find_program, run_benchmark
    program = _find_program(name)
    if program is None:
        raise ValueError(f"unknown bench program {name!r}")
    result = run_benchmark(program, "taskgrind", nthreads=nthreads,
                           seed=seed, keep_machine=True)
    if result.tool_obj is None or result.machine is None:
        raise RuntimeError(f"{name}: run produced no machine/tool "
                           f"({result.verdict})")
    save_trace(result.tool_obj, result.machine, path)


def record_corpus_trace(corpus_path: str, out_path: str,
                        *, seed: int = 0) -> bool:
    """Record one fuzz-corpus reproducer's trace; False if the program
    crashed or deadlocked under this seed (nothing to upload)."""
    from repro.fuzz.executors import (_exec_openmp, _exec_qthreads,
                                      fuzz_options)
    from repro.fuzz.shrink import load_reproducer
    program, _expect, options, _note = load_reproducer(corpus_path)
    opts = fuzz_options(**options)
    exec_fn = _exec_qthreads if program.family == "feb" else _exec_openmp
    machine, tool, _amap, entry = exec_fn(program, seed, opts)
    try:
        machine.run(entry)
    except (SimDeadlock, GuestCrash, OutOfMemory):
        return False
    tool.finalize()
    save_trace(tool, machine, out_path)
    return True


def materialize_traces(workdir: str, *, corpus_dir: Optional[str],
                       max_traces: int, programs: Tuple[str, ...] = (
                           "heat-racy", "fib")) -> List[Tuple[str, str]]:
    """Build the trace set the clients replay: ``[(name, path), ...]``.

    Synthetic programs first (heat-racy contributes real race reports so
    verification is not vacuous), then fuzz-corpus reproducers in sorted
    order up to ``max_traces`` total.
    """
    out: List[Tuple[str, str]] = []
    for name in programs:
        path = os.path.join(workdir, f"{name}.trace.json")
        record_program_trace(name, path)
        out.append((name, path))
    if corpus_dir and os.path.isdir(corpus_dir):
        for entry in sorted(os.listdir(corpus_dir)):
            if len(out) >= max_traces:
                break
            if not entry.endswith(".json"):
                continue
            src = os.path.join(corpus_dir, entry)
            dst = os.path.join(workdir, f"corpus-{entry}.trace.json")
            try:
                if record_corpus_trace(src, dst):
                    out.append((f"corpus:{entry}", dst))
            except (ValueError, KeyError, OSError):
                continue        # not a reproducer document: skip
    return out


# ---------------------------------------------------------------------------
# measurement helpers
# ---------------------------------------------------------------------------

def percentile(samples: List[float], q: float) -> float:
    """Exact nearest-rank percentile over the sample list (q in [0,1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _summarize_ms(samples: List[float]) -> dict:
    return {"count": len(samples),
            "p50_ms": round(percentile(samples, 0.50), 4),
            "p95_ms": round(percentile(samples, 0.95), 4),
            "mean_ms": round(sum(samples) / len(samples), 4)
            if samples else 0.0}


class _Recorder:
    """Thread-safe latency/throughput books shared by the client threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.endpoint_ms: Dict[str, List[float]] = {}
        self.phase_ms: Dict[str, List[float]] = {}
        self.chunks = 0
        self.sessions = 0
        self.mismatches: List[str] = []
        self.failures: List[str] = []

    def lat(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            self.endpoint_ms.setdefault(endpoint, []).append(seconds * 1e3)

    def phases(self, status_doc: dict) -> None:
        with self._lock:
            self.phase_ms.setdefault("queue-wait", []).append(
                status_doc.get("queue_wait_s", 0.0) * 1e3)
            for name, dur in status_doc.get("phases", {}).items():
                self.phase_ms.setdefault(name, []).append(dur * 1e3)


# ---------------------------------------------------------------------------
# one client session: upload → analyze → poll → report
# ---------------------------------------------------------------------------

def _timed(rec: _Recorder, endpoint: str, fn):
    t0 = time.perf_counter()
    out = fn()
    rec.lat(endpoint, time.perf_counter() - t0)
    return out


def run_session(client: ServeClient, lines: List[bytes], rec: _Recorder,
                *, expected: Optional[str], timeout_s: float = 120.0,
                analyze_options: Optional[dict] = None) -> dict:
    """Drive one full trace lifecycle; returns the final report doc."""
    trace_id = _timed(rec, "create_trace", client.create_trace)
    for seq, line in enumerate(lines):
        status, ack = _timed(rec, "upload_chunk",
                             lambda: client.upload_chunk(trace_id, seq, line))
        if status != 200:
            raise RuntimeError(f"chunk {seq} rejected: {status} {ack}")
        with rec._lock:
            rec.chunks += 1
    job_id = _timed(rec, "analyze",
                    lambda: client.analyze(trace_id,
                                           **(analyze_options or {})))
    deadline = time.monotonic() + timeout_s
    while True:
        status_doc = _timed(rec, "job_status", lambda: client.job(job_id))
        if status_doc["state"] in ("done", "degraded", "failed"):
            break
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} hung ({status_doc['state']})")
        time.sleep(0.002)
    rec.phases(status_doc)
    http_status, report = _timed(rec, "report",
                                 lambda: client.report(job_id))
    if http_status != 200:
        raise RuntimeError(f"report fetch failed: {http_status} {report}")
    if expected is not None:
        got = json.dumps(report.get("errors"), sort_keys=True)
        if got != expected:
            raise AssertionError("server report diverged from offline "
                                 "analysis of the same trace")
    with rec._lock:
        rec.sessions += 1
    return report


# ---------------------------------------------------------------------------
# the load run
# ---------------------------------------------------------------------------

def run_load(traces: List[Tuple[str, str]], *, clients: int, rounds: int,
             shards: int, verify: bool) -> dict:
    """N concurrent clients replaying the trace set ``rounds`` times."""
    trace_lines = {name: read_trace_lines(path) for name, path in traces}
    expected: Dict[str, Optional[str]] = {name: None for name, _ in traces}
    if verify:
        # mode-independent ground truth: the offline pipeline on the file
        for name, path in traces:
            reports = analyze_trace(path)
            expected[name] = json.dumps(
                [report_to_dict(r) for r in reports], sort_keys=True)

    rec = _Recorder()
    work: "queue.Queue[Optional[str]]" = queue.Queue()
    for _round in range(rounds):
        for name, _path in traces:
            work.put(name)
    for _ in range(clients):
        work.put(None)

    config = ServeConfig(shards=shards)
    with ServerThread(config) as srv:
        def client_loop() -> None:
            with ServeClient(srv.base_url) as client:
                while True:
                    name = work.get()
                    if name is None:
                        return
                    try:
                        run_session(client, trace_lines[name], rec,
                                    expected=expected[name])
                    except AssertionError as exc:
                        with rec._lock:
                            rec.mismatches.append(f"{name}: {exc}")
                    except (RuntimeError, TimeoutError) as exc:
                        with rec._lock:
                            rec.failures.append(f"{name}: {exc}")

        t0 = time.perf_counter()
        threads = [threading.Thread(target=client_loop,
                                    name=f"serve-client-{i}")
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        builds = srv.service.cache.graph_builds
    reg = get_registry()
    return {
        "clients": clients,
        "rounds": rounds,
        "shards": shards,
        "traces": len(traces),
        "sessions": rec.sessions,
        "chunks_uploaded": rec.chunks,
        "elapsed_s": round(elapsed, 4),
        "throughput_chunks_per_s": round(rec.chunks / elapsed, 2)
        if elapsed > 0 else 0.0,
        "endpoints": {name: _summarize_ms(samples)
                      for name, samples in sorted(rec.endpoint_ms.items())},
        "job_phases": {name: _summarize_ms(samples)
                       for name, samples in sorted(rec.phase_ms.items())},
        "cache": {
            "graph_builds": builds,
            "graph_hits": reg.counter("serve.cache.graph.hits").value,
            "result_hits": reg.counter("serve.cache.result.hits").value,
        },
        "verified": verify and not rec.mismatches,
        "mismatches": rec.mismatches,
        "failures": rec.failures,
    }


# ---------------------------------------------------------------------------
# the chaos campaign (--faults)
# ---------------------------------------------------------------------------

def _race_key(error_doc: dict) -> str:
    """A report's *identity*: which two segments conflict on which bytes.

    Everything else in the doc is evidence-dependent annotation a degraded
    run may legitimately lack — notes carry the salvage warnings, witness
    needs --explain, and region/allocation come from the environment chunk
    (lost when the writer dies early).  The loses-but-never-invents check
    must compare the race, not its annotations."""
    conflict = error_doc.get("conflict", {})
    return json.dumps({
        "kind": error_doc.get("kind"),
        "segments": error_doc.get("segments"),
        "ranges": conflict.get("ranges"),
        "bytes": conflict.get("bytes"),
    }, sort_keys=True)


def _well_formed_partial(report: dict) -> List[str]:
    """Degradation-contract violations in one report doc (empty = ok)."""
    problems = []
    for key in ("schema", "errors", "error_count", "coverage", "analysis"):
        if key not in report:
            problems.append(f"missing {key!r}")
    if report.get("schema") != "taskgrind-serve-report/1":
        problems.append(f"bad schema {report.get('schema')!r}")
    resilience = report.get("analysis", {}).get("resilience")
    if resilience is not None:
        pairs = resilience.get("pairs")
        if not isinstance(pairs, dict) or not all(
                isinstance(pairs.get(k), int)
                for k in ("total", "checked", "unchecked")):
            problems.append("resilience block lacks unchecked-pairs "
                            f"accounting (pairs={pairs!r})")
    return problems


def _unsuppressed_races(path: str) -> set:
    """Every candidate the offline pipeline reports with suppression OFF.

    The never-invent universe: a degraded upload can lose the environment
    chunk, and with it the TLS/stack evidence the suppression engine
    needs — previously-suppressed candidates then surface.  That is loss
    of suppression evidence, not race invention (same contract as the
    fault-matrix selftest's salvage path), so the clean universe must be
    the pre-suppression candidate set."""
    from repro.core.trace import analyze_loaded, load_trace_salvaged
    salvaged = load_trace_salvaged(path)
    la = analyze_loaded(salvaged.graph, salvaged.view,
                        {"suppress_tls": False, "suppress_stack": False},
                        coverage=salvaged.coverage)
    return {_race_key(report_to_dict(r)) for r in la.reports}


def run_chaos(traces: List[Tuple[str, str]], *, shards: int) -> dict:
    """Every trace × every chaos plan; asserts the degradation contract.

    The server runs with a tight supervised deadline and one retry so a
    wedged analysis worker quarantines instead of eating the bench's
    wall clock; a clean pass per trace provides the race set that no
    degraded run may exceed (salvage can lose races, never invent them).
    """
    trace_lines = {name: read_trace_lines(path) for name, path in traces}
    clean_races: Dict[str, set] = {}
    violations: List[str] = []
    runs: List[dict] = []
    config = ServeConfig(shards=shards, deadline_s=0.05, max_retries=1)
    with ServerThread(config) as srv:
        with ServeClient(srv.base_url) as client:
            for name, path in traces:
                rec = _Recorder()
                report = run_session(client, trace_lines[name], rec,
                                     expected=None, timeout_s=60.0)
                clean_races[name] = (
                    {_race_key(e) for e in report.get("errors", [])}
                    | _unsuppressed_races(path))
            for name, _path in traces:
                for spec, attacks in CHAOS_PLANS:
                    outcome = _one_chaos_session(
                        client, name, trace_lines[name], spec)
                    outcome["attacks"] = attacks
                    runs.append(outcome)
                    violations.extend(
                        _check_chaos_outcome(outcome, clean_races[name]))
    return {
        "plans": [spec for spec, _ in CHAOS_PLANS],
        "runs": runs,
        "violations": violations,
        "ok": not violations,
    }


def _one_chaos_session(client: ServeClient, name: str, lines: List[bytes],
                       spec: str) -> dict:
    """One trace uploaded and analyzed with ``spec`` armed.

    When the fault surfaces at the upload edge (CRC reject, injected
    worker death) the session records the structured error body and then
    **still analyzes the accepted prefix** — the degradation contract is
    that a partial upload yields a degraded-but-well-formed report, not
    a wedged job.
    """
    outcome: dict = {"trace": name, "plan": spec}
    plan = builtin_plan(spec)
    with inject_plan(plan):
        trace_id = client.create_trace()
        for seq, line in enumerate(lines):
            status, ack = client.upload_chunk(trace_id, seq, line)
            if status != 200:
                outcome["edge_status"] = status
                outcome["edge_error"] = ack.get("error", {})
                break
        try:
            # single supervised worker: distinct params from the clean
            # session, so the content-addressed result cache cannot serve
            # the clean document — the analysis truly re-runs under the
            # armed plan and a planted hang meets the deadline/quarantine
            # path instead of a cache hit
            job_id = client.analyze(trace_id, mode="parallel", workers=1)
            status_doc = client.wait(job_id, timeout=60.0)
        except TimeoutError as exc:
            outcome["hang"] = str(exc)
            outcome["fired"] = dict(plan.fired_summary())
            return outcome
        outcome["job_state"] = status_doc["state"]
        http_status, report = client.report(job_id)
        if http_status == 200:
            outcome["report"] = report
        else:
            outcome["report_error"] = {"status": http_status, **report}
    outcome["fired"] = dict(plan.fired_summary())
    return outcome


def _check_chaos_outcome(outcome: dict, clean: set) -> List[str]:
    where = f"{outcome['trace']} under {outcome['plan']}"
    if "hang" in outcome:
        return [f"{where}: HANG — {outcome['hang']}"]
    problems: List[str] = []
    if "edge_status" in outcome:
        err = outcome.get("edge_error", {})
        if outcome["edge_status"] not in (400, 409, 422, 500, 503) \
                or not err.get("type"):
            problems.append(f"{where}: untyped edge rejection "
                            f"{outcome['edge_status']}: {err}")
    if outcome.get("job_state") not in ("done", "degraded"):
        problems.append(f"{where}: job ended {outcome.get('job_state')!r} "
                        "instead of serving a partial report")
    report = outcome.get("report")
    if report is None:
        problems.append(f"{where}: no report document "
                        f"({outcome.get('report_error')})")
        return problems
    problems.extend(f"{where}: {p}" for p in _well_formed_partial(report))
    got = {_race_key(e) for e in report.get("errors", [])}
    invented = got - clean
    if invented:
        problems.append(f"{where}: degraded report INVENTED "
                        f"{len(invented)} race(s) absent from clean run")
    return problems


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clients", type=int, default=4,
                    help="concurrent client threads (default: 4)")
    ap.add_argument("--rounds", type=int, default=2,
                    help="times each trace is replayed (default: 2)")
    ap.add_argument("--shards", type=int, default=4,
                    help="server worker shards (default: 4)")
    ap.add_argument("--max-traces", type=int, default=6,
                    help="trace-set size cap incl. corpus (default: 6)")
    ap.add_argument("--corpus-dir", default=None,
                    help="fuzz corpus directory (default: autodetect "
                         "tests/fuzz/corpus)")
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the offline byte-parity check per session")
    ap.add_argument("--faults", action="store_true",
                    help="run the chaos campaign instead of the load bench")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="write the bench document here")
    ap.add_argument("--merge-into", metavar="PATH", default=None,
                    help="update the 'serve' block of an existing perf "
                         "document (BENCH_perf.json)")
    ap.add_argument("--baseline", metavar="PATH", default=None,
                    help="perf document with a committed 'serve' block "
                         "to gate against")
    ap.add_argument("--tolerance", type=float, default=0.4,
                    help="gate tolerance as a fraction (default: 0.4)")
    args = ap.parse_args(argv)

    corpus_dir = args.corpus_dir
    if corpus_dir is None:
        candidate = _repo_root() / "tests" / "fuzz" / "corpus"
        corpus_dir = str(candidate) if candidate.is_dir() else None
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as workdir:
        print("recording trace set "
              f"(corpus: {corpus_dir or 'none found'})...")
        traces = materialize_traces(workdir, corpus_dir=corpus_dir,
                                    max_traces=max(2, args.max_traces))
        total_chunks = sum(len(read_trace_lines(p)) for _n, p in traces)
        print(f"  {len(traces)} traces, {total_chunks} chunks: "
              + ", ".join(name for name, _ in traces))
        if args.faults:
            doc = {"schema": SCHEMA, "bench": "serve-chaos",
                   "chaos": run_chaos(traces, shards=args.shards)}
        else:
            serve_block = run_load(traces, clients=args.clients,
                                   rounds=args.rounds, shards=args.shards,
                                   verify=not args.no_verify)
            doc = {"schema": SCHEMA, "bench": "serve", "serve": serve_block}

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.faults:
        chaos = doc["chaos"]
        print(f"chaos campaign: {len(chaos['runs'])} fault sessions, "
              f"{len(chaos['violations'])} violation(s)")
        for v in chaos["violations"]:
            print(f"  VIOLATION: {v}", file=sys.stderr)
        return 0 if chaos["ok"] else 1

    serve_block = doc["serve"]
    print(f"\n{serve_block['sessions']} sessions / "
          f"{serve_block['chunks_uploaded']} chunks in "
          f"{serve_block['elapsed_s']:.2f}s "
          f"({serve_block['throughput_chunks_per_s']:.0f} chunks/s)")
    for name, entry in serve_block["endpoints"].items():
        print(f"  {name:<13} p50 {entry['p50_ms']:8.3f}ms   "
              f"p95 {entry['p95_ms']:8.3f}ms   n={entry['count']}")
    for msg in serve_block["failures"]:
        print(f"  session failure: {msg}", file=sys.stderr)
    for msg in serve_block["mismatches"]:
        print(f"  PARITY MISMATCH: {msg}", file=sys.stderr)
    if serve_block["failures"] or serve_block["mismatches"]:
        return 1

    if args.merge_into:
        try:
            with open(args.merge_into) as fh:
                perf_doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            perf_doc = {"bench": "perf", "workloads": {}}
        perf_doc["serve"] = serve_block
        with open(args.merge_into, "w") as fh:
            json.dump(perf_doc, fh, indent=2)
            fh.write("\n")
        print(f"merged serve block into {args.merge_into}")

    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        except json.JSONDecodeError as exc:
            print(f"baseline {args.baseline} is not valid JSON: {exc}",
                  file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        if not baseline.get("serve"):
            print(f"baseline {args.baseline} has no 'serve' block — "
                  "regenerate with: python -m repro.bench.serve "
                  f"--merge-into {args.baseline}", file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        ok, lines = compare_to_baseline({"serve": serve_block}, baseline,
                                        args.tolerance)
        print(f"\nserve gate vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("serve perf gate FAILED", file=sys.stderr)
            return 1
        print("serve perf gate passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
