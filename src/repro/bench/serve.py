"""Load generator for the trace-ingestion server (CI-gated).

Replays recorded traces — the fuzz corpus plus the synthetic workloads —
as ``--clients`` concurrent clients against an **in-process** server
(real sockets, real HTTP, no subprocess), measuring what the perf gate
cares about:

* per-endpoint p50/p95 latency (``create_trace`` / ``upload_chunk`` /
  ``analyze`` / ``job_status`` / ``report``), exact percentiles over the
  recorded samples, in milliseconds;
* chunk-ingest throughput (accepted chunks per wall second);
* per-job phase p50/p95 (queue-wait/build/analyze/report) — the blame
  axis when the gate trips.

The block lands under the top-level ``"serve"`` key of the perf document
(``--merge-into BENCH_perf.json``) and is gated by
:func:`repro.bench.perf.compare_to_baseline` at the same tolerance as
the workload speedups (``--baseline``).

``--faults`` switches to the chaos campaign the nightly ``serve-chaos``
job runs: every session is re-driven under worker-hang, trace-corrupt
and save-crash plans from :mod:`repro.faults`, and the bench asserts the
service's degradation contract — every job terminates (no hangs), every
degraded job still serves a well-formed partial report with
``unchecked_pairs`` accounting, and no degraded report invents a race
the clean run did not have.

``--kill-chaos`` runs the durability campaign (nightly
``serve-kill-chaos`` matrix): each trace is uploaded into a
``--state-dir`` server that is killed mid-upload (under the
``wal-torn-write`` / ``kill-server`` plans, filterable with
``--kill-kinds``) and killed again mid-analysis; each kill is followed
by a restart against the same state dir, asserting zero lost sealed
uploads, resume from the exact journaled seq, exactly-once job
re-execution, and byte-identical reports.

``--overload`` hammers a deliberately tiny job queue and asserts
overload turns into typed 429s with ``Retry-After`` (which the backoff
client rides out to eventual success) — never untyped drops.

Exit codes: 0 ok; 1 gate/verification/chaos failure; 3 unusable
baseline (mirrors ``repro.bench.perf``).
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.perf import EXIT_BASELINE_UNUSABLE, compare_to_baseline
from repro.core.reports import report_to_dict
from repro.core.trace import analyze_trace, save_trace
from repro.errors import GuestCrash, OutOfMemory, ReproError, SimDeadlock
from repro.faults.plan import FaultPlan, builtin_plan
from repro.faults.inject import inject_plan
from repro.obs.metrics import get_registry
from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient, read_trace_lines
from repro.serve.server import ServerThread
from repro.serve.wal import read_wal

SCHEMA = "taskgrind-serve-bench/1"

#: the chaos matrix: (builtin plan name, what it attacks)
CHAOS_PLANS = (
    ("worker-hang@0", "analysis worker wedged on its first chunk"),
    ("trace-corrupt@1", "bit-rot in an uploaded chunk payload"),
    ("save-crash@1", "ingest worker dying mid-upload"),
)

#: the kill-chaos matrix: (builtin plan name, how the server dies).
#: Both fire at WAL record 2 — the first ``chunk-accepted`` — so the
#: journal provably loses in-flight work that recovery must not invent.
KILL_PLANS = (
    ("wal-torn-write@2", "journal write torn mid-upload, then SIGKILL"),
    ("kill-server@2", "SIGKILL lands inside the journal append itself"),
)


def _repo_root() -> Path:
    return Path(__file__).resolve().parents[3]


# ---------------------------------------------------------------------------
# trace materialization (corpus + synthetics → taskgrind-trace/2 files)
# ---------------------------------------------------------------------------

def record_program_trace(name: str, path: str, *, seed: int = 0,
                         nthreads: int = 4) -> None:
    """Record one registered bench program's trace to ``path``."""
    from repro.bench.runner import _find_program, run_benchmark
    program = _find_program(name)
    if program is None:
        raise ValueError(f"unknown bench program {name!r}")
    result = run_benchmark(program, "taskgrind", nthreads=nthreads,
                           seed=seed, keep_machine=True)
    if result.tool_obj is None or result.machine is None:
        raise RuntimeError(f"{name}: run produced no machine/tool "
                           f"({result.verdict})")
    save_trace(result.tool_obj, result.machine, path)


def record_corpus_trace(corpus_path: str, out_path: str,
                        *, seed: int = 0) -> bool:
    """Record one fuzz-corpus reproducer's trace; False if the program
    crashed or deadlocked under this seed (nothing to upload)."""
    from repro.fuzz.executors import (_exec_openmp, _exec_qthreads,
                                      fuzz_options)
    from repro.fuzz.shrink import load_reproducer
    program, _expect, options, _note = load_reproducer(corpus_path)
    opts = fuzz_options(**options)
    exec_fn = _exec_qthreads if program.family == "feb" else _exec_openmp
    machine, tool, _amap, entry = exec_fn(program, seed, opts)
    try:
        machine.run(entry)
    except (SimDeadlock, GuestCrash, OutOfMemory):
        return False
    tool.finalize()
    save_trace(tool, machine, out_path)
    return True


def materialize_traces(workdir: str, *, corpus_dir: Optional[str],
                       max_traces: int, programs: Tuple[str, ...] = (
                           "heat-racy", "fib")) -> List[Tuple[str, str]]:
    """Build the trace set the clients replay: ``[(name, path), ...]``.

    Synthetic programs first (heat-racy contributes real race reports so
    verification is not vacuous), then fuzz-corpus reproducers in sorted
    order up to ``max_traces`` total.
    """
    out: List[Tuple[str, str]] = []
    for name in programs:
        path = os.path.join(workdir, f"{name}.trace.json")
        record_program_trace(name, path)
        out.append((name, path))
    if corpus_dir and os.path.isdir(corpus_dir):
        for entry in sorted(os.listdir(corpus_dir)):
            if len(out) >= max_traces:
                break
            if not entry.endswith(".json"):
                continue
            src = os.path.join(corpus_dir, entry)
            dst = os.path.join(workdir, f"corpus-{entry}.trace.json")
            try:
                if record_corpus_trace(src, dst):
                    out.append((f"corpus:{entry}", dst))
            except (ValueError, KeyError, OSError):
                continue        # not a reproducer document: skip
    return out


# ---------------------------------------------------------------------------
# measurement helpers
# ---------------------------------------------------------------------------

def percentile(samples: List[float], q: float) -> float:
    """Exact nearest-rank percentile over the sample list (q in [0,1])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def _summarize_ms(samples: List[float]) -> dict:
    return {"count": len(samples),
            "p50_ms": round(percentile(samples, 0.50), 4),
            "p95_ms": round(percentile(samples, 0.95), 4),
            "mean_ms": round(sum(samples) / len(samples), 4)
            if samples else 0.0}


class _Recorder:
    """Thread-safe latency/throughput books shared by the client threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.endpoint_ms: Dict[str, List[float]] = {}
        self.phase_ms: Dict[str, List[float]] = {}
        self.chunks = 0
        self.sessions = 0
        self.mismatches: List[str] = []
        self.failures: List[str] = []

    def lat(self, endpoint: str, seconds: float) -> None:
        with self._lock:
            self.endpoint_ms.setdefault(endpoint, []).append(seconds * 1e3)

    def phases(self, status_doc: dict) -> None:
        with self._lock:
            self.phase_ms.setdefault("queue-wait", []).append(
                status_doc.get("queue_wait_s", 0.0) * 1e3)
            for name, dur in status_doc.get("phases", {}).items():
                self.phase_ms.setdefault(name, []).append(dur * 1e3)


# ---------------------------------------------------------------------------
# one client session: upload → analyze → poll → report
# ---------------------------------------------------------------------------

def _timed(rec: _Recorder, endpoint: str, fn):
    t0 = time.perf_counter()
    out = fn()
    rec.lat(endpoint, time.perf_counter() - t0)
    return out


def run_session(client: ServeClient, lines: List[bytes], rec: _Recorder,
                *, expected: Optional[str], timeout_s: float = 120.0,
                analyze_options: Optional[dict] = None) -> dict:
    """Drive one full trace lifecycle; returns the final report doc."""
    trace_id = _timed(rec, "create_trace", client.create_trace)
    for seq, line in enumerate(lines):
        status, ack = _timed(rec, "upload_chunk",
                             lambda: client.upload_chunk(trace_id, seq, line))
        if status != 200:
            raise RuntimeError(f"chunk {seq} rejected: {status} {ack}")
        with rec._lock:
            rec.chunks += 1
    job_id = _timed(rec, "analyze",
                    lambda: client.analyze(trace_id,
                                           **(analyze_options or {})))
    deadline = time.monotonic() + timeout_s
    while True:
        status_doc = _timed(rec, "job_status", lambda: client.job(job_id))
        if status_doc["state"] in ("done", "degraded", "failed"):
            break
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} hung ({status_doc['state']})")
        time.sleep(0.002)
    rec.phases(status_doc)
    http_status, report = _timed(rec, "report",
                                 lambda: client.report(job_id))
    if http_status != 200:
        raise RuntimeError(f"report fetch failed: {http_status} {report}")
    if expected is not None:
        got = json.dumps(report.get("errors"), sort_keys=True)
        if got != expected:
            raise AssertionError("server report diverged from offline "
                                 "analysis of the same trace")
    with rec._lock:
        rec.sessions += 1
    return report


# ---------------------------------------------------------------------------
# the load run
# ---------------------------------------------------------------------------

def run_load(traces: List[Tuple[str, str]], *, clients: int, rounds: int,
             shards: int, verify: bool) -> dict:
    """N concurrent clients replaying the trace set ``rounds`` times."""
    trace_lines = {name: read_trace_lines(path) for name, path in traces}
    expected: Dict[str, Optional[str]] = {name: None for name, _ in traces}
    if verify:
        # mode-independent ground truth: the offline pipeline on the file
        for name, path in traces:
            reports = analyze_trace(path)
            expected[name] = json.dumps(
                [report_to_dict(r) for r in reports], sort_keys=True)

    rec = _Recorder()
    work: "queue.Queue[Optional[str]]" = queue.Queue()
    for _round in range(rounds):
        for name, _path in traces:
            work.put(name)
    for _ in range(clients):
        work.put(None)

    config = ServeConfig(shards=shards)
    with ServerThread(config) as srv:
        def client_loop() -> None:
            with ServeClient(srv.base_url) as client:
                while True:
                    name = work.get()
                    if name is None:
                        return
                    try:
                        run_session(client, trace_lines[name], rec,
                                    expected=expected[name])
                    except AssertionError as exc:
                        with rec._lock:
                            rec.mismatches.append(f"{name}: {exc}")
                    except (ReproError, RuntimeError, TimeoutError,
                            ConnectionError) as exc:
                        with rec._lock:
                            rec.failures.append(f"{name}: {exc}")

        t0 = time.perf_counter()
        threads = [threading.Thread(target=client_loop,
                                    name=f"serve-client-{i}")
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
        builds = srv.service.cache.graph_builds
    reg = get_registry()
    return {
        "clients": clients,
        "rounds": rounds,
        "shards": shards,
        "traces": len(traces),
        "sessions": rec.sessions,
        "chunks_uploaded": rec.chunks,
        "elapsed_s": round(elapsed, 4),
        "throughput_chunks_per_s": round(rec.chunks / elapsed, 2)
        if elapsed > 0 else 0.0,
        "endpoints": {name: _summarize_ms(samples)
                      for name, samples in sorted(rec.endpoint_ms.items())},
        "job_phases": {name: _summarize_ms(samples)
                       for name, samples in sorted(rec.phase_ms.items())},
        "cache": {
            "graph_builds": builds,
            "graph_hits": reg.counter("serve.cache.graph.hits").value,
            "result_hits": reg.counter("serve.cache.result.hits").value,
        },
        "verified": verify and not rec.mismatches,
        "mismatches": rec.mismatches,
        "failures": rec.failures,
    }


# ---------------------------------------------------------------------------
# the chaos campaign (--faults)
# ---------------------------------------------------------------------------

def _race_key(error_doc: dict) -> str:
    """A report's *identity*: which two segments conflict on which bytes.

    Everything else in the doc is evidence-dependent annotation a degraded
    run may legitimately lack — notes carry the salvage warnings, witness
    needs --explain, and region/allocation come from the environment chunk
    (lost when the writer dies early).  The loses-but-never-invents check
    must compare the race, not its annotations."""
    conflict = error_doc.get("conflict", {})
    return json.dumps({
        "kind": error_doc.get("kind"),
        "segments": error_doc.get("segments"),
        "ranges": conflict.get("ranges"),
        "bytes": conflict.get("bytes"),
    }, sort_keys=True)


def _well_formed_partial(report: dict) -> List[str]:
    """Degradation-contract violations in one report doc (empty = ok)."""
    problems = []
    for key in ("schema", "errors", "error_count", "coverage", "analysis"):
        if key not in report:
            problems.append(f"missing {key!r}")
    if report.get("schema") != "taskgrind-serve-report/1":
        problems.append(f"bad schema {report.get('schema')!r}")
    resilience = report.get("analysis", {}).get("resilience")
    if resilience is not None:
        pairs = resilience.get("pairs")
        if not isinstance(pairs, dict) or not all(
                isinstance(pairs.get(k), int)
                for k in ("total", "checked", "unchecked")):
            problems.append("resilience block lacks unchecked-pairs "
                            f"accounting (pairs={pairs!r})")
    return problems


def _unsuppressed_races(path: str) -> set:
    """Every candidate the offline pipeline reports with suppression OFF.

    The never-invent universe: a degraded upload can lose the environment
    chunk, and with it the TLS/stack evidence the suppression engine
    needs — previously-suppressed candidates then surface.  That is loss
    of suppression evidence, not race invention (same contract as the
    fault-matrix selftest's salvage path), so the clean universe must be
    the pre-suppression candidate set."""
    from repro.core.trace import analyze_loaded, load_trace_salvaged
    salvaged = load_trace_salvaged(path)
    la = analyze_loaded(salvaged.graph, salvaged.view,
                        {"suppress_tls": False, "suppress_stack": False},
                        coverage=salvaged.coverage)
    return {_race_key(report_to_dict(r)) for r in la.reports}


def run_chaos(traces: List[Tuple[str, str]], *, shards: int) -> dict:
    """Every trace × every chaos plan; asserts the degradation contract.

    The server runs with a tight supervised deadline and one retry so a
    wedged analysis worker quarantines instead of eating the bench's
    wall clock; a clean pass per trace provides the race set that no
    degraded run may exceed (salvage can lose races, never invent them).
    """
    trace_lines = {name: read_trace_lines(path) for name, path in traces}
    clean_races: Dict[str, set] = {}
    violations: List[str] = []
    runs: List[dict] = []
    config = ServeConfig(shards=shards, deadline_s=0.05, max_retries=1)
    with ServerThread(config) as srv:
        # retries=0: the chaos sessions must observe the raw injected
        # statuses, not have the backoff client paper over them
        with ServeClient(srv.base_url, retries=0) as client:
            for name, path in traces:
                rec = _Recorder()
                report = run_session(client, trace_lines[name], rec,
                                     expected=None, timeout_s=60.0)
                clean_races[name] = (
                    {_race_key(e) for e in report.get("errors", [])}
                    | _unsuppressed_races(path))
            for name, _path in traces:
                for spec, attacks in CHAOS_PLANS:
                    outcome = _one_chaos_session(
                        client, name, trace_lines[name], spec)
                    outcome["attacks"] = attacks
                    runs.append(outcome)
                    violations.extend(
                        _check_chaos_outcome(outcome, clean_races[name]))
    return {
        "plans": [spec for spec, _ in CHAOS_PLANS],
        "runs": runs,
        "violations": violations,
        "ok": not violations,
    }


def _one_chaos_session(client: ServeClient, name: str, lines: List[bytes],
                       spec: str) -> dict:
    """One trace uploaded and analyzed with ``spec`` armed.

    When the fault surfaces at the upload edge (CRC reject, injected
    worker death) the session records the structured error body and then
    **still analyzes the accepted prefix** — the degradation contract is
    that a partial upload yields a degraded-but-well-formed report, not
    a wedged job.
    """
    outcome: dict = {"trace": name, "plan": spec}
    plan = builtin_plan(spec)
    with inject_plan(plan):
        trace_id = client.create_trace()
        for seq, line in enumerate(lines):
            try:
                status, ack = client.upload_chunk(trace_id, seq, line,
                                                  retry=False)
            except ConnectionError as exc:
                # the injected fault took the connection down mid-PUT: a
                # degraded session (the client lost its window into the
                # server), not a contract violation
                outcome["degraded"] = f"connection dropped at seq {seq}: {exc}"
                outcome["fired"] = dict(plan.fired_summary())
                return outcome
            if status != 200:
                outcome["edge_status"] = status
                outcome["edge_error"] = ack.get("error", {})
                break
        try:
            # single supervised worker: distinct params from the clean
            # session, so the content-addressed result cache cannot serve
            # the clean document — the analysis truly re-runs under the
            # armed plan and a planted hang meets the deadline/quarantine
            # path instead of a cache hit
            job_id = client.analyze(trace_id, mode="parallel", workers=1)
            status_doc = client.wait(job_id, timeout=60.0)
        except TimeoutError as exc:
            outcome["hang"] = str(exc)
            outcome["fired"] = dict(plan.fired_summary())
            return outcome
        except ConnectionError as exc:
            # e.g. a worker-hang that stalls the response past the socket
            # timeout — classify degraded, never an unhandled error
            outcome["degraded"] = f"connection dropped mid-analysis: {exc}"
            outcome["fired"] = dict(plan.fired_summary())
            return outcome
        except ReproError as exc:
            outcome["error"] = f"{type(exc).__name__}: {exc}"
            outcome["fired"] = dict(plan.fired_summary())
            return outcome
        outcome["job_state"] = status_doc["state"]
        http_status, report = client.report(job_id)
        if http_status == 200:
            outcome["report"] = report
        else:
            outcome["report_error"] = {"status": http_status, **report}
    outcome["fired"] = dict(plan.fired_summary())
    return outcome


def _check_chaos_outcome(outcome: dict, clean: set) -> List[str]:
    where = f"{outcome['trace']} under {outcome['plan']}"
    if "hang" in outcome:
        return [f"{where}: HANG — {outcome['hang']}"]
    if "degraded" in outcome:
        # a dropped connection under an injected fault proves nothing
        # about the server; the session is degraded, not failed
        return []
    if "error" in outcome:
        return [f"{where}: session error — {outcome['error']}"]
    problems: List[str] = []
    if "edge_status" in outcome:
        err = outcome.get("edge_error", {})
        if outcome["edge_status"] not in (400, 409, 422, 500, 503) \
                or not err.get("type"):
            problems.append(f"{where}: untyped edge rejection "
                            f"{outcome['edge_status']}: {err}")
    if outcome.get("job_state") not in ("done", "degraded"):
        problems.append(f"{where}: job ended {outcome.get('job_state')!r} "
                        "instead of serving a partial report")
    report = outcome.get("report")
    if report is None:
        problems.append(f"{where}: no report document "
                        f"({outcome.get('report_error')})")
        return problems
    problems.extend(f"{where}: {p}" for p in _well_formed_partial(report))
    got = {_race_key(e) for e in report.get("errors", [])}
    invented = got - clean
    if invented:
        problems.append(f"{where}: degraded report INVENTED "
                        f"{len(invented)} race(s) absent from clean run")
    return problems


# ---------------------------------------------------------------------------
# the kill-restart campaign (--kill-chaos)
# ---------------------------------------------------------------------------

def _durable_config(state_dir: str, shards: int) -> ServeConfig:
    # fsync=never: the bench kills via WAL freeze, not real SIGKILL, so
    # page-cache durability is irrelevant and the campaign stays fast
    return ServeConfig(shards=shards, state_dir=state_dir, fsync="never")


def _one_kill_session(name: str, lines: List[bytes], spec: str,
                      shards: int, expected: str) -> dict:
    """Upload under an armed journal fault, kill, restart, verify.

    The contract: the journal's surviving ``chunk-accepted`` prefix is
    exactly where the restarted server resumes (never more than the
    client had acked), the resumed upload seals to the same content, the
    analysis report is byte-identical to the offline pipeline, and the
    job executes exactly once in the recovered process.
    """
    outcome: dict = {"trace": name, "plan": spec, "violations": []}
    where = f"{name} under {spec}"
    viol = outcome["violations"].append
    with tempfile.TemporaryDirectory(prefix="serve-kill-") as state_dir:
        srv = ServerThread(_durable_config(state_dir, shards)).start()
        acked = 0
        trace_id = None
        plan = builtin_plan(spec)
        plan.reset()
        try:
            with ServeClient(srv.base_url, retries=0) as client:
                with inject_plan(plan):
                    trace_id = client.create_trace()
                    for seq, line in enumerate(lines):
                        try:
                            status, ack = client.upload_chunk(
                                trace_id, seq, line, retry=False)
                        except ConnectionError as exc:
                            outcome["edge_error"] = f"connection: {exc}"
                            break
                        if status != 200:
                            outcome["edge_status"] = status
                            outcome["edge_error"] = ack.get("error", {})
                            break
                        acked += 1
        except ReproError as exc:
            outcome["edge_error"] = f"{type(exc).__name__}: {exc}"
        finally:
            srv.kill()
        outcome["fired"] = dict(plan.fired_summary())
        outcome["chunks_acked"] = acked
        if trace_id is None:
            viol(f"{where}: create_trace failed before the fault armed")
            return outcome

        # ground truth: what the torn journal actually holds
        records, _info = read_wal(os.path.join(state_dir, "wal.jsonl"))
        journaled = sum(1 for r in records if r.kind == "chunk-accepted")
        outcome["chunks_journaled"] = journaled
        if journaled > acked:
            viol(f"{where}: journal holds {journaled} chunks but the "
                 f"client only saw {acked} acks — invented work")

        srv = ServerThread(_durable_config(state_dir, shards)).start()
        try:
            with ServeClient(srv.base_url) as client:
                doc = client.trace_status(trace_id)
                if doc["next_seq"] != journaled:
                    viol(f"{where}: recovered next_seq={doc['next_seq']} "
                         f"!= journaled prefix {journaled}")
                _tid, ack = client.upload_trace(lines, resume=trace_id)
                if ack.get("state") != "complete":
                    viol(f"{where}: resumed upload did not seal: {ack}")
                job_id = client.analyze(trace_id)
                done = client.wait(job_id, timeout=120.0)
                if done["state"] != "done":
                    viol(f"{where}: post-recovery job ended "
                         f"{done['state']!r}")
                http_status, report = client.report(job_id)
                if http_status != 200:
                    viol(f"{where}: report fetch failed: {http_status}")
                elif json.dumps(report.get("errors"),
                                sort_keys=True) != expected:
                    viol(f"{where}: post-recovery report diverged from "
                         "offline analysis")
                executions = srv.service.pool.get(job_id).executions
                if executions != 1:
                    viol(f"{where}: job executed {executions} times "
                         "(exactly-once violated)")
        except (ReproError, TimeoutError, ConnectionError) as exc:
            viol(f"{where}: recovery session failed — "
                 f"{type(exc).__name__}: {exc}")
        finally:
            srv.stop()
    return outcome


def _one_kill_mid_analysis(name: str, lines: List[bytes], shards: int,
                           expected: str) -> dict:
    """Kill while the job runs; restart must re-enqueue it exactly once."""
    outcome: dict = {"trace": name, "plan": "kill-mid-analysis",
                     "violations": []}
    where = f"{name} under kill-mid-analysis"
    viol = outcome["violations"].append
    with tempfile.TemporaryDirectory(prefix="serve-kill-") as state_dir:
        srv = ServerThread(_durable_config(state_dir, shards)).start()
        killed = False
        job_id = None
        try:
            with ServeClient(srv.base_url) as client:
                trace_id, _ = client.upload_trace(lines)
                # wedge the single worker so the kill lands mid-run,
                # before the terminal record can reach the journal
                with inject_plan(FaultPlan.single("worker-hang", 0,
                                                  seconds=0.4, times=1)):
                    job_id = client.analyze(trace_id, mode="parallel",
                                            workers=1)
                    time.sleep(0.05)
                    srv.kill()
                    killed = True
        except (ReproError, TimeoutError, ConnectionError) as exc:
            viol(f"{where}: setup failed — {type(exc).__name__}: {exc}")
        finally:
            if not killed:
                srv.kill()
        if job_id is None:
            return outcome

        srv = ServerThread(_durable_config(state_dir, shards)).start()
        try:
            requeued = [j.job_id for j in
                        srv.service.durable.recovered.requeue_jobs]
            outcome["requeued"] = requeued
            if requeued != [job_id]:
                viol(f"{where}: expected exactly [{job_id}] re-enqueued, "
                     f"got {requeued}")
            with ServeClient(srv.base_url) as client:
                done = client.wait(job_id, timeout=120.0)
                if done["state"] != "done":
                    viol(f"{where}: recovered job ended {done['state']!r}")
                http_status, report = client.report(job_id)
                if http_status != 200:
                    viol(f"{where}: report fetch failed: {http_status}")
                elif json.dumps(report.get("errors"),
                                sort_keys=True) != expected:
                    viol(f"{where}: recovered report diverged from "
                         "offline analysis")
            executions = srv.service.pool.get(job_id).executions
            if executions != 1:
                viol(f"{where}: job executed {executions} times after "
                     "recovery (exactly-once violated)")
        except (ReproError, TimeoutError, ConnectionError) as exc:
            viol(f"{where}: recovery session failed — "
                 f"{type(exc).__name__}: {exc}")
        finally:
            srv.stop()
    return outcome


def run_kill_chaos(traces: List[Tuple[str, str]], *, shards: int,
                   kinds: Optional[List[str]] = None) -> dict:
    """Every trace × every kill plan, each against a fresh ``--state-dir``.

    ``kinds`` filters the mid-upload plans by fault kind (the nightly
    matrix runs one kind per leg); the mid-analysis round runs whenever
    ``kill-server`` is in scope, since it models the same SIGKILL.
    """
    runs: List[dict] = []
    violations: List[str] = []
    active = [(spec, attacks) for spec, attacks in KILL_PLANS
              if not kinds or spec.split("@")[0] in kinds]
    for name, path in traces:
        lines = read_trace_lines(path)
        expected = json.dumps(
            [report_to_dict(r) for r in analyze_trace(path)], sort_keys=True)
        for spec, attacks in active:
            outcome = _one_kill_session(name, lines, spec, shards, expected)
            outcome["attacks"] = attacks
            violations.extend(outcome.pop("violations"))
            runs.append(outcome)
        if not kinds or "kill-server" in kinds:
            outcome = _one_kill_mid_analysis(name, lines, shards, expected)
            outcome["attacks"] = "SIGKILL while the analysis job runs"
            violations.extend(outcome.pop("violations"))
            runs.append(outcome)
    return {
        "plans": [spec for spec, _ in active],
        "runs": runs,
        "violations": violations,
        "ok": not violations,
    }


# ---------------------------------------------------------------------------
# the overload round (--overload)
# ---------------------------------------------------------------------------

def run_overload(traces: List[Tuple[str, str]], *, probes: int = 10) -> dict:
    """A full job queue must shed typed 429s that backoff rides out.

    One shard, queue depth 1, worker wedged: every extra analyze must be
    a typed 429 with ``Retry-After`` (never an untyped drop), and a
    retrying client must reach 202 once the queue frees.
    """
    _name, path = traces[0]
    lines = read_trace_lines(path)
    violations: List[str] = []
    typed_429s = 0
    config = ServeConfig(shards=1, max_queue_depth=1, retry_after_s=0.02)
    with ServerThread(config) as srv:
        with ServeClient(srv.base_url, retries=0) as raw, \
                ServeClient(srv.base_url, retries=10, backoff_base_s=0.02,
                            backoff_cap_s=0.2) as patient:
            trace_id, _ = raw.upload_trace(lines)
            with inject_plan(FaultPlan.single("worker-hang", 0,
                                              seconds=0.4, times=1)):
                first_job = raw.analyze(trace_id)   # occupies the queue
                for i in range(probes):
                    status, doc = raw.request(
                        "POST", f"/v1/traces/{trace_id}/analyze",
                        retry=False)
                    err = doc.get("error", {})
                    if status != 429 or err.get("type") != \
                            "ServeOverloadError":
                        violations.append(
                            f"probe {i}: untyped shed {status}: {doc}")
                    elif "retry-after" not in raw.last_headers:
                        violations.append(
                            f"probe {i}: 429 without Retry-After")
                    else:
                        typed_429s += 1
                try:
                    second_job = patient.analyze(trace_id)
                except ReproError as exc:
                    violations.append("backoff client could not ride out "
                                      f"the full queue: {exc}")
                    second_job = None
            sleeps = patient.retry_sleeps
            if sleeps == 0:
                violations.append("backoff client never slept — the "
                                  "queue was supposed to be full")
            for job_id in (first_job, second_job):
                if job_id is not None:
                    done = patient.wait(job_id, timeout=120.0)
                    if done["state"] != "done":
                        violations.append(f"job {job_id} ended "
                                          f"{done['state']!r}")
    return {
        "probes": probes,
        "typed_429s": typed_429s,
        "retry_sleeps": sleeps,
        "violations": violations,
        "ok": not violations,
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clients", type=int, default=4,
                    help="concurrent client threads (default: 4)")
    ap.add_argument("--rounds", type=int, default=2,
                    help="times each trace is replayed (default: 2)")
    ap.add_argument("--shards", type=int, default=4,
                    help="server worker shards (default: 4)")
    ap.add_argument("--max-traces", type=int, default=6,
                    help="trace-set size cap incl. corpus (default: 6)")
    ap.add_argument("--corpus-dir", default=None,
                    help="fuzz corpus directory (default: autodetect "
                         "tests/fuzz/corpus)")
    ap.add_argument("--no-verify", action="store_true",
                    help="skip the offline byte-parity check per session")
    ap.add_argument("--faults", action="store_true",
                    help="run the chaos campaign instead of the load bench")
    ap.add_argument("--kill-chaos", action="store_true",
                    help="run the kill-and-restart durability campaign")
    ap.add_argument("--kill-kinds", default=None,
                    help="comma-separated fault kinds for --kill-chaos "
                         "(default: wal-torn-write,kill-server)")
    ap.add_argument("--overload", action="store_true",
                    help="run the typed-429 overload round")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="write the bench document here")
    ap.add_argument("--merge-into", metavar="PATH", default=None,
                    help="update the 'serve' block of an existing perf "
                         "document (BENCH_perf.json)")
    ap.add_argument("--baseline", metavar="PATH", default=None,
                    help="perf document with a committed 'serve' block "
                         "to gate against")
    ap.add_argument("--tolerance", type=float, default=0.4,
                    help="gate tolerance as a fraction (default: 0.4)")
    args = ap.parse_args(argv)

    corpus_dir = args.corpus_dir
    if corpus_dir is None:
        candidate = _repo_root() / "tests" / "fuzz" / "corpus"
        corpus_dir = str(candidate) if candidate.is_dir() else None
    with tempfile.TemporaryDirectory(prefix="serve-bench-") as workdir:
        print("recording trace set "
              f"(corpus: {corpus_dir or 'none found'})...")
        traces = materialize_traces(workdir, corpus_dir=corpus_dir,
                                    max_traces=max(2, args.max_traces))
        total_chunks = sum(len(read_trace_lines(p)) for _n, p in traces)
        print(f"  {len(traces)} traces, {total_chunks} chunks: "
              + ", ".join(name for name, _ in traces))
        if args.kill_chaos:
            kinds = ([k.strip() for k in args.kill_kinds.split(",")
                      if k.strip()] if args.kill_kinds else None)
            doc = {"schema": SCHEMA, "bench": "serve-kill-chaos",
                   "chaos": run_kill_chaos(traces, shards=args.shards,
                                           kinds=kinds)}
        elif args.overload:
            doc = {"schema": SCHEMA, "bench": "serve-overload",
                   "chaos": run_overload(traces)}
        elif args.faults:
            doc = {"schema": SCHEMA, "bench": "serve-chaos",
                   "chaos": run_chaos(traces, shards=args.shards)}
        else:
            serve_block = run_load(traces, clients=args.clients,
                                   rounds=args.rounds, shards=args.shards,
                                   verify=not args.no_verify)
            doc = {"schema": SCHEMA, "bench": "serve", "serve": serve_block}

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.faults or args.kill_chaos or args.overload:
        chaos = doc["chaos"]
        label = doc["bench"]
        sessions = len(chaos.get("runs", [])) or chaos.get("probes", 0)
        print(f"{label}: {sessions} fault sessions, "
              f"{len(chaos['violations'])} violation(s)")
        for v in chaos["violations"]:
            print(f"  VIOLATION: {v}", file=sys.stderr)
        return 0 if chaos["ok"] else 1

    serve_block = doc["serve"]
    print(f"\n{serve_block['sessions']} sessions / "
          f"{serve_block['chunks_uploaded']} chunks in "
          f"{serve_block['elapsed_s']:.2f}s "
          f"({serve_block['throughput_chunks_per_s']:.0f} chunks/s)")
    for name, entry in serve_block["endpoints"].items():
        print(f"  {name:<13} p50 {entry['p50_ms']:8.3f}ms   "
              f"p95 {entry['p95_ms']:8.3f}ms   n={entry['count']}")
    for msg in serve_block["failures"]:
        print(f"  session failure: {msg}", file=sys.stderr)
    for msg in serve_block["mismatches"]:
        print(f"  PARITY MISMATCH: {msg}", file=sys.stderr)
    if serve_block["failures"] or serve_block["mismatches"]:
        return 1

    if args.merge_into:
        try:
            with open(args.merge_into) as fh:
                perf_doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            perf_doc = {"bench": "perf", "workloads": {}}
        perf_doc["serve"] = serve_block
        with open(args.merge_into, "w") as fh:
            json.dump(perf_doc, fh, indent=2)
            fh.write("\n")
        print(f"merged serve block into {args.merge_into}")

    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        except json.JSONDecodeError as exc:
            print(f"baseline {args.baseline} is not valid JSON: {exc}",
                  file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        if not baseline.get("serve"):
            print(f"baseline {args.baseline} has no 'serve' block — "
                  "regenerate with: python -m repro.bench.serve "
                  f"--merge-into {args.baseline}", file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        ok, lines = compare_to_baseline({"serve": serve_block}, baseline,
                                        args.tolerance)
        print(f"\nserve gate vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("serve perf gate FAILED", file=sys.stderr)
            return 1
        print("serve perf gate passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
