"""Verdict stability across schedules (seed-sensitivity study).

The paper's Table I prints ``FN/TP`` for Archer on TMB 1001@4T — an explicit
admission that some verdicts depend on the observed schedule — and its
Table II reports Archer's LULESH counts as a *range* over runs.  This
harness quantifies that: it reruns every Table I cell over N seeds and
reports, per (benchmark, tool), the set of verdicts observed.

The reproduction's claim, checked by ``tests/bench/test_stability.py``:
segment-graph tools (TaskSanitizer, ROMP, Taskgrind) are schedule-stable —
their analysis is of the logical graph — while only Archer, a happens-before
detector over the *observed* ordering, flips.

Usage: ``python -m repro.bench.stability [--seeds 8] [--tools archer]``
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.bench import drb, tmb
from repro.bench.runner import run_benchmark
from repro.util.tables import render_table

DEFAULT_TOOLS = ("tasksanitizer", "archer", "romp", "taskgrind")


def run_stability(seeds: int = 8, tools=DEFAULT_TOOLS
                  ) -> Dict[Tuple[str, str, int], Set[str]]:
    """(program, tool, nthreads) -> set of verdict strings over seeds."""
    out: Dict[Tuple[str, str, int], Set[str]] = defaultdict(set)
    jobs = [(p, 4) for p in drb.all_programs()]
    jobs += [(p, 1) for p in tmb.all_programs()]
    jobs += [(p, 4) for p in tmb.all_programs()]
    for program, nthreads in jobs:
        for tool in tools:
            for seed in range(seeds):
                result = run_benchmark(program, tool, nthreads=nthreads,
                                       seed=seed)
                out[(program.name, tool, nthreads)].add(result.cell())
    return out


def unstable_cells(stability: Dict[Tuple[str, str, int], Set[str]]
                   ) -> List[Tuple[str, str, int, Set[str]]]:
    return [(name, tool, nthreads, verdicts)
            for (name, tool, nthreads), verdicts in sorted(stability.items())
            if len(verdicts) > 1]


def render(stability: Dict[Tuple[str, str, int], Set[str]],
           seeds: int) -> str:
    flips = unstable_cells(stability)
    rows = [[name, tool, f"{nthreads}T", "/".join(sorted(verdicts))]
            for name, tool, nthreads, verdicts in flips]
    out = [render_table(["benchmark", "tool", "threads",
                         "verdicts observed"], rows,
                        title=f"Schedule-sensitive cells over {seeds} seeds")]
    per_tool: Dict[str, int] = defaultdict(int)
    for _n, tool, _t, _v in flips:
        per_tool[tool] += 1
    out.append("")
    out.append("flipping cells per tool: " + ", ".join(
        f"{t}: {per_tool.get(t, 0)}" for t in DEFAULT_TOOLS))
    out.append("(segment-graph tools analyze the logical graph and must "
               "report 0 flips; Archer reports what the schedule exposed)")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument("--tools", nargs="*", default=list(DEFAULT_TOOLS))
    args = parser.parse_args(argv)
    stability = run_stability(seeds=args.seeds, tools=tuple(args.tools))
    print(render(stability, args.seeds))
    return 0


if __name__ == "__main__":
    sys.exit(main())
