"""The DataRaceBench subset of Table I (task-related constructs).

Each function transcribes the corresponding DataRaceBench kernel to the
simulated OpenMP API, preserving the property the original exercises (the
missing dependence, the undeferred task, the non-sibling dependence, ...).
``expected`` records the verdicts the paper's Table I reports (at
``OMP_NUM_THREADS=4``) so the harness prints measured-vs-paper; the paper's
own ``FN/TP`` variance notation is kept verbatim.

Where a cell's cause is a *tool* property it is modeled in the tool (e.g.
TaskSanitizer's global dependence matching); where it is a *program*
property it is modeled here (e.g. firstprivate captures on the tests whose
Taskgrind FPs come from task-descriptor recycling, lazy reference captures
on DRB100/101).  EXPERIMENTS.md discusses every row.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.programs import BenchProgram

REGISTRY: List[BenchProgram] = []


def drb(name: str, racy: bool, *, min_clang: int = 8,
        features: frozenset = frozenset(), expected: Dict[str, str] = None,
        description: str = ""):
    """Decorator registering one DRB program."""
    def wrap(fn):
        REGISTRY.append(BenchProgram(
            name=name, racy=racy, entry=fn, min_clang=min_clang,
            features=features, expected=expected or {},
            source_file=f"{name}.c", description=description or fn.__doc__ or ""))
        return fn
    return wrap


def by_name(name: str) -> BenchProgram:
    for p in REGISTRY:
        if p.name == name:
            return p
    raise KeyError(name)


# ---------------------------------------------------------------------------
# dependence basics
# ---------------------------------------------------------------------------

@drb("027-taskdependmissing-orig", True,
     expected={"tasksanitizer": "TP", "archer": "FN", "romp": "TP",
               "taskgrind": "TP"})
def drb027(env):
    """Two tasks write ``i``; the second is missing its depend clause."""
    ctx = env.ctx
    i = ctx.malloc(4, line=3, name="i")

    def body():
        ctx.line(6)
        env.task(lambda tv: i.write(0, 1, line=7), depend={"out": [i]},
                 name="t_out")
        ctx.line(9)
        env.task(lambda tv: i.write(0, 2, line=10), name="t_missing")
    env.parallel_single(body)


@drb("072-taskdep1-orig", False,
     expected={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
               "taskgrind": "TN"})
def drb072(env):
    """out -> in dependence chain, correctly synchronised."""
    ctx = env.ctx
    i = ctx.malloc(4, line=3, name="i")

    def body():
        ctx.line(6)
        env.task(lambda tv: i.write(0, 1, line=7), depend={"out": [i]})
        ctx.line(9)
        env.task(lambda tv: i.read(0, line=10), depend={"in": [i]})
        env.taskwait()
    env.parallel_single(body)


@drb("078-taskdep2-orig", False,
     expected={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
               "taskgrind": "FP"})
def drb078(env):
    """One writer, two concurrent readers (with firstprivate captures)."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 1, line=7), depend={"out": [x]})
        for n in range(2):
            k.write(0, n)
            ctx.line(9 + 3 * n)
            env.task(lambda tv: (tv.private_value("k"), x.read(0)),
                     depend={"in": [x]}, firstprivate={"k": k})
        env.taskwait()
    env.parallel_single(body)


@drb("079-taskdep3-orig", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "FP"})
def drb079(env):
    """Writer + reader pair over two locations (array-section deps)."""
    ctx = env.ctx
    a = ctx.malloc(8, line=3, name="a", elem=4)
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        ctx.line(6)
        env.task(lambda tv: (a.write(0), a.write(1)),
                 depend={"out": [(a.addr, 8)]})
        for n in range(2):
            k.write(0, n)
            ctx.line(9 + 3 * n)
            env.task(lambda tv, n=n: (tv.private_value("k"), a.read(n)),
                     depend={"in": [(a.addr, 8)]}, firstprivate={"k": k})
        env.taskwait()
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# taskloop
# ---------------------------------------------------------------------------

N_TASKLOOP = 32


@drb("095-doall2-taskloop-orig", True, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb095(env):
    """taskloop without collapse: chunks race on the neighbour element."""
    ctx = env.ctx
    a = ctx.malloc(4 * (N_TASKLOOP + 1), line=3, name="a", elem=4)

    def chunk(tv, lo, hi):
        for i in range(lo, hi):
            a.read(i + 1, line=8)       # reads the next chunk's element...
            a.write(i, line=9)          # ...which that chunk writes

    def body():
        ctx.line(7)
        env.taskloop(chunk, 0, N_TASKLOOP, num_tasks=4)
    env.parallel_single(body)


@drb("096-doall2-taskloop-collapse-orig", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "FP"})
def drb096(env):
    """taskloop collapse(2): disjoint writes, no race."""
    ctx = env.ctx
    n, m = 6, 6
    a = ctx.malloc(4 * n * m, line=3, name="a", elem=4)

    def body():
        ctx.line(7)
        env.taskloop_collapse2(
            lambda tv, i, j: a.write(i * m + j, line=9), 0, n, 0, m,
            num_tasks=4)
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# capture semantics
# ---------------------------------------------------------------------------

@drb("100-task-reference-orig", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "FP", "romp": "TN",
               "taskgrind": "FP"})
def drb100(env):
    """Reference-style capture: tasks re-read the original at start."""
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x", elem=8)

    def body():
        for k in range(3):
            ctx.line(6)
            x.write(0, k, line=6)
            ctx.line(8)
            env.task(lambda tv: ctx.compute(10), lazy_capture={"x": x})
        env.taskwait()
    env.parallel_single(body)


@drb("101-task-value-orig", False,
     expected={"tasksanitizer": "FP", "archer": "FP", "romp": "TN",
               "taskgrind": "FP"})
def drb101(env):
    """By-value capture that compilers lower as a start-time re-read."""
    ctx = env.ctx
    i = ctx.malloc(8, line=3, name="i", elem=8)

    def body():
        for k in range(3):
            ctx.line(6)
            i.write(0, k, line=6)
            ctx.line(8)
            env.task(lambda tv: ctx.compute(10), lazy_capture={"i": i})
        env.taskwait()
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# taskwait / taskgroup
# ---------------------------------------------------------------------------

@drb("106-taskwaitmissing-orig", True,
     expected={"tasksanitizer": "TP", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb106(env):
    """Parent reads the task's output without a taskwait."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 42, line=7))
        ctx.line(9)
        x.read(0, line=9)               # should have taskwait'ed first
    env.parallel_single(body)


@drb("107-taskgroup-orig", False,
     expected={"tasksanitizer": "FP", "archer": "TN", "romp": "TN",
               "taskgrind": "FP"})
def drb107(env):
    """taskgroup orders the tasks before the parent's reads."""
    ctx = env.ctx
    a = ctx.malloc(8, line=3, name="a", elem=4)
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        def group():
            for n in range(2):
                k.write(0, n)
                ctx.line(7 + 2 * n)
                env.task(lambda tv, n=n: (tv.private_value("k"),
                                          a.write(n, line=8 + 2 * n)),
                         firstprivate={"k": k})
        ctx.line(6)
        env.taskgroup(group)
        a.read(0, line=12)
        a.read(1, line=13)
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# undeferred tasks
# ---------------------------------------------------------------------------

@drb("122-taskundeferred-orig", False,
     expected={"tasksanitizer": "FP", "archer": "TN", "romp": "FP",
               "taskgrind": "TN"})
def drb122(env):
    """if(0) tasks are sequenced with the encountering task."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        for _ in range(3):
            ctx.line(6)
            env.task(lambda tv: x.write(0, line=7), if_=False)
            x.read(0, line=9)           # safe: the task already completed
    env.parallel_single(body)


@drb("123-taskundeferred-orig", True,
     expected={"tasksanitizer": "TP", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb123(env):
    """Undeferred tasks on *different* threads still race with each other."""
    ctx = env.ctx
    x = ctx.global_var("x", 4)

    def region(tid):
        ctx.line(6)
        env.task(lambda tv: x.write(0, line=7), if_=False)
    env.parallel(region)


# ---------------------------------------------------------------------------
# threadprivate
# ---------------------------------------------------------------------------

@drb("127-tasking-threadprivate1-orig", False, min_clang=9,
     features=frozenset({"romp-segv"}),
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "segv",
               "taskgrind": "FP"})
def drb127(env):
    """Tasks write the executing thread's threadprivate copy."""
    ctx = env.ctx
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        for n in range(2):
            k.write(0, n)
            ctx.line(6 + 2 * n)
            env.task(lambda tv: (tv.private_value("k"),
                                 env.threadprivate("tp1").write(0, line=8)),
                     firstprivate={"k": k})
        env.taskwait()
    env.parallel_single(body)


@drb("128-tasking-threadprivate2-orig", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "FP"})
def drb128(env):
    """Like 127 with a taskwait-free but still-safe access pattern."""
    ctx = env.ctx
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        for n in range(2):
            k.write(0, n)
            ctx.line(6 + 2 * n)
            env.task(lambda tv: (tv.private_value("k"),
                                 env.threadprivate("tp2").write(0, line=8),
                                 env.threadprivate("tp2").read(0, line=9)),
                     firstprivate={"k": k})
        env.taskwait()
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# mergeable
# ---------------------------------------------------------------------------

@drb("129-mergeable-taskwait-orig", True, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "FN", "romp": "FN",
               "taskgrind": "FN"})
def drb129(env):
    """Racy only when the task is *merged* (then its 'private' x aliases the
    parent's) — the runtime never merges deferred tasks, so no tool can
    witness the race: the paper's universal FN."""
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x", elem=8)

    def body():
        x.write(0, 2, line=5)
        ctx.line(6)
        env.task(lambda tv: tv.private(
            "x").write(0, tv.private_value("x") + 1, line=7),
            mergeable=True, firstprivate={"x": x})
        x.read(0, line=9)               # race iff the task was merged
    env.parallel_single(body)


@drb("130-mergeable-taskwait-orig", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "TN"})
def drb130(env):
    """The corrected version: taskwait before the parent's read."""
    ctx = env.ctx
    x = ctx.malloc(8, line=3, name="x", elem=8)

    def body():
        x.write(0, 2, line=5)
        ctx.line(6)
        env.task(lambda tv: ctx.compute(5), mergeable=True)
        env.taskwait()
        x.read(0, line=9)
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# OpenMP 4.5 dependence patterns
# ---------------------------------------------------------------------------

@drb("131-taskdep4-orig-omp45", True, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb131(env):
    """Writer, reader, then a second writer missing its dependence."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 1, line=7), depend={"out": [x]})
        ctx.line(9)
        env.task(lambda tv: x.read(0, line=10), depend={"in": [x]})
        ctx.line(12)
        env.task(lambda tv: x.write(0, 2, line=13))     # missing depend!
        env.taskwait()
    env.parallel_single(body)


@drb("132-taskdep4-orig-omp45", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "TN"})
def drb132(env):
    """131 fixed: the second writer declares inout."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 1, line=7), depend={"out": [x]})
        ctx.line(9)
        env.task(lambda tv: x.read(0, line=10), depend={"in": [x]})
        ctx.line(12)
        env.task(lambda tv: x.write(0, 2, line=13), depend={"inout": [x]})
        env.taskwait()
    env.parallel_single(body)


@drb("133-taskdep5-orig-omp45", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "TN"})
def drb133(env):
    """Concurrent readers between ordered writers (all correct)."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 1, line=7), depend={"out": [x]})
        for n in range(2):
            ctx.line(9 + n)
            env.task(lambda tv: x.read(0, line=10), depend={"in": [x]})
        ctx.line(12)
        env.task(lambda tv: x.write(0, 2, line=13), depend={"out": [x]})
        env.taskwait()
    env.parallel_single(body)


@drb("134-taskdep5-orig-omp45", True, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb134(env):
    """133 broken: the trailing writer only declares in."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 1, line=7), depend={"out": [x]})
        for n in range(2):
            ctx.line(9 + n)
            env.task(lambda tv: x.read(0, line=10), depend={"in": [x]})
        ctx.line(12)
        env.task(lambda tv: x.write(0, 2, line=13), depend={"in": [x]})
        env.taskwait()
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# mutexinoutset
# ---------------------------------------------------------------------------

@drb("135-taskdep-mutexinoutset-orig", False, min_clang=9,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "FP",
               "taskgrind": "TN"})
def drb135(env):
    """Two mutexinoutset members increment x; a dependent reader follows."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(5)
        env.task(lambda tv: x.write(0, 0, line=6), depend={"out": [x]})
        for n in range(2):
            ctx.line(8 + 2 * n)
            env.task(lambda tv: (x.read(0), x.write(0, line=9 + 2 * n)),
                     depend={"mutexinoutset": [x]})
        ctx.line(13)
        env.task(lambda tv: x.read(0, line=14), depend={"in": [x]})
        env.taskwait()
    env.parallel_single(body)


@drb("136-taskdep-mutexinoutset-orig", True,
     expected={"tasksanitizer": "TP", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb136(env):
    """135 broken: the parent reads x with no dependence at all."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(5)
        env.task(lambda tv: x.write(0, 0, line=6), depend={"out": [x]})
        for n in range(2):
            ctx.line(8 + 2 * n)
            env.task(lambda tv: (x.read(0), x.write(0, line=9 + 2 * n)),
                     depend={"mutexinoutset": [x]})
        x.read(0, line=13)              # no dependence, no taskwait: race
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# OpenMP 5.0: inoutset
# ---------------------------------------------------------------------------

@drb("165-taskdep4-orig-omp50", True, min_clang=11,
     expected={"tasksanitizer": "ncs", "archer": "FN", "romp": "TP",
               "taskgrind": "TP"})
def drb165(env):
    """inoutset members are mutually unordered — and both write x."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(5)
        env.task(lambda tv: x.write(0, 0, line=6), depend={"out": [x]})
        for n in range(2):
            ctx.line(8 + 2 * n)
            env.task(lambda tv: x.write(0, line=9 + 2 * n),
                     depend={"inoutset": [x]})
        env.taskwait()
    env.parallel_single(body)


@drb("166-taskdep4-orig-omp50", False, min_clang=11,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "TN"})
def drb166(env):
    """inoutset members write disjoint elements: correct."""
    ctx = env.ctx
    a = ctx.malloc(8, line=3, name="a", elem=4)
    x = ctx.malloc(4, line=4, name="x")

    def body():
        ctx.line(6)
        env.task(lambda tv: x.write(0, 0, line=7), depend={"out": [x]})
        for n in range(2):
            ctx.line(9 + 2 * n)
            env.task(lambda tv, n=n: a.write(n, line=10 + 2 * n),
                     depend={"inoutset": [x]})
        env.taskwait()
    env.parallel_single(body)


@drb("167-taskdep4-orig-omp50", False, min_clang=11,
     expected={"tasksanitizer": "ncs", "archer": "TN", "romp": "TN",
               "taskgrind": "TN"})
def drb167(env):
    """inoutset set ordered against a later out writer: correct."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        for n in range(2):
            ctx.line(5 + 2 * n)
            env.task(lambda tv: x.read(0, line=6 + 2 * n),
                     depend={"inoutset": [x]})
        ctx.line(10)
        env.task(lambda tv: x.write(0, line=11), depend={"out": [x]})
        env.taskwait()
    env.parallel_single(body)


@drb("168-taskdep5-orig-omp50", True, min_clang=11,
     expected={"tasksanitizer": "ncs", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb168(env):
    """An inoutset member races with the parent's unsynchronised read."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(5)
        env.task(lambda tv: x.write(0, line=6), depend={"inoutset": [x]})
        x.read(0, line=8)               # no taskwait
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# non-sibling dependences (the rows that motivate Taskgrind)
# ---------------------------------------------------------------------------

@drb("173-non-sibling-taskdep", True,
     expected={"tasksanitizer": "FN", "archer": "FN", "romp": "FN",
               "taskgrind": "TP"})
def drb173(env):
    """depend clauses only bind siblings: an uncle and a nephew race."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")

    def body():
        ctx.line(5)
        env.task(lambda tv: x.write(0, 1, line=6), depend={"out": [x]},
                 name="uncle")

        def outer(tv):
            ctx.line(9)
            env.task(lambda tv2: x.write(0, 2, line=10),
                     depend={"out": [x]}, name="nephew")
            env.taskwait()

        ctx.line(8)
        env.task(outer, name="outer")
        env.taskwait()
    env.parallel_single(body)


@drb("174-non-sibling-taskdep", False,
     expected={"tasksanitizer": "FP", "archer": "TN", "romp": "TN",
               "taskgrind": "FP"},
     description="The paper's Table I prints 'TP' for TaskSanitizer on this "
                 "race-free row — semantically a report on a no-race "
                 "program, i.e. FP; we record FP.")
def drb174(env):
    """173 fixed with a taskgroup; captures keep Taskgrind's descriptor FP,
    and TaskSanitizer's missing taskgroup support makes it report too."""
    ctx = env.ctx
    x = ctx.malloc(4, line=3, name="x")
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        ctx.line(5)
        env.taskgroup(lambda: env.task(
            lambda tv: x.write(0, 1, line=6), name="uncle"))

        def outer(tv):
            for n in range(2):
                k.write(0, n)
                ctx.line(10 + 2 * n)
                env.task(lambda tv2, n=n: (tv2.private_value("k"),
                                           x.read(0, line=11 + 2 * n)),
                         firstprivate={"k": k}, name=f"nephew{n}")
            env.taskwait()

        ctx.line(9)
        env.task(outer, name="outer")
        env.taskwait()
    env.parallel_single(body)


@drb("175-non-sibling-taskdep2", True,
     expected={"tasksanitizer": "FN", "archer": "TP", "romp": "TP",
               "taskgrind": "TP"})
def drb175(env):
    """Non-sibling dependences across *nested parallel regions*."""
    ctx = env.ctx
    x = ctx.global_var("x", 4)

    def body():
        def nested_writer(label, line):
            def outer(tv):
                def inner_region(_tid):
                    def single_body():
                        ctx.line(line)
                        env.task(lambda tv2: x.write(0, line=line + 1),
                                 depend={"out": [x]}, name=label)
                    env.single(single_body)
                env.parallel(inner_region, num_threads=2)
            return outer

        ctx.line(5)
        env.task(nested_writer("w1", 6), name="o1")
        ctx.line(9)
        env.task(nested_writer("w2", 10), name="o2")
        env.taskwait()
    env.parallel_single(body)


def all_programs() -> List[BenchProgram]:
    return list(REGISTRY)
