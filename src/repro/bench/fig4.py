"""Fig. 4 harness: execution time and memory vs mesh size.

Reproduces the figure's setup: LULESH ``-s $s -tel 4 -tnl 4 -p -i 4`` with
the *reference* and *Archer* running on 4 threads and *Taskgrind* on a
single thread (the paper's workaround for the multi-thread deadlock).  Both
time and memory follow the application's O(s^3) complexity; the expected
shape is Taskgrind ~100x above the reference in time and ~6x in memory, with
Archer in between.

The ROMP sidebar (omitted from the paper's figure because the instrumented
program crashed in the first iteration; at ``-s 64`` it had consumed 79 s
and 75 GB before dying) is reproduced with ``--romp``: ROMP runs until its
modeled first-iteration crash and the harness reports the time/memory it had
consumed.

Usage: ``python -m repro.bench.fig4 [--sizes 4 8 16 24 32] [--romp]``
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.baselines.romp import RompTool
from repro.bench.runner import TOOLS
from repro.errors import GuestCrash, SimDeadlock
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.util.tables import render_table
from repro.workloads.lulesh import LuleshConfig, run_lulesh

DEFAULT_SIZES = (4, 8, 16, 24, 32)


@dataclass
class Point:
    s: int
    tool: str
    nthreads: int
    time_s: float
    mem_mib: float
    crashed: bool = False


def measure(tool_name: str, s: int, nthreads: int, *, seed: int = 0,
            romp_crash: bool = True) -> Point:
    machine = Machine(seed=seed)
    if tool_name == "romp":
        tool = RompTool(crash_after_regions=1 if romp_crash else None)
    else:
        tool = TOOLS[tool_name]()
    if tool_name != "none":
        machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads, source_file="lulesh.cc")
    if tool_name != "none":
        env.rt.ompt.register(tool.make_ompt_shim())
    crashed = False
    try:
        machine.run(lambda: run_lulesh(env, LuleshConfig(s=s, progress=True)))
        tool.finalize()
    except (GuestCrash, SimDeadlock):
        crashed = True
    return Point(s=s, tool=tool_name, nthreads=nthreads,
                 time_s=machine.cost.seconds,
                 mem_mib=machine.memory_meter().total_mib, crashed=crashed)


def run_fig4(sizes=DEFAULT_SIZES, *, include_romp: bool = False
             ) -> List[Point]:
    """The three figure series (plus the optional ROMP sidebar)."""
    series = [("none", 4), ("archer", 4), ("taskgrind", 1)]
    if include_romp:
        series.append(("romp", 4))
    points: List[Point] = []
    for s in sizes:
        for tool, nthreads in series:
            points.append(measure(tool, s, nthreads))
    return points


def render(points: List[Point]) -> str:
    tools = sorted({p.tool for p in points},
                   key=lambda t: ["none", "archer", "taskgrind",
                                  "romp"].index(t))
    sizes = sorted({p.s for p in points})
    by = {(p.tool, p.s): p for p in points}

    def cell(p: Optional[Point], what: str) -> str:
        if p is None:
            return "-"
        suffix = " (crash)" if p.crashed else ""
        if what == "time":
            return f"{p.time_s:.3f}{suffix}"
        return f"{p.mem_mib:.0f}{suffix}"

    out = []
    for what, unit in (("time", "s"), ("mem", "MiB")):
        rows = [[f"{t} ({'1T' if t == 'taskgrind' else '4T'})"]
                + [cell(by.get((t, s)), what) for s in sizes]
                for t in tools]
        out.append(render_table(
            ["series"] + [f"s={s}" for s in sizes], rows,
            title=f"Fig. 4 — LULESH {what} [{unit}] vs mesh size "
                  "(-tel 4 -tnl 4 -p -i 4)"))
        out.append("")
    out.append("expected shape: all series grow O(s^3); Taskgrind ~100x the")
    out.append("reference in time and ~6x in memory, Archer in between;")
    out.append("ROMP (sidebar) crashes in iteration 1 with far larger "
               "overheads (paper: 79 s / 75 GB at s=64).")
    return "\n".join(out)


def to_csv(points: List[Point]) -> str:
    """The series as CSV (for external plotting of the figure)."""
    lines = ["tool,threads,s,time_s,mem_mib,crashed"]
    for p in sorted(points, key=lambda p: (p.tool, p.s)):
        lines.append(f"{p.tool},{p.nthreads},{p.s},{p.time_s:.6f},"
                     f"{p.mem_mib:.2f},{int(p.crashed)}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="*",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--romp", action="store_true",
                        help="include the ROMP sidebar series")
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the series as CSV")
    args = parser.parse_args(argv)
    points = run_fig4(tuple(args.sizes), include_romp=args.romp)
    print(render(points))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write(to_csv(points) + "\n")
        print(f"\nCSV written to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
