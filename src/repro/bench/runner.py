"""Run one (program × tool × threads × seed) combination.

Outcome classification mirrors the paper's tables exactly: ``TP/FP/TN/FN``
from reports-vs-ground-truth, ``ncs`` when the modeled compiler rejects the
program, ``segv`` when the instrumented run crashes, ``deadlock`` when the
simulator's deadlock detector fires (the Taskgrind multi-thread cells of
Table II).

CLI: ``python -m repro run PROGRAM [--tool taskgrind] [--threads 4]
[--seed 0] [--save-trace out.json] [--stats[=json|pretty]]`` — run one
benchmark program (DRB or TMB, see ``--list``) and print the verdict and
reports; ``--save-trace`` dumps the run for ``python -m repro.core.offline``.
``--fault-plan plan.json`` (or ``--fault-plan builtin:<kind@at>``) arms the
fault injector: the run is expected to degrade gracefully — crashes salvage
the recorded prefix, trace damage salvages on load — never to traceback.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.archer import ArcherTool
from repro.baselines.common import Verdict, classify
from repro.baselines.romp import RompTool
from repro.baselines.tasksanitizer import TaskSanitizerTool
from repro.bench.programs import BenchProgram
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.errors import (GuestCrash, NoCompilerSupport, OutOfMemory,
                          SimDeadlock)
from repro.faults.inject import inject_plan
from repro.faults.plan import FaultPlan
from repro.machine.cost import MemoryMeter
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.vex.tool import NullTool

#: tool name -> factory
TOOLS: Dict[str, Callable] = {
    "none": NullTool,
    "taskgrind": TaskgrindTool,
    "archer": ArcherTool,
    "tasksanitizer": TaskSanitizerTool,
    "romp": RompTool,
}


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    program: str
    tool: str
    nthreads: int
    seed: int
    verdict: Verdict
    report_count: int = 0
    reports: list = field(default_factory=list)
    sim_seconds: float = 0.0
    memory: Optional[MemoryMeter] = None
    crash_reason: str = ""
    machine: Optional[Machine] = None
    tool_obj: object = None
    #: the tool's stats document (taskgrind-stats/1) when the tool has one
    stats: Optional[dict] = None

    @property
    def sim_memory_mib(self) -> float:
        return self.memory.total_mib if self.memory is not None else 0.0

    def cell(self) -> str:
        """The Table I cell text for this run."""
        return str(self.verdict)


def run_benchmark(program: BenchProgram, tool_name: str, *,
                  nthreads: int = 4, seed: int = 0,
                  taskgrind_options: Optional[TaskgrindOptions] = None,
                  keep_machine: bool = False,
                  fault_plan: Optional[FaultPlan] = None,
                  on_machine: Optional[Callable] = None) -> RunResult:
    """Execute ``program`` under ``tool_name`` and classify the outcome.

    The result's stats document carries a ``"registry"`` block with the
    *per-run* metrics delta (counters/phases scoped to this call), so two
    back-to-back runs in one process report independent numbers instead of
    the process-lifetime cumulative registry state.

    ``on_machine(machine, tool)`` is called after the environment is wired
    but before the run starts — the attachment point for the two-phase
    schedule recorder and replayer (:mod:`repro.replay`).

    ``fault_plan`` arms the fault injector for the duration of the run
    (resilience testing).  A faulted run that crashes mid-execution is
    *salvaged*: the tool's finalize pass runs over whatever was recorded up
    to the crash, so the verdict keeps the crash class but the result still
    carries the reports and stats recovered from the prefix.
    """
    from repro.obs.metrics import get_registry
    from repro.obs.tracer import get_tracer
    reg_baseline = get_registry().mark()
    tracer = get_tracer()
    if tracer.enabled:
        # per-run timeline scope: segment ids restart at 0 each run, so the
        # span-anchoring tables must not leak across back-to-back runs
        tracer.new_run()
    factory = TOOLS[tool_name]
    if tool_name == "taskgrind" and taskgrind_options is not None:
        tool = factory(taskgrind_options)
    else:
        tool = factory()

    # compile-time gates (ncs) and instrumentation-time crashes (ROMP segv)
    try:
        tool.compile_check(program)
    except NoCompilerSupport:
        return RunResult(program.name, tool_name, nthreads, seed, Verdict.NCS)
    except GuestCrash as crash:
        return RunResult(program.name, tool_name, nthreads, seed,
                         Verdict.SEGV, crash_reason=crash.reason)

    machine = Machine(seed=seed)
    if tool_name != "none":
        machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads,
                   source_file=program.source_file)
    if hasattr(tool, "make_ompt_shim") and tool_name != "none":
        env.rt.ompt.register(tool.make_ompt_shim())

    def entry() -> None:
        with env.ctx.function("main", file=program.source_file, line=1):
            program.entry(env)

    result = RunResult(program.name, tool_name, nthreads, seed,
                       Verdict.TN, tool_obj=tool)
    if on_machine is not None:
        on_machine(machine, tool)

    def salvage_finalize() -> None:
        """Best-effort post-crash analysis of the recorded prefix."""
        if fault_plan is None or not hasattr(tool, "finalize"):
            return
        try:
            result.reports = tool.finalize()
            result.report_count = len(result.reports)
            if hasattr(tool, "stats"):
                result.stats = tool.stats()
        except Exception as exc:
            result.crash_reason += f" (salvage finalize failed: {exc!r})"

    with inject_plan(fault_plan):
        try:
            machine.run(entry)
        except SimDeadlock:
            result.verdict = Verdict.DEADLOCK
            result.sim_seconds = machine.cost.seconds
            result.memory = machine.memory_meter()
            salvage_finalize()
            if keep_machine:
                result.machine = machine
            return result
        except (GuestCrash, OutOfMemory) as crash:
            result.verdict = Verdict.SEGV
            result.crash_reason = str(crash)
            result.sim_seconds = machine.cost.seconds
            result.memory = machine.memory_meter()
            salvage_finalize()
            if keep_machine:
                result.machine = machine
            return result

        reports = tool.finalize()
    result.reports = reports
    result.report_count = len(reports)
    result.verdict = classify(bool(reports), program.racy)
    result.sim_seconds = machine.cost.seconds
    result.memory = machine.memory_meter()
    if hasattr(tool, "stats"):
        result.stats = tool.stats()
        result.stats["registry"] = get_registry().delta_since(reg_baseline)
    if keep_machine:
        result.machine = machine
    return result


# ---------------------------------------------------------------------------
# CLI: python -m repro run PROGRAM
# ---------------------------------------------------------------------------

def _find_program(name: str) -> Optional[BenchProgram]:
    from repro.bench import drb, synth, tmb
    for registry in (drb.REGISTRY, tmb.REGISTRY, synth.REGISTRY):
        for program in registry:
            if program.name == name:
                return program
    return None


def _all_program_names() -> List[str]:
    from repro.bench import drb, synth, tmb
    return [p.name for p in drb.REGISTRY] + [p.name for p in tmb.REGISTRY] \
        + [p.name for p in synth.REGISTRY]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description="Run one benchmark program under one tool.")
    parser.add_argument("program", nargs="?",
                        help="a DRB/TMB program name (see --list)")
    parser.add_argument("--tool", default="taskgrind", choices=sorted(TOOLS))
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save-trace", metavar="PATH", default=None,
                        help="dump the run as a trace for offline analysis "
                             "(taskgrind only)")
    parser.add_argument("--record", default="full",
                        choices=["full", "sync"],
                        help="access recording mode (taskgrind only): "
                             "'sync' is the cheap two-phase first pass — "
                             "accesses observed but not recorded, no "
                             "analysis; pair with --save-schedule")
    parser.add_argument("--save-schedule", metavar="PATH", default=None,
                        help="save the run's schedule as a "
                             "taskgrind-schedule/1 document for "
                             "'repro replay' (taskgrind only)")
    parser.add_argument("--explain", action="store_true",
                        help="append a provenance witness to each report "
                             "(task ancestry, common ancestor, hb evidence; "
                             "taskgrind only)")
    parser.add_argument("--trace-timeline", metavar="OUT.json", default=None,
                        help="export the execution timeline as Chrome "
                             "trace-event JSON (virtual-time axis; load in "
                             "Perfetto)")
    parser.add_argument("--profile", metavar="OUT.json", default=None,
                        help="enable the attribution profiler and write a "
                             "taskgrind-profile/1 document (see "
                             "'python -m repro profile')")
    parser.add_argument("--flame", metavar="OUT.folded", default=None,
                        help="enable the attribution profiler and write "
                             "collapsed-stack flamegraph text "
                             "(flamegraph.pl input)")
    parser.add_argument("--fault-plan", metavar="PLAN", default=None,
                        help="arm a taskgrind-fault-plan/1 JSON file for "
                             "this run (resilience testing); "
                             "'builtin:<kind@at>' names a CI-matrix plan, "
                             "e.g. builtin:worker-exc@0")
    parser.add_argument("--analysis", default=None,
                        choices=["naive", "indexed", "parallel"],
                        help="analysis mode (taskgrind only; default "
                             "indexed, parallel runs supervised)")
    parser.add_argument("--list", action="store_true",
                        help="list runnable program names and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name in _all_program_names():
            print(name)
        return 0
    if args.program is None:
        parser.error("program name required (or --list)")
    program = _find_program(args.program)
    if program is None:
        print(f"unknown program {args.program!r} "
              "(see python -m repro run --list)", file=sys.stderr)
        return 2
    if args.save_trace and args.tool != "taskgrind":
        print("--save-trace requires --tool taskgrind", file=sys.stderr)
        return 2
    if args.explain and args.tool != "taskgrind":
        print("--explain requires --tool taskgrind", file=sys.stderr)
        return 2
    if (args.record != "full" or args.save_schedule) \
            and args.tool != "taskgrind":
        print("--record/--save-schedule require --tool taskgrind",
              file=sys.stderr)
        return 2
    if args.record == "sync" and args.save_trace:
        print("--record sync keeps no access evidence; there is no trace "
              "to save (use --save-schedule)", file=sys.stderr)
        return 2

    plan: Optional[FaultPlan] = None
    if args.fault_plan is not None:
        from repro.faults.plan import builtin_plan, load_fault_plan
        try:
            if args.fault_plan.startswith("builtin:"):
                plan = builtin_plan(args.fault_plan[len("builtin:"):])
            else:
                plan = load_fault_plan(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    tracer = None
    if args.trace_timeline is not None:
        from repro.obs.tracer import get_tracer
        tracer = get_tracer()
        tracer.enable()
    prof = None
    if args.profile is not None or args.flame is not None:
        from repro.obs.prof import get_profiler
        prof = get_profiler()
        prof.enable()
        prof.meta.update({
            "program": program.name, "tool": args.tool,
            "nthreads": args.threads, "seed": args.seed,
            "record_mode": args.record,
        })
    options = None
    if args.explain or args.analysis is not None or args.record != "full":
        options = TaskgrindOptions(explain=args.explain,
                                   record_mode=args.record)
        if args.analysis is not None:
            options.analysis = args.analysis
    recorder = None
    on_machine = None
    if args.save_schedule is not None:
        from repro.replay.record import ScheduleRecorder
        if options is None:
            options = TaskgrindOptions(record_mode=args.record)
        recorder = ScheduleRecorder({
            "kind": "bench", "name": program.name,
            "nthreads": args.threads, "seed": args.seed,
            "record_mode": args.record,
            "options": {
                "analysis": options.analysis,
                "analysis_kernel": options.analysis_kernel,
                "model_multithread_lockup":
                    options.model_multithread_lockup,
            }})
        on_machine = recorder.attach
    result = run_benchmark(program, args.tool, nthreads=args.threads,
                           seed=args.seed, taskgrind_options=options,
                           keep_machine=args.save_trace is not None,
                           fault_plan=plan, on_machine=on_machine)
    # re-arming the plan for the trace save resets its fired counters, so
    # bank the run-phase firings now for the summary line
    run_fired = dict(plan.fired_summary()) if plan is not None else {}
    if tracer is not None:
        tracer.export(args.trace_timeline)
        tracer.disable()
        print(f"wrote timeline to {args.trace_timeline} "
              f"({len(tracer)} events)")
    if prof is not None:
        from repro.obs import profdoc
        phases = ((result.stats or {}).get("registry") or {}).get("phases")
        if args.profile is not None:
            profdoc.save_profile(args.profile, prof, phases=phases)
            print(f"wrote profile to {args.profile} "
                  f"({len(prof)} buckets, "
                  f"{prof.total_ops:.0f} attributed ops)")
        if args.flame is not None:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write(prof.folded())
            print(f"wrote flamegraph input to {args.flame}")
        prof.disable()
    print(f"{result.program} under {result.tool} "
          f"({result.nthreads} threads, seed {result.seed}): "
          f"{result.cell()} — {result.report_count} report(s), "
          f"{result.sim_seconds:.3f} simulated s, "
          f"{result.sim_memory_mib:.1f} MiB")
    if result.crash_reason:
        print(f"  crash: {result.crash_reason}")
    for report in result.reports:
        from repro.core.reports import format_report
        print()
        print(format_report(report))
    if args.save_trace:
        crashed = result.verdict.name in ("NCS", "SEGV", "DEADLOCK")
        if result.machine is None or result.tool_obj is None or \
                (crashed and plan is None):
            print("run did not finish cleanly; no trace written",
                  file=sys.stderr)
            return 1
        from repro.core.trace import save_trace
        from repro.errors import InjectedFault
        try:
            with inject_plan(plan):
                save_trace(result.tool_obj, result.machine, args.save_trace)
        except (InjectedFault, OSError) as exc:
            print(f"trace save failed ({exc}); any pre-existing trace at "
                  f"{args.save_trace} is intact", file=sys.stderr)
        else:
            print(f"\nwrote trace to {args.save_trace}")
    if args.save_schedule is not None:
        if result.verdict.name in ("NCS", "SEGV", "DEADLOCK"):
            print("run did not finish cleanly; a partial schedule would "
                  "pin the wrong interleaving — nothing written",
                  file=sys.stderr)
            return 1
        from repro.errors import InjectedFault
        from repro.replay.schedule import save_schedule
        doc = recorder.finish()
        try:
            with inject_plan(plan):
                save_schedule(doc, args.save_schedule)
        except (InjectedFault, OSError) as exc:
            print(f"schedule save failed ({exc}); any pre-existing "
                  f"schedule at {args.save_schedule} is intact",
                  file=sys.stderr)
        else:
            print(f"\nwrote schedule to {args.save_schedule} "
                  f"({doc.summary()})")
    if plan is not None:
        fired = {name: count + run_fired.get(name, 0)
                 for name, count in plan.fired_summary().items()}
        print("fault plan: " + (", ".join(
            f"{name} fired {count}x" for name, count in fired.items())
            or "no points"))
        if result.verdict.name in ("SEGV", "DEADLOCK"):
            print(f"  run crashed as planned; salvaged "
                  f"{result.report_count} report(s) from the recorded "
                  f"prefix")
    # mirror the offline CLI's convention: nonzero when races were reported
    return 0 if result.report_count == 0 else 1


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
