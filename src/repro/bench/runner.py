"""Run one (program × tool × threads × seed) combination.

Outcome classification mirrors the paper's tables exactly: ``TP/FP/TN/FN``
from reports-vs-ground-truth, ``ncs`` when the modeled compiler rejects the
program, ``segv`` when the instrumented run crashes, ``deadlock`` when the
simulator's deadlock detector fires (the Taskgrind multi-thread cells of
Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.baselines.archer import ArcherTool
from repro.baselines.common import ToolOutcome, Verdict, classify
from repro.baselines.romp import RompTool
from repro.baselines.tasksanitizer import TaskSanitizerTool
from repro.bench.programs import BenchProgram
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.errors import GuestCrash, NoCompilerSupport, OutOfMemory, SimDeadlock
from repro.machine.cost import MemoryMeter
from repro.machine.machine import Machine
from repro.openmp.api import OmpEnv, make_env
from repro.vex.tool import NullTool

#: tool name -> factory
TOOLS: Dict[str, Callable] = {
    "none": NullTool,
    "taskgrind": TaskgrindTool,
    "archer": ArcherTool,
    "tasksanitizer": TaskSanitizerTool,
    "romp": RompTool,
}


@dataclass
class RunResult:
    """Everything one benchmark run produced."""

    program: str
    tool: str
    nthreads: int
    seed: int
    verdict: Verdict
    report_count: int = 0
    reports: list = field(default_factory=list)
    sim_seconds: float = 0.0
    memory: Optional[MemoryMeter] = None
    crash_reason: str = ""
    machine: Optional[Machine] = None
    tool_obj: object = None

    @property
    def sim_memory_mib(self) -> float:
        return self.memory.total_mib if self.memory is not None else 0.0

    def cell(self) -> str:
        """The Table I cell text for this run."""
        return str(self.verdict)


def run_benchmark(program: BenchProgram, tool_name: str, *,
                  nthreads: int = 4, seed: int = 0,
                  taskgrind_options: Optional[TaskgrindOptions] = None,
                  keep_machine: bool = False) -> RunResult:
    """Execute ``program`` under ``tool_name`` and classify the outcome."""
    factory = TOOLS[tool_name]
    if tool_name == "taskgrind" and taskgrind_options is not None:
        tool = factory(taskgrind_options)
    else:
        tool = factory()

    # compile-time gates (ncs) and instrumentation-time crashes (ROMP segv)
    try:
        tool.compile_check(program)
    except NoCompilerSupport:
        return RunResult(program.name, tool_name, nthreads, seed, Verdict.NCS)
    except GuestCrash as crash:
        return RunResult(program.name, tool_name, nthreads, seed,
                         Verdict.SEGV, crash_reason=crash.reason)

    machine = Machine(seed=seed)
    if tool_name != "none":
        machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads,
                   source_file=program.source_file)
    if hasattr(tool, "make_ompt_shim") and tool_name != "none":
        env.rt.ompt.register(tool.make_ompt_shim())

    def entry() -> None:
        with env.ctx.function("main", file=program.source_file, line=1):
            program.entry(env)

    result = RunResult(program.name, tool_name, nthreads, seed,
                       Verdict.TN, tool_obj=tool)
    try:
        machine.run(entry)
    except SimDeadlock:
        result.verdict = Verdict.DEADLOCK
        result.sim_seconds = machine.cost.seconds
        result.memory = machine.memory_meter()
        return result
    except (GuestCrash, OutOfMemory) as crash:
        result.verdict = Verdict.SEGV
        result.crash_reason = str(crash)
        result.sim_seconds = machine.cost.seconds
        result.memory = machine.memory_meter()
        return result

    reports = tool.finalize()
    result.reports = reports
    result.report_count = len(reports)
    result.verdict = classify(bool(reports), program.racy)
    result.sim_seconds = machine.cost.seconds
    result.memory = machine.memory_meter()
    if keep_machine:
        result.machine = machine
    return result
