"""Benchmark harnesses: everything needed to regenerate the paper's tables.

* :mod:`repro.bench.programs` — the :class:`BenchProgram` descriptor (entry
  point, ground truth, compiler requirements, the paper's expected verdicts).
* :mod:`repro.bench.runner` — runs one (program × tool × threads × seed)
  combination on a fresh :class:`~repro.machine.machine.Machine` and folds
  the outcome into a Table I verdict.
* :mod:`repro.bench.drb` — the DataRaceBench subset of Table I.
* :mod:`repro.bench.tmb` — the seven Taskgrind-specific microbenchmarks.
* :mod:`repro.bench.table1` / :mod:`repro.bench.table2` /
  :mod:`repro.bench.fig4` / :mod:`repro.bench.errorreport` — the per-artifact
  harnesses (``python -m repro.bench.table1`` etc.).
"""

from repro.bench.programs import BenchProgram
from repro.bench.runner import RunResult, run_benchmark, TOOLS

__all__ = ["BenchProgram", "RunResult", "run_benchmark", "TOOLS"]
