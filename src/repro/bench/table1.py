"""Table I harness: the microbenchmark verdict matrix.

Runs every DRB program (OMP_NUM_THREADS=4) and every TMB program (1 and 4
threads) under all four tools, prints measured verdicts next to the paper's
cells, and a summary of agreement plus the headline metric (false negatives
per tool — Taskgrind must have the fewest, with its single FN on the
mergeable test).

Usage: ``python -m repro.bench.table1 [--seed N]``
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench import drb, tmb
from repro.bench.programs import BenchProgram
from repro.bench.runner import run_benchmark
from repro.util.tables import render_table

TOOL_ORDER = ["tasksanitizer", "archer", "romp", "taskgrind"]

#: the harness seed defines "the observed execution" the table reports
DEFAULT_SEED = 2


@dataclass
class Table1Row:
    program: str
    block: str                      # 'drb' | 'tmb-1t' | 'tmb-4t'
    racy: bool
    measured: Dict[str, str] = field(default_factory=dict)
    expected: Dict[str, str] = field(default_factory=dict)
    report_counts: Dict[str, int] = field(default_factory=dict)

    def matches(self, tool: str) -> Optional[bool]:
        cell = self.expected.get(tool)
        if cell is None:
            return None
        return self.measured.get(tool) in cell.split("/")


def _expected_for(program: BenchProgram, block: str) -> Dict[str, str]:
    exp = program.expected
    if block == "drb":
        return dict(exp)
    key = "1t" if block == "tmb-1t" else "4t"
    return dict(exp.get(key, {}))       # type: ignore[union-attr]


def run_table1(seed: int = DEFAULT_SEED,
               tools: Optional[List[str]] = None) -> List[Table1Row]:
    """Run the whole matrix; returns one row per (program, block)."""
    tools = tools or TOOL_ORDER
    rows: List[Table1Row] = []
    jobs = [(p, "drb", 4) for p in drb.all_programs()]
    jobs += [(p, "tmb-1t", 1) for p in tmb.all_programs()]
    jobs += [(p, "tmb-4t", 4) for p in tmb.all_programs()]
    for program, block, nthreads in jobs:
        row = Table1Row(program=program.name, block=block, racy=program.racy,
                        expected=_expected_for(program, block))
        for tool in tools:
            result = run_benchmark(program, tool, nthreads=nthreads,
                                   seed=seed)
            row.measured[tool] = result.cell()
            row.report_counts[tool] = result.report_count
        rows.append(row)
    return rows


def render(rows: List[Table1Row]) -> str:
    out: List[str] = []
    blocks = [("drb", "DRB (OMP_NUM_THREADS=4)"),
              ("tmb-1t", "TMB (OMP_NUM_THREADS=1)"),
              ("tmb-4t", "TMB (OMP_NUM_THREADS=4)")]
    headers = ["benchmark", "race"] + [
        f"{t} (paper)" for t in TOOL_ORDER]
    match_count = {t: 0 for t in TOOL_ORDER}
    cell_count = {t: 0 for t in TOOL_ORDER}
    fn_count = {t: 0 for t in TOOL_ORDER}
    for key, title in blocks:
        body = []
        for row in (r for r in rows if r.block == key):
            cells = []
            for tool in TOOL_ORDER:
                measured = row.measured.get(tool, "-")
                paper = row.expected.get(tool, "?")
                mark = "" if row.matches(tool) else " *"
                cells.append(f"{measured} ({paper}){mark}")
                if row.matches(tool) is not None:
                    cell_count[tool] += 1
                    if row.matches(tool):
                        match_count[tool] += 1
                if measured == "FN":
                    fn_count[tool] += 1
            body.append([row.program, "yes" if row.racy else "no"] + cells)
        out.append(render_table(headers, body, title=title))
        out.append("")
    out.append("cell = measured (paper); * marks measured != paper")
    out.append("")
    agreement = ", ".join(
        f"{t}: {match_count[t]}/{cell_count[t]}" for t in TOOL_ORDER)
    out.append(f"agreement with the paper's cells: {agreement}")
    fns = ", ".join(f"{t}: {fn_count[t]}" for t in TOOL_ORDER)
    out.append(f"false negatives (headline metric):  {fns}")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--tools", nargs="*", default=None)
    args = parser.parse_args(argv)
    rows = run_table1(seed=args.seed, tools=args.tools)
    print(render(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
