"""Benchmark program descriptor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass(frozen=True)
class BenchProgram:
    """One benchmark: entry point + ground truth + tool-relevant metadata.

    ``expected`` records the verdicts the *paper's* Table I reports for this
    program (per tool), so the harness can print measured-vs-paper side by
    side.  Cells like ``FN/TP`` (the paper's own schedule-variance notation)
    are kept verbatim and matched against either value.
    """

    name: str
    racy: bool
    entry: Callable                       # entry(env: OmpEnv) -> None
    description: str = ""
    source_file: str = "main.c"
    #: minimum Clang major version that compiles this test (TaskSanitizer
    #: ships Clang 8 — the paper's ``ncs`` cells)
    min_clang: int = 8
    #: construct tags (crash triggers, feature notes)
    features: frozenset = frozenset()
    #: paper Table I verdicts: tool name -> cell text
    expected: Dict[str, str] = field(default_factory=dict)

    def expects(self, tool: str, measured: str) -> Optional[bool]:
        """Does ``measured`` match the paper's cell?  None when unlisted."""
        cell = self.expected.get(tool)
        if cell is None:
            return None
        return measured in cell.split("/")
