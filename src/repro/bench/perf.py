"""Perf bench: record/analyze phase timings for the fast-path layer.

Times the two hot paths this repo optimizes — access recording and the
Algorithm 1 analysis — on three workloads (fib, heat, LULESH-small), each
measured **legacy vs fast**:

* **record** — the access stream captured from a real instrumented run is
  replayed into fresh segments twice: through the legacy per-access
  ``IntervalTree.insert`` path and through the write-combining recorder +
  bulk build.  Bulk ``read_range``/``write_range`` intervals are expanded
  into 8-byte element accesses first (capped, reported) so the replay has
  DBI-per-instruction granularity like the real tool.
* **analyze** — the run's segment graph is analyzed twice: with the pre-PR
  implementation (bitmask-DP happens-before + tree-walk intersections) and
  with the fast path (O(1) order-maintenance index where exact + cached
  flat interval sets with linear-merge intersections).

Both phases assert bit-identical results (interval trees, candidate sets)
between the two implementations before reporting any numbers, and the tool
emits ``BENCH_perf.json`` so future PRs have a trajectory.

Usage: ``python -m repro.bench.perf [--json BENCH_perf.json]
[--max-events 250000] [--repeats 3] [--skip-lulesh]
[--baseline BENCH_perf.json --tolerance 0.4]``

``--baseline`` turns the run into a regression gate (the CI ``perf-gate``
job): each workload's fresh ``combined_speedup`` is compared against the
committed baseline and the run fails (exit 1) only when a workload fell
more than ``--tolerance`` (fraction, default 0.4) below it — loose enough
to absorb shared-runner noise, tight enough to catch a real fast-path
regression.

Every workload's entry also carries a ``stats`` block — the observability
registry's per-phase wall/virtual timings plus the record counters from
the capture run (write-combining hit/spill/flush mix, translation counts)
— and a ``profile`` block: the attribution profiler's per-class virtual
op totals from the (untimed) capture run, so a gate breach can name the
instrumentation class whose cost grew, not just the phase that slowed.
``--profiles-dir DIR`` additionally writes the full per-workload
``taskgrind-profile/1`` documents there for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.core.analysis import (RaceCandidate, _candidate_pairs,
                                 _conflict_ranges_tree, find_races_indexed)
from repro.core.segments import Segment, SegmentGraph
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.debuginfo import Symbol
from repro.machine.machine import Machine
from repro.obs.metrics import get_registry
from repro.openmp.api import make_env
from repro.workloads.lulesh import LuleshConfig, run_lulesh
from repro.workloads.synthetic import omp_fib, omp_heat

ELEMENT_BYTES = 8


# ---------------------------------------------------------------------------
# capture: run a workload under Taskgrind with the access-log hook on
# ---------------------------------------------------------------------------

def capture(workload: str, *, nthreads: int = 1, seed: int = 0
            ) -> Tuple[SegmentGraph, List[Tuple[int, int, int, bool]]]:
    """Run ``workload`` instrumented; return (graph, raw access stream)."""
    machine = Machine(seed=seed)
    tool = TaskgrindTool(TaskgrindOptions())
    machine.add_tool(tool)
    source = {"fib": "fib.c", "heat": "heat.c",
              "lulesh": "lulesh.cc"}[workload]
    env = make_env(machine, nthreads=nthreads, source_file=source)
    env.rt.ompt.register(tool.make_ompt_shim())
    tool.builder.access_log = []

    if workload == "fib":
        entry = lambda: omp_fib(env, 18)                     # noqa: E731
    elif workload == "heat":
        entry = lambda: omp_heat(env, n=512, steps=8,        # noqa: E731
                                 chunks=8)
    else:
        entry = lambda: run_lulesh(                          # noqa: E731
            env, LuleshConfig(s=16, tel=4, tnl=4, iterations=4,
                              progress=True))
    machine.run(entry)
    return tool.builder.graph, tool.builder.access_log


def expand_elements(stream: List[Tuple[int, int, int, bool]],
                    max_events: int) -> Tuple[List[Tuple[int, int, int, bool]],
                                              int]:
    """Split bulk ranges into 8-byte element accesses, capped at
    ``max_events``; returns (events, number of raw records dropped)."""
    out: List[Tuple[int, int, int, bool]] = []
    for k, (sid, addr, size, w) in enumerate(stream):
        if size <= ELEMENT_BYTES:
            out.append((sid, addr, size, w))
        else:
            end = addr + size
            for a in range(addr, end, ELEMENT_BYTES):
                out.append((sid, a, min(ELEMENT_BYTES, end - a), w))
        if len(out) >= max_events:
            return out[:max_events], len(stream) - (k + 1)
    return out, 0


# ---------------------------------------------------------------------------
# record phase: replay the same stream through both recorder paths
# ---------------------------------------------------------------------------

def _replay(events: List[Tuple[int, int, int, bool]], *, immediate: bool
            ) -> Tuple[float, Dict[int, Segment]]:
    segs: Dict[int, Segment] = {}
    t0 = time.perf_counter()
    for sid, addr, size, w in events:
        seg = segs.get(sid)
        if seg is None:
            seg = segs[sid] = Segment(sid, 0, None, "task")
        if immediate:
            seg.record_immediate(addr, size, w, None)
        else:
            seg.record(addr, size, w, None)
    for seg in segs.values():
        seg.flush_accesses()
    return time.perf_counter() - t0, segs


def bench_record(events: List[Tuple[int, int, int, bool]], repeats: int
                 ) -> Dict[str, float]:
    legacy = min(_replay(events, immediate=True)[0] for _ in range(repeats))
    fast = min(_replay(events, immediate=False)[0] for _ in range(repeats))
    # parity: both paths must produce byte-identical interval trees
    _, a = _replay(events, immediate=True)
    _, b = _replay(events, immediate=False)
    assert a.keys() == b.keys()
    for sid in a:
        assert a[sid].reads.pairs() == b[sid].reads.pairs(), \
            f"segment {sid}: read trees differ"
        assert a[sid].writes.pairs() == b[sid].writes.pairs(), \
            f"segment {sid}: write trees differ"
    return {"legacy_s": legacy, "fast_s": fast,
            "speedup": legacy / fast if fast else float("inf")}


# ---------------------------------------------------------------------------
# record-sync phase: the two-phase first pass vs full recording
# ---------------------------------------------------------------------------

def _replay_tool(events: List[Tuple[int, int, int, bool]], *, sync: bool
                 ) -> Tuple[float, TaskgrindTool]:
    """Replay the captured stream through a real tool's raw access path.

    This times exactly the work ``record_mode="sync"`` elides: the stream
    goes through :meth:`TaskgrindTool.on_access_raw` — symbol filter,
    budget check, write-combining recorder — in full mode, and through the
    rebound counter-bump handler in sync mode.  The segment id from the
    capture doubles as the thread id so the full-mode replay builds the
    same per-segment partitioning as :func:`_replay`.
    """
    opts = TaskgrindOptions()
    opts.record_mode = "sync" if sync else "full"
    machine = Machine(seed=0)
    tool = TaskgrindTool(opts)
    machine.add_tool(tool)
    symbol = Symbol("bench_stream", file="bench.c")
    on_access_raw = tool.on_access_raw
    t0 = time.perf_counter()
    for sid, addr, size, w in events:
        on_access_raw(sid, addr, size, w, symbol, None)
    for seg in tool.builder.graph.segments:
        seg.flush_accesses()
    return time.perf_counter() - t0, tool


def bench_record_sync(events: List[Tuple[int, int, int, bool]],
                      repeats: int) -> Dict[str, float]:
    """Record-phase cost of the two-phase first pass vs full recording."""
    full = min(_replay_tool(events, sync=False)[0] for _ in range(repeats))
    sync = min(_replay_tool(events, sync=True)[0] for _ in range(repeats))
    # the sync pass must observe every access without recording any, and
    # the full pass must record every one — else the timing compares
    # different work, not the same work done two ways
    _, tf = _replay_tool(events, sync=False)
    _, ts = _replay_tool(events, sync=True)
    assert tf.recorded_accesses == len(events), "full replay dropped accesses"
    assert ts.sync_skipped == len(events), "sync replay missed accesses"
    assert ts.recorded_accesses == 0, "sync replay recorded evidence"
    return {"full_s": full, "sync_s": sync,
            "speedup": full / sync if sync else float("inf")}


# ---------------------------------------------------------------------------
# analyze phase: pre-PR pass vs fast pass on the same graph
# ---------------------------------------------------------------------------

def _canon(cands: List[RaceCandidate]) -> List[Tuple]:
    return sorted((c.key(), tuple(c.ranges.pairs())) for c in cands)


def _analyze_once(graph: SegmentGraph, *, legacy: bool) -> List[RaceCandidate]:
    if legacy:
        # replica of the pre-PR find_races_indexed: bitmask DP only,
        # tree-walk conflict intersections
        segs = [s for s in graph.segments if s.has_accesses]
        out: List[RaceCandidate] = []
        for i, j in sorted(_candidate_pairs(segs)):
            s1, s2 = segs[i], segs[j]
            if graph.ordered(s1, s2):
                continue
            ranges = _conflict_ranges_tree(s1, s2)
            if ranges:
                out.append(RaceCandidate(s1, s2, ranges))
        return out
    # the fast side is the full current stack: order-maintenance index +
    # the batched numpy conflict kernel (degrades to python when absent)
    return find_races_indexed(graph, kernel="numpy")


def bench_analyze(graph: SegmentGraph, repeats: int) -> Dict[str, float]:
    from repro.core.npkernel import HAVE_NUMPY
    for seg in graph.segments:
        seg.flush_accesses()

    def run(legacy: bool) -> Tuple[float, List[RaceCandidate]]:
        graph.hb_mode = "bitmask" if legacy else "auto"
        graph._reach = None                 # cold DP, like a fresh finalize
        for seg in graph.segments:
            seg._rset = seg._wset = None    # cold set caches too
            seg._nparr = None               # ... and the kernel arrays
        t0 = time.perf_counter()
        cands = _analyze_once(graph, legacy=legacy)
        return time.perf_counter() - t0, cands

    legacy = min(run(True)[0] for _ in range(repeats))
    fast = min(run(False)[0] for _ in range(repeats))
    _, a = run(True)
    _, b = run(False)
    assert _canon(a) == _canon(b), "fast analyze changed the candidate set"
    graph.hb_mode = "auto"
    return {"legacy_s": legacy, "fast_s": fast,
            "speedup": legacy / fast if fast else float("inf"),
            "kernel": "numpy" if HAVE_NUMPY else "python",
            "candidates": len(a)}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def run_perf(*, workloads=("fib", "heat", "lulesh"), max_events: int = 250_000,
             repeats: int = 3, profiles_dir: Optional[str] = None) -> Dict:
    from repro.obs.prof import get_profiler
    results: Dict[str, Dict] = {}
    reg = get_registry()
    prof = get_profiler()
    if profiles_dir is not None:
        os.makedirs(profiles_dir, exist_ok=True)
    for wl in workloads:
        reg.reset()                      # per-workload phase breakdown
        # the capture run is untimed, so profiling it is free: the class
        # totals ride along in the doc and the gate can blame a bucket
        prof.enable()
        prof.meta.update({"bench": "perf", "workload": wl, "seed": 0})
        graph, raw = capture(wl)
        snap = reg.snapshot()
        profile_block = {"classes": prof.class_totals(),
                         "vtime_ops": prof.total_ops}
        if profiles_dir is not None:
            from repro.obs.profdoc import save_profile
            save_profile(os.path.join(profiles_dir, f"{wl}.profile.json"),
                         prof, phases=snap["phases"])
        # timed sections below must see the disabled-profiler fast path
        prof.disable()
        stats = {
            "phases": snap["phases"],
            "record_counters": {k: v for k, v in snap["counters"].items()
                                if k.startswith(("record.", "vex."))},
        }
        events, dropped = expand_elements(raw, max_events)
        if dropped:
            print(f"[{wl}] event cap hit: {dropped} raw records dropped "
                  f"(raise --max-events for full coverage)", file=sys.stderr)
        hb = graph.hb_index
        rec = bench_record(events, repeats)
        rec_sync = bench_record_sync(events, repeats)
        ana = bench_analyze(graph, repeats)
        combined_legacy = rec["legacy_s"] + ana["legacy_s"]
        combined_fast = rec["fast_s"] + ana["fast_s"]
        results[wl] = {
            "segments": len(graph.segments),
            "edges": graph.edge_count,
            "raw_records": len(raw),
            "events": len(events),
            "events_dropped": dropped,
            "hb_exact": hb.exact if hb is not None else False,
            "hb_inexact_reason": hb.inexact_reason if hb is not None else None,
            "record": rec,
            "record_sync": rec_sync,
            "analyze": ana,
            "combined_speedup": (combined_legacy / combined_fast
                                 if combined_fast else float("inf")),
            "stats": stats,
            "profile": profile_block,
        }
    return {
        "bench": "perf",
        "element_bytes": ELEMENT_BYTES,
        "max_events": max_events,
        "repeats": repeats,
        "workloads": results,
    }


def render(results: Dict) -> str:
    lines = ["workload   phase     legacy_s   fast_s     speedup",
             "-" * 52]
    for wl, r in results["workloads"].items():
        for phase in ("record", "analyze"):
            p = r[phase]
            lines.append(f"{wl:<10} {phase:<9} {p['legacy_s']:<10.4f} "
                         f"{p['fast_s']:<10.4f} {p['speedup']:.2f}x")
        rs = r.get("record_sync")
        if rs:
            lines.append(f"{wl:<10} {'rec-sync':<9} {rs['full_s']:<10.4f} "
                         f"{rs['sync_s']:<10.4f} {rs['speedup']:.2f}x")
        lines.append(f"{wl:<10} {'combined':<9} "
                     f"{r['record']['legacy_s'] + r['analyze']['legacy_s']:<10.4f} "
                     f"{r['record']['fast_s'] + r['analyze']['fast_s']:<10.4f} "
                     f"{r['combined_speedup']:.2f}x"
                     f"   (hb {'exact' if r['hb_exact'] else 'fallback'},"
                     f" {r['events']} events, {r['segments']} segments)")
    return "\n".join(lines)


def _blame_buckets(fresh: Dict, baseline: Dict,
                   breached: List[str]) -> List[str]:
    """Name the instrumentation class responsible for each breach.

    Uses the per-class virtual op totals both documents embed (the
    ``profile`` block from the capture run): the class whose op count
    grew most from baseline to fresh is the prime suspect.  A breach
    with no op-count growth is timing-side (runner noise, interpreter
    change), which is itself a useful verdict.
    """
    from repro.obs.profdoc import top_regressing_class
    out: List[str] = []
    seen: List[str] = []
    for item in breached:
        wl = item.split("/", 1)[0]
        if wl in seen:
            continue
        seen.append(wl)
        if wl not in baseline.get("workloads", {}) \
                or wl not in fresh.get("workloads", {}):
            continue        # non-workload breach (e.g. serve/*): blamed apart
        base = baseline["workloads"][wl].get("profile", {}).get("classes")
        got = fresh["workloads"][wl].get("profile", {}).get("classes")
        if not base or not got:
            continue        # pre-profile baseline doc: nothing to blame
        top = top_regressing_class(base, got)
        if top is None:
            out.append(f"{wl}: no instrumentation class charged more ops "
                       "than baseline (timing-side regression)")
        else:
            klass, delta = top
            out.append(f"{wl}: top regressing bucket {klass!r} "
                       f"(+{delta:.0f} virtual ops vs baseline, "
                       f"{base.get(klass, 0.0):.0f} -> "
                       f"{got.get(klass, 0.0):.0f})")
    return out


#: ``--baseline`` exit code for an unusable baseline (missing file, bad
#: JSON, no entry for a gated workload) — distinct from 1 (a real perf
#: regression) so CI failures are attributable at a glance
EXIT_BASELINE_UNUSABLE = 3

#: absolute grace (ms) added to serve p95 ceilings.  Endpoint p95s are
#: single-digit milliseconds over a handful of samples, and the analysis
#: threads contend on the GIL, so one scheduler hiccup triples a tail
#: latency; the regressions this gate exists to catch (a lost cache, an
#: accidentally quadratic ingest path) are 10-100x, far past any grace
SERVE_P95_GRACE_MS = 5.0


def _check_serve(fresh_s: Dict, base_s: Dict, tolerance: float,
                 lines: List[str], breached: List[str]) -> None:
    """Gate the ingestion-server block: throughput floor + p95 ceilings.

    Throughput is higher-better (same floor rule as the speedups);
    endpoint p95 latency is lower-better, so the gate inverts: fresh must
    stay under ``(baseline + grace) / (1 - tolerance)``.
    """
    base_tp = base_s.get("throughput_chunks_per_s")
    if base_tp:
        got = fresh_s.get("throughput_chunks_per_s", 0.0)
        floor = base_tp * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSION"
        if got < floor:
            breached.append("serve/throughput")
        lines.append(f"{'serve':<10} {'throughput':<11} "
                     f"baseline {base_tp:.0f} chunks/s  fresh {got:.0f}  "
                     f"floor {floor:.0f}  {verdict}")
    for ep, entry in sorted(base_s.get("endpoints", {}).items()):
        base_p95 = entry.get("p95_ms")
        if base_p95 is None:
            continue
        got = fresh_s.get("endpoints", {}).get(ep, {}).get("p95_ms")
        ceiling = (base_p95 + SERVE_P95_GRACE_MS) / (1.0 - tolerance)
        # a fresh doc that lost the measurement gates at infinity —
        # dropping an endpoint from the bench is itself a regression
        got_v = float("inf") if got is None else got
        verdict = "ok" if got_v <= ceiling else "REGRESSION"
        if got_v > ceiling:
            breached.append(f"serve/{ep}.p95")
        lines.append(f"{'serve':<10} {ep + '.p95':<11} "
                     f"baseline {base_p95:.2f}ms  fresh "
                     f"{'lost' if got is None else f'{got:.2f}ms'}  "
                     f"ceiling {ceiling:.2f}ms  {verdict}")


def _blame_serve(fresh_s: Optional[Dict], base_s: Optional[Dict],
                 breached: List[str]) -> List[str]:
    """Name the job phase behind a serve breach (the blame line).

    The endpoint is already in the breach item; the phase comes from the
    per-job ``job_phases`` p95s both docs record — the phase whose p95
    grew most is the prime suspect (queue-wait growth means shard
    starvation, build growth means the graph cache stopped hitting).
    """
    if not any(item.startswith("serve/") for item in breached):
        return []
    if not fresh_s or not base_s:
        return []
    worst: Optional[Tuple[str, float, float, float]] = None
    for phase, entry in base_s.get("job_phases", {}).items():
        base_p95 = entry.get("p95_ms")
        got_p95 = fresh_s.get("job_phases", {}).get(phase, {}).get("p95_ms")
        if base_p95 is None or got_p95 is None:
            continue
        delta = got_p95 - base_p95
        if worst is None or delta > worst[1]:
            worst = (phase, delta, base_p95, got_p95)
    if worst is None or worst[1] <= 0:
        return ["serve: no job phase slower than baseline "
                "(HTTP/queueing-side regression)"]
    phase, delta, base_p95, got_p95 = worst
    return [f"serve: top regressing phase {phase!r} "
            f"(p95 {base_p95:.2f}ms -> {got_p95:.2f}ms, "
            f"+{delta:.2f}ms vs baseline)"]


def compare_to_baseline(fresh: Dict, baseline: Dict,
                        tolerance: float) -> Tuple[bool, List[str]]:
    """The CI regression gate: fresh vs committed speedups.

    Only workloads present in both documents are compared (the quick CI
    preset skips LULESH).  Three checks per workload, all at the same
    ``tolerance`` (a fraction) below the committed baseline:

    * ``combined_speedup`` — the original record+analyze gate;
    * ``analyze.speedup`` — the analyze-side target (the vectorized kernel
      must keep heat/lulesh at their ≥2× baseline);
    * ``record_sync.speedup`` — the two-phase first pass must stay cheap
      (sync-only recording ≥3× faster than full recording on the big
      workloads, per the committed baseline).

    When both documents carry a ``serve`` block (the ingestion-server
    load bench, ``python -m repro.bench.serve``), its chunk throughput
    and per-endpoint p95 latencies are gated at the same tolerance —
    throughput as a floor, latency as an inverted ceiling.

    Returns ``(ok, report_lines)``.  On failure a line names every
    ``workload/phase`` pair that breached tolerance, followed by blame
    lines (instrumentation class for workloads, job phase for serve).
    """
    lines: List[str] = []
    breached: List[str] = []
    common = [wl for wl in baseline.get("workloads", {})
              if wl in fresh.get("workloads", {})]
    serve_comparable = bool(baseline.get("serve")) and bool(fresh.get("serve"))
    if not common and not serve_comparable:
        return False, ["no common workloads between fresh run and baseline"]

    def check(wl: str, phase: str, base: float, got: float) -> None:
        floor = base * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSION"
        if got < floor:
            breached.append(f"{wl}/{phase}")
        lines.append(f"{wl:<10} {phase:<11} baseline {base:.2f}x  "
                     f"fresh {got:.2f}x  floor {floor:.2f}x  {verdict}")

    for wl in common:
        check(wl, "combined", baseline["workloads"][wl]["combined_speedup"],
              fresh["workloads"][wl]["combined_speedup"])
        for phase, key in (("analyze", "analyze"),
                           ("record_sync", "record_sync")):
            base = baseline["workloads"][wl].get(key, {}).get("speedup")
            if base is None:
                continue
            # a fresh doc missing the phase gates at 0 — losing the
            # measurement entirely is itself a regression
            check(wl, phase, base,
                  fresh["workloads"][wl].get(key, {}).get("speedup", 0.0))
    if serve_comparable:
        _check_serve(fresh["serve"], baseline["serve"], tolerance,
                     lines, breached)
    if breached:
        lines.append("breached tolerance: " + ", ".join(breached))
        lines.extend(_blame_buckets(fresh, baseline, breached))
        lines.extend(_blame_serve(fresh.get("serve"), baseline.get("serve"),
                                  breached))
    return not breached, lines


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--json", default="BENCH_perf.json",
                    help="output path (default: BENCH_perf.json)")
    ap.add_argument("--max-events", type=int, default=250_000)
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per phase, min 1 (default: 3)")
    ap.add_argument("--skip-lulesh", action="store_true",
                    help="only run the quick synthetic workloads")
    ap.add_argument("--baseline", metavar="PATH", default=None,
                    help="committed BENCH_perf.json to gate against")
    ap.add_argument("--tolerance", type=float, default=0.4,
                    help="allowed fractional speedup drop vs the baseline "
                         "(default: 0.4)")
    ap.add_argument("--profiles-dir", metavar="DIR", default=None,
                    help="write each workload's full taskgrind-profile/1 "
                         "document here (CI artifact upload)")
    args = ap.parse_args(argv)
    workloads = ("fib", "heat") if args.skip_lulesh else \
        ("fib", "heat", "lulesh")
    results = run_perf(workloads=workloads, max_events=args.max_events,
                       repeats=max(1, args.repeats),
                       profiles_dir=args.profiles_dir)
    print(render(results))
    with open(args.json, "w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.json}")
    if args.profiles_dir is not None:
        print(f"wrote per-workload profiles to {args.profiles_dir}/")
    if args.baseline is not None:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            print("regenerate it with: python -m repro.bench.perf "
                  f"--json {args.baseline}", file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        except json.JSONDecodeError as exc:
            print(f"baseline {args.baseline} is not valid JSON: {exc}",
                  file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        missing = [wl for wl in workloads
                   if wl not in baseline.get("workloads", {})]
        if missing:
            print(f"baseline {args.baseline} has no entry for "
                  f"workload(s): {', '.join(missing)} — regenerate the "
                  "baseline to cover them", file=sys.stderr)
            return EXIT_BASELINE_UNUSABLE
        ok, lines = compare_to_baseline(results, baseline, args.tolerance)
        print(f"\nregression gate vs {args.baseline} "
              f"(tolerance {args.tolerance:.0%}):")
        for line in lines:
            print(f"  {line}")
        if not ok:
            print("perf regression gate FAILED", file=sys.stderr)
            return 1
        print("perf regression gate passed")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
