"""The seven Taskgrind microbenchmarks (TMB), paper Section V-A.

Each TMB targets one heavyweight-DBI pitfall from Section IV.  They are run
at 1 *and* 4 threads (Table I's two TMB blocks): single-thread runs force the
memory-recycling / thread-local / segment-local aliasing of independent
segments; 4-thread runs exercise true deferred execution.

All TMB tasks carry the Taskgrind *deferrable annotation* (the same client
request the paper added to LULESH) so that the logical task graph — not
LLVM's single-thread serialization — is analyzed, which is what lets the
paper claim 100% single-thread accuracy while Archer reports nothing.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.programs import BenchProgram

REGISTRY: List[BenchProgram] = []


def tmb(name: str, racy: bool, *, expected_1t: Dict[str, str],
        expected_4t: Dict[str, str], description: str = ""):
    def wrap(fn):
        REGISTRY.append(BenchProgram(
            name=name, racy=racy, entry=fn, source_file=f"{name}.c",
            expected={"1t": expected_1t, "4t": expected_4t},  # type: ignore[arg-type]
            description=description or fn.__doc__ or ""))
        return fn
    return wrap


def by_name(name: str) -> BenchProgram:
    for p in REGISTRY:
        if p.name == name:
            return p
    raise KeyError(name)


@tmb("1000-memory-recycling.1", False,
     expected_1t={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"},
     expected_4t={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
                  "taskgrind": "FP"})
def tmb1000(env):
    """Listing 1: independent tasks malloc/write/free — the allocator may
    recycle the address.  Taskgrind's no-op free defeats it; the remaining
    4-thread FP comes from task-*descriptor* recycling in the runtime's
    private arena (the paper's future-work limitation)."""
    ctx = env.ctx
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        for n in range(2):
            k.write(0, n)
            ctx.line(5)

            def task_body(tv):
                tv.private_value("k")
                with ctx.function("worker", line=20):
                    x = ctx.malloc(4, line=6, name="x")
                    x.write(0, 1, line=7)
                    ctx.free(x)
            env.task(task_body, firstprivate={"k": k},
                     annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


@tmb("1001-stack.1", True,
     expected_1t={"tasksanitizer": "TP", "archer": "FN", "romp": "FN",
                  "taskgrind": "TP"},
     expected_4t={"tasksanitizer": "TP", "archer": "FN/TP", "romp": "TP",
                  "taskgrind": "TP"})
def tmb1001(env):
    """Two independent tasks write the *parent's* stack variable: a real
    race.  ROMP's coarse owner-thread stack filter hides it single-threaded;
    Taskgrind's frame registration does not (the variable predates both
    segments)."""
    ctx = env.ctx

    def body():
        y = ctx.stack_var("y", 8, elem=8)
        for n in range(2):
            ctx.line(5 + n)
            env.task(lambda tv: y.write(0, line=6), annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


@tmb("1002-stack.2", False,
     expected_1t={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"},
     expected_4t={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
                  "taskgrind": "FP"})
def tmb1002(env):
    """Independent tasks whose only shared state is the firstprivate
    round-trip through the task descriptor.  Single-threaded (included fast
    path, no descriptor) everything is clean; multi-threaded, descriptor
    recycling in the uninstrumentable fast arena gives Taskgrind its
    parent-frame/descriptor FP."""
    ctx = env.ctx
    g = ctx.global_var("g1002", 16, elem=8)
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        for n in range(2):
            k.write(0, n)
            ctx.line(5 + n)
            env.task(lambda tv, n=n: (tv.private_value("k"),
                                      g.write(n, line=6)),
                     firstprivate={"k": k}, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


@tmb("1003-stack.3", False,
     expected_1t={"tasksanitizer": "FP", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"},
     expected_4t={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"})
def tmb1003(env):
    """Independent tasks each write their *own* local: on one thread the
    frames alias (same address), which only Taskgrind's frame registration
    recognises as segment-local."""
    ctx = env.ctx

    def body():
        for n in range(2):
            ctx.line(5 + n)

            def task_body(tv):
                z = ctx.stack_var("z", 8, elem=8)
                z.write(0, line=7)
            env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


@tmb("1004-stack.4", True,
     expected_1t={"tasksanitizer": "TP", "archer": "FN", "romp": "TP",
                  "taskgrind": "TP"},
     expected_4t={"tasksanitizer": "TP", "archer": "TP", "romp": "TP",
                  "taskgrind": "TP"})
def tmb1004(env):
    """Independent tasks race on a *global* — no stack/TLS filter applies,
    so every task-centric tool must report it; Archer still misses the
    serialized single-thread run."""
    ctx = env.ctx
    g = ctx.global_var("g1004", 8, elem=8)

    def body():
        for n in range(2):
            ctx.line(5 + n)
            env.task(lambda tv: g.write(0, line=6), annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


@tmb("1005-stack.5", False,
     expected_1t={"tasksanitizer": "FP", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"},
     expected_4t={"tasksanitizer": "TN", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"})
def tmb1005(env):
    """Like 1003 but the aliasing locals live in a *callee* frame (each task
    calls a helper), exercising frame registration through calls."""
    ctx = env.ctx

    def body():
        for n in range(2):
            ctx.line(5 + n)

            def task_body(tv):
                with ctx.function("helper", line=20):
                    w = ctx.stack_var("w", 8, elem=8)
                    w.write(0, line=21)
                    w.read(0, line=22)
            env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


@tmb("1006-tls.1", False,
     expected_1t={"tasksanitizer": "FP", "archer": "TN", "romp": "TN",
                  "taskgrind": "TN"},
     expected_4t={"tasksanitizer": "FP", "archer": "TN", "romp": "TN",
                  "taskgrind": "FP"})
def tmb1006(env):
    """``_Thread_local`` writes: an undeferred task and the parent touch the
    same thread's TLS copy (sequenced — but only tools modeling the
    undeferred rule know), while two deferred captured tasks write their own
    copies (descriptor recycling gives Taskgrind its 4-thread FP)."""
    ctx = env.ctx
    k = ctx.stack_var("k", 8, elem=8)

    def body():
        ctx.line(4)
        env.task(lambda tv: ctx.tls_var("tls1006", 8, elem=8).write(0, line=5),
                 if_=False)
        ctx.tls_var("tls1006", 8, elem=8).write(0, line=7)
        for n in range(2):
            k.write(0, n)
            ctx.line(9 + n)
            env.task(lambda tv: (tv.private_value("k"),
                                 ctx.tls_var("tls1006", 8,
                                             elem=8).write(0, line=10)),
                     firstprivate={"k": k}, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


def all_programs() -> List[BenchProgram]:
    return list(REGISTRY)
