"""Extended microbenchmark suite (beyond the paper's Table I).

The paper's DRB subset exercises tasking constructs; this suite extends
coverage to the corners the paper mentions but does not benchmark — detach
events, taskloop chunking controls, locks/critical, nested parallelism,
final/priority, barrier-partitioned phases — each with ground truth and the
verdict the *reproduced* Taskgrind should produce.  These rows act as a
regression net for the tool's semantics beyond the published table.

Run with ``python -m repro.bench.extras`` or ``pytest`` via
``tests/bench/test_extras.py``.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.bench.programs import BenchProgram
from repro.bench.runner import run_benchmark
from repro.util.tables import render_table

REGISTRY: List[BenchProgram] = []


def extra(name: str, racy: bool, *, taskgrind: str,
          description: str = ""):
    def wrap(fn):
        REGISTRY.append(BenchProgram(
            name=name, racy=racy, entry=fn, source_file=f"{name}.c",
            expected={"taskgrind": taskgrind},
            description=description or fn.__doc__ or ""))
        return fn
    return wrap


def by_name(name: str) -> BenchProgram:
    for p in REGISTRY:
        if p.name == name:
            return p
    raise KeyError(name)


def all_programs() -> List[BenchProgram]:
    return list(REGISTRY)


# ---------------------------------------------------------------------------
# detach
# ---------------------------------------------------------------------------

@extra("x001-detach-fulfilled-orders", False, taskgrind="TN")
def x001(env):
    """A detached task's completion (at fulfill) orders its writes before
    the dependent successor's reads."""
    ctx = env.ctx
    x = ctx.malloc(8, line=3)
    box = {}

    def producer(tv):
        x.write(0, 1, line=7)
        box["ev"] = tv.detach_event

    def body():
        ctx.line(6)
        env.task(producer, detachable=True, depend={"out": [x]})
        ctx.line(10)
        env.task(lambda tv: box["ev"].fulfill(), name="fulfiller")
        ctx.line(12)
        env.task(lambda tv: x.read(0, line=13), depend={"in": [x]})
        env.taskwait()
    env.parallel_single(body)


@extra("x002-detach-fulfiller-races", True, taskgrind="TP")
def x002(env):
    """The fulfilling task itself races with the detached body's buffer."""
    ctx = env.ctx
    x = ctx.malloc(8, line=3)
    box = {}

    def producer(tv):
        box["ev"] = tv.detach_event
        x.write(0, 1, line=8)

    def fulfiller(tv):
        x.write(0, 2, line=11)     # unordered with the producer's write
        box["ev"].fulfill()

    def body():
        ctx.line(6)
        env.task(producer, detachable=True)
        ctx.line(10)
        env.task(fulfiller)
        env.taskwait()
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# taskloop controls
# ---------------------------------------------------------------------------

@extra("x003-taskloop-grainsize-disjoint", False, taskgrind="FP",
       description="Race-free, but Taskgrind reports the chunk tasks' "
                   "firstprivate bound slots recycled through the runtime's "
                   "fast arena — the same mechanism as the paper's DRB096 "
                   "FP row.")
def x003(env):
    """grainsize-chunked taskloop writing disjoint slices."""
    ctx = env.ctx
    a = ctx.malloc(4 * 32, line=3, elem=4)

    def body():
        ctx.line(6)
        env.taskloop(lambda tv, lo, hi: a.write_range(lo, hi, line=7),
                     0, 32, grainsize=8)
    env.parallel_single(body)


@extra("x004-taskloop-nogroup-race", True, taskgrind="TP")
def x004(env):
    """nogroup drops the implicit taskgroup: the parent's read races."""
    ctx = env.ctx
    a = ctx.malloc(4 * 16, line=3, elem=4)

    def body():
        ctx.line(6)
        env.taskloop(lambda tv, lo, hi: a.write_range(lo, hi, line=7),
                     0, 16, num_tasks=4, nogroup=True)
        a.read(0, line=9)           # no group, no taskwait: racy
    env.parallel_single(body)


@extra("x005-taskloop-overlapping-chunks", True, taskgrind="TP")
def x005(env):
    """Chunks writing a shared accumulator element race with each other."""
    ctx = env.ctx
    a = ctx.malloc(4 * 17, line=3, elem=4)

    def body():
        ctx.line(6)
        env.taskloop(lambda tv, lo, hi: (a.write_range(lo, hi, line=7),
                                         a.write(16, line=8)),
                     0, 16, num_tasks=4)
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# mutual exclusion (the paper: Taskgrind does NOT support mutexes)
# ---------------------------------------------------------------------------

@extra("x006-critical-is-not-ordering", False, taskgrind="FP",
       description="Taskgrind has no mutex support (paper Section VI.b): a "
                   "critical-protected shared update is mutual-exclusion-"
                   "safe but determinacy-unordered, so Taskgrind reports "
                   "it.  (Archer, which models mutexes, stays silent.)")
def x006(env):
    ctx = env.ctx
    x = ctx.global_var("x006", 8, elem=8)

    def region(tid):
        with env.critical("acc"):
            x.write(0, line=7)
    env.parallel(region)


@extra("x007-lock-protected", False, taskgrind="FP",
       description="Same as x006 via omp_lock_t.")
def x007(env):
    ctx = env.ctx
    x = ctx.global_var("x007", 8, elem=8)
    lock = env.lock("L")

    def region(tid):
        with lock:
            x.write(0, line=8)
    env.parallel(region)


# ---------------------------------------------------------------------------
# nesting
# ---------------------------------------------------------------------------

@extra("x008-nested-parallel-disjoint", False, taskgrind="TN")
def x008(env):
    """Nested parallel regions writing per-member slots."""
    ctx = env.ctx
    a = ctx.global_var("x008", 8 * 8, elem=8)

    def outer(tid):
        base = env.thread_num() * 2

        def inner(_tid2):
            a.write(base + env.thread_num(), line=9)
        env.parallel(inner, num_threads=2)
    env.parallel(outer, num_threads=2)


@extra("x009-nested-parallel-shared-race", True, taskgrind="TP")
def x009(env):
    """Both nested regions' members write one shared word."""
    ctx = env.ctx
    x = ctx.global_var("x009", 8, elem=8)

    def outer(tid):
        def inner(_tid2):
            x.write(0, line=8)
        env.parallel(inner, num_threads=2)
    env.parallel(outer, num_threads=2)


# ---------------------------------------------------------------------------
# final / barriers / single
# ---------------------------------------------------------------------------

@extra("x010-final-includes-descendants", False, taskgrind="TN")
def x010(env):
    """final(true): descendants execute included and sequenced."""
    ctx = env.ctx
    x = ctx.malloc(8, line=3)

    def inner(tv):
        x.write(0, line=8)

    def outer(tv):
        env.task(inner)
        x.write(0, line=11)      # sequenced after the included child

    def body():
        ctx.line(6)
        env.task(outer, final=True)
        env.taskwait()
    env.parallel_single(body)


@extra("x011-barrier-phases", False, taskgrind="TN")
def x011(env):
    """Classic two-phase pattern: all-write, barrier, all-read."""
    ctx = env.ctx
    a = ctx.global_var("x011", 8 * 4, elem=8)

    def region(tid):
        me = env.thread_num()
        a.write(me, line=6)
        env.barrier()
        a.read((me + 1) % env.num_threads(), line=8)
    env.parallel(region)


@extra("x012-missing-barrier", True, taskgrind="TP")
def x012(env):
    """x011 with the barrier dropped: neighbour reads race."""
    ctx = env.ctx
    a = ctx.global_var("x012", 8 * 4, elem=8)

    def region(tid):
        me = env.thread_num()
        a.write(me, line=6)
        a.read((me + 1) % env.num_threads(), line=7)
    env.parallel(region)


@extra("x013-single-nowait-race", True, taskgrind="TP")
def x013(env):
    """single nowait: the other members race past the single's write."""
    ctx = env.ctx
    x = ctx.global_var("x013", 8, elem=8)

    def region(tid):
        env.single(lambda: x.write(0, line=6), nowait=True)
        x.read(0, line=8)
    env.parallel(region)


@extra("x014-single-with-barrier", False, taskgrind="TN")
def x014(env):
    """The fixed x013: the single's implicit barrier orders the reads."""
    ctx = env.ctx
    x = ctx.global_var("x014", 8, elem=8)

    def region(tid):
        env.single(lambda: x.write(0, line=6))
        x.read(0, line=8)
    env.parallel(region)


@extra("x015-user-thread-local-indexing", False, taskgrind="FP",
       description="The paper's Section IV-C closing limitation: "
                   "'array[omp_get_thread_num()]' is user-based thread-"
                   "local storage — per-thread by construction, but not in "
                   "any TLS region, so Taskgrind's TCB/DTV suppression "
                   "cannot recognise it and reports the aliasing accesses "
                   "of tasks that shared a thread.")
def x015(env):
    ctx = env.ctx
    a = ctx.global_var("x015", 8 * 8, elem=8)

    def task_body(tv):
        a.write(env.thread_num(), line=8)    # per-thread slot, by hand

    def body():
        for n in range(4):
            ctx.line(6 + n)
            env.task(task_body, annotate_deferrable=True)
        env.taskwait()
    env.parallel_single(body)


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def run_extras(seed: int = 2, nthreads: int = 4):
    rows = []
    matches = 0
    for program in REGISTRY:
        result = run_benchmark(program, "taskgrind", nthreads=nthreads,
                               seed=seed)
        expected = program.expected["taskgrind"]
        ok = result.cell() == expected
        matches += ok
        rows.append([program.name, "yes" if program.racy else "no",
                     f"{result.cell()} ({expected})" + ("" if ok else " *")])
    return rows, matches


def main(argv: Optional[List[str]] = None) -> int:
    rows, matches = run_extras()
    print(render_table(["benchmark", "race", "taskgrind (expected)"], rows,
                       title="Extended suite (beyond the paper's Table I)"))
    print(f"\n{matches}/{len(rows)} rows as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
