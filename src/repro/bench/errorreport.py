"""Error-reporting comparison (paper Section V-C, Listings 4-6).

Runs the paper's minimal erroneous program (Listing 4: two sibling tasks both
write ``x[0]``) under Taskgrind and under the modeled ROMP, and prints both
reports side by side:

* ROMP (Listing 5): raw addresses, no debug information;
* Taskgrind (Listing 6): segment labels from the task pragma locations
  (``task.1.c:8`` / ``task.1.c:11``), the conflicting byte count, the heap
  block and its allocation site (``from task.1.c:3``).

Usage: ``python -m repro.bench.errorreport``
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

from repro.baselines.romp import RompTool
from repro.core.reports import format_report
from repro.core.tool import TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import OmpEnv, make_env


def listing4(env: OmpEnv) -> None:
    """The paper's Listing 4 (task.1.c) transcribed."""
    ctx = env.ctx
    with ctx.function("main", file="task.1.c", line=1):
        x = ctx.malloc(2 * 4, line=3, name="x")       # malloc(2*sizeof(int))

        def single_body() -> None:
            ctx.line(8)
            env.task(lambda tv: x.write(0, 42, line=9), name="task.1.c:8")
            ctx.line(11)
            env.task(lambda tv: x.write(0, 43, line=12), name="task.1.c:11")

        ctx.line(4)
        env.parallel_single(single_body)


def run_tool(tool_name: str, seed: int = 0) -> Tuple[object, List]:
    machine = Machine(seed=seed)
    tool = TaskgrindTool() if tool_name == "taskgrind" else RompTool()
    machine.add_tool(tool)
    env = make_env(machine, nthreads=4, source_file="task.1.c")
    env.rt.ompt.register(tool.make_ompt_shim())
    machine.run(lambda: listing4(env))
    return tool, tool.finalize()


def render() -> str:
    out = ["Listing 4 (task.1.c): two sibling tasks write x[0] with no "
           "dependence", ""]

    romp_tool, romp_reports = run_tool("romp")
    out.append("--- ROMP report (Listing 5 style) " + "-" * 30)
    if not romp_reports:
        out.append("(no race reported)")
    for cand in romp_reports:
        from repro.core.reports import build_report
        rep = build_report(romp_tool.machine, cand)
        out.append(format_report(rep, style="romp"))
    out.append("")

    tg_tool, tg_reports = run_tool("taskgrind")
    out.append("--- Taskgrind report (Listing 6 style) " + "-" * 25)
    if not tg_reports:
        out.append("(no race reported)")
    for rep in tg_reports:
        out.append(format_report(rep))
    out.append("")
    out.append("paper Listing 6 reference:")
    out.append('  "Segments task.1.c:8 and task.1.c:11 were declared')
    out.append('   independent while accessing the same memory address')
    out.append('   4 bytes from 0xC3EA040 allocated in block 0xC3EA040')
    out.append('   of size 8 from task.1.c:3"')
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    print(render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
