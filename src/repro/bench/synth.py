"""Synthetic workloads as runnable benchmark programs.

The perf bench drives ``omp_fib``/``omp_heat`` directly; registering them
here additionally makes them addressable by name from the launcher
(``repro run fib``) — which the two-phase replay pipeline needs: the
schedule document records a *program name*, and the replayer re-creates
the run from the registry.
"""

from __future__ import annotations

from repro.bench.programs import BenchProgram
from repro.workloads.synthetic import omp_fib, omp_heat, omp_scratch

REGISTRY = [
    BenchProgram(
        name="fib",
        racy=False,
        entry=lambda env: omp_fib(env, 12),
        description="task-recursive fibonacci (taskwait joins), race-free",
        source_file="fib.c",
        features=frozenset({"task", "taskwait"}),
    ),
    BenchProgram(
        name="heat",
        racy=False,
        entry=lambda env: omp_heat(env, n=64, steps=4, chunks=4),
        description="1-D heat diffusion, halo dependences intact",
        source_file="heat.c",
        features=frozenset({"task", "depend"}),
    ),
    BenchProgram(
        name="scratch",
        racy=False,
        entry=lambda env: omp_scratch(env, tasks=8, iters=64),
        description="independent tasks hammering private stack scratch "
                    "slots — the access-elision showcase for "
                    "`repro profile run scratch --no-elide` diffs",
        source_file="scratch.c",
        features=frozenset({"task", "taskwait"}),
    ),
    BenchProgram(
        name="heat-racy",
        racy=True,
        entry=lambda env: omp_heat(env, n=64, steps=4, chunks=4, racy=True),
        description="1-D heat diffusion with the halo dependences dropped "
                    "— boundary reads race with neighbour writes",
        source_file="heat.c",
        features=frozenset({"task", "depend"}),
    ),
]
