"""Table II harness: LULESH execution time, memory and report counts.

Reproduces: *"Execution time, memory usage overheads and number of reports
for Archer and Taskgrind, on a dependent task-based OpenMP implementation of
LULESH with -s 16 -tel 4 -tnl 4 -p -i 4"* — the {no tool, Archer, Taskgrind}
× {racy, correct} × {1, 4 threads} matrix, including

* the Taskgrind 4-thread ``deadlock`` cells (the modeled cross-thread
  confirmation lock-up actually trips the simulator's deadlock detector),
* Archer's report *range* over seeds (the paper's "149 to 273"),
* Taskgrind's zero reports on the correct version and its nonzero count on
  the racy one at a single thread, where Archer sees nothing.

Usage: ``python -m repro.bench.table2 [--s N] [--seeds K]``
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import List, Optional

from repro.bench.runner import TOOLS
from repro.errors import SimDeadlock
from repro.machine.machine import Machine
from repro.openmp.api import make_env
from repro.util.tables import render_table
from repro.workloads.lulesh import LuleshConfig, run_lulesh

#: paper values for the default configuration (-s 16 ... -i 4)
PAPER = {
    # (racy, threads, tool) -> (time_s, mem_mb, reports)
    (False, 1, "none"): ("0.01", "10", "-"),
    (False, 1, "archer"): ("0.12", "41", "0"),
    (False, 1, "taskgrind"): ("1.23", "64", "0"),
    (False, 4, "none"): ("0.01", "15", "-"),
    (False, 4, "archer"): ("0.43", "83", "149 to 273"),
    (False, 4, "taskgrind"): ("deadlock", "deadlock", "deadlock"),
    (True, 1, "none"): ("0.01", "10", "-"),
    (True, 1, "archer"): ("0.12", "41", "0"),
    (True, 1, "taskgrind"): ("1.23", "64", "458"),
    (True, 4, "none"): ("0.01", "15", "-"),
    (True, 4, "archer"): ("0.46", "84", "140 to 221"),
    (True, 4, "taskgrind"): ("deadlock", "deadlock", "deadlock"),
}


@dataclass
class Cell:
    time_s: Optional[float] = None
    mem_mib: Optional[float] = None
    reports: Optional[str] = None
    deadlock: bool = False

    def fmt_time(self) -> str:
        return "deadlock" if self.deadlock else f"{self.time_s:.2f}"

    def fmt_mem(self) -> str:
        return "deadlock" if self.deadlock else f"{self.mem_mib:.0f}"

    def fmt_reports(self) -> str:
        return "deadlock" if self.deadlock else str(self.reports)


def run_cell(tool_name: str, *, racy: bool, nthreads: int, s: int = 16,
             seed: int = 0) -> Cell:
    machine = Machine(seed=seed)
    if tool_name == "archer":
        # the paper ran Archer on LLVM 14-19, whose libomp ships incomplete
        # TSan annotations for task dependences: model those gaps (this is
        # what makes Archer report races even on the *correct* LULESH)
        from repro.baselines.archer import ArcherTool
        tool = ArcherTool(dep_hb="gapped")
    else:
        tool = TOOLS[tool_name]()
    if tool_name != "none":
        machine.add_tool(tool)
    env = make_env(machine, nthreads=nthreads, source_file="lulesh.cc")
    if tool_name != "none":
        env.rt.ompt.register(tool.make_ompt_shim())
    cfg = LuleshConfig(s=s, racy=racy, progress=True)
    try:
        machine.run(lambda: run_lulesh(env, cfg))
    except SimDeadlock:
        return Cell(deadlock=True)
    reports = tool.finalize()
    count = getattr(tool, "dynamic_report_count", None)
    if count is None:
        count = len(reports)
    return Cell(time_s=machine.cost.seconds,
                mem_mib=machine.memory_meter().total_mib,
                reports=str(count))


def run_table2(s: int = 16, seeds: int = 5) -> List[List[str]]:
    """Build the full Table II rows (measured vs paper)."""
    rows: List[List[str]] = []
    for racy in (False, True):
        for nthreads in (1, 4):
            row: List[str] = ["yes" if racy else "no", str(nthreads)]
            for tool in ("none", "archer", "taskgrind"):
                if tool == "archer" and nthreads == 4:
                    # the paper reports a range over repeated runs
                    cells = [run_cell(tool, racy=racy, nthreads=nthreads,
                                      s=s, seed=k) for k in range(seeds)]
                    counts = sorted(int(c.reports) for c in cells)
                    cell = cells[0]
                    cell.reports = (f"{counts[0]} to {counts[-1]}"
                                    if counts[0] != counts[-1]
                                    else str(counts[0]))
                else:
                    cell = run_cell(tool, racy=racy, nthreads=nthreads, s=s,
                                    seed=0)
                paper = PAPER.get((racy, nthreads, tool), ("?", "?", "?"))
                row += [f"{cell.fmt_time()} ({paper[0]})",
                        f"{cell.fmt_mem()} ({paper[1]})"]
                if tool != "none":
                    row.append(f"{cell.fmt_reports()} ({paper[2]})")
            rows.append(row)
    return rows


HEADERS = ["racy", "threads",
           "time none", "mem none",
           "time archer", "mem archer", "reports archer",
           "time taskgrind", "mem taskgrind", "reports taskgrind"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--s", type=int, default=16)
    parser.add_argument("--seeds", type=int, default=5)
    args = parser.parse_args(argv)
    rows = run_table2(s=args.s, seeds=args.seeds)
    print(render_table(
        HEADERS, rows,
        title=f"Table II — LULESH -s {args.s} -tel 4 -tnl 4 -p -i 4 "
              "[cell = measured (paper); time s, memory MB]"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
