"""Per-thread stacks with downward-growing frames.

The stack model exists to reproduce the paper's Section IV-D false positive:
two tasks executed back-to-back on the same thread push frames at the *same
address*, so their "local" variables alias.  Taskgrind suppresses the
resulting conflicts by registering the stack frame address at segment start
and discarding conflicts that fall inside a segment's own frame.

Frames are bump-allocated downward from the thread's stack top; ``alloca``
carves local variables out of the current frame.  Popping a frame returns the
stack pointer exactly where it was, so a subsequent push of the same size
reuses the same addresses — deterministically, which is what the TMB stack
microbenchmarks rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import MachineError
from repro.machine.memory import AddressSpace, Region


@dataclass
class StackFrame:
    """One activation record: ``[sp, base)`` within the thread stack."""

    symbol: object                 # debuginfo.Symbol of the function
    base: int                      # high address (frame start)
    sp: int                        # current low edge (moves down on alloca)
    thread_id: int
    locals: dict = field(default_factory=dict)   # name -> addr

    @property
    def size(self) -> int:
        return self.base - self.sp

    def covers(self, addr: int, size: int = 1) -> bool:
        return self.sp <= addr and addr + size <= self.base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self.symbol, "name", self.symbol)
        return f"Frame({name}, [{self.sp:#x}, {self.base:#x}))"


class ThreadStack:
    """A single simulated thread's stack (downward-growing)."""

    def __init__(self, space: AddressSpace, region: Region, thread_id: int) -> None:
        self.space = space
        self.region = region
        self.thread_id = thread_id
        self._top = region.end          # stacks grow downward from the end
        self.frames: List[StackFrame] = []
        self.low_water = region.end     # deepest sp ever (for footprint)

    # -- frame management -------------------------------------------------

    def push_frame(self, symbol: object) -> StackFrame:
        frame = StackFrame(symbol=symbol, base=self._top, sp=self._top,
                           thread_id=self.thread_id)
        self.frames.append(frame)
        return frame

    def pop_frame(self, frame: StackFrame) -> None:
        if not self.frames or self.frames[-1] is not frame:
            raise MachineError("unbalanced stack frame pop")
        self.frames.pop()
        # Return the stack pointer; clear stale scalar values so a later
        # frame reusing these addresses starts from zeroed memory (the
        # *addresses* still alias — that is the point).
        self.space.clear_range(frame.sp, frame.base)
        self._top = frame.base

    def alloca(self, size: int, name: Optional[str] = None, align: int = 8) -> int:
        """Reserve ``size`` bytes of locals in the current frame."""
        if not self.frames:
            raise MachineError("alloca with no active frame")
        frame = self.frames[-1]
        sp = (frame.sp - size) & ~(align - 1)
        if sp < self.region.base:
            raise MachineError(
                f"simulated stack overflow on thread {self.thread_id}")
        frame.sp = sp
        self._top = sp
        self.low_water = min(self.low_water, sp)
        if name is not None:
            frame.locals[name] = sp
        return sp

    # -- queries ---------------------------------------------------------------

    @property
    def current_frame(self) -> Optional[StackFrame]:
        return self.frames[-1] if self.frames else None

    def frame_covering(self, addr: int) -> Optional[StackFrame]:
        """The innermost live frame containing ``addr``."""
        for frame in reversed(self.frames):
            if frame.covers(addr):
                return frame
        return None

    @property
    def used_bytes(self) -> int:
        return self.region.end - self._top

    @property
    def peak_bytes(self) -> int:
        return self.region.end - self.low_water
