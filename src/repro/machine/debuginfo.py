"""Debug information: symbols, source locations, shadow call stacks.

Valgrind reads DWARF from the binary; our guest programs *declare* their debug
info instead.  Three things hang off it:

* **Symbols** carry the ``instrumented`` bit — whether the symbol was
  "compiled with instrumentation".  Compile-time tools (Archer, TSan,
  TaskSanitizer) only observe accesses in instrumented symbols; DBI tools see
  everything.  This is the mechanism behind the paper's false-negative
  argument (Section I) and the ignore-list/instrument-list filters
  (Section IV-A) match on symbol names.
* **Source locations** let Taskgrind print ``task.1.c:8``-style reports
  (Listing 6), while the modeled ROMP deliberately drops them (Listing 5).
* **Shadow call stacks** are maintained per simulated thread by
  :class:`repro.machine.program.GuestContext` and snapshotted by the
  allocator wrapper so conflicting accesses can be matched to the allocation
  site of the block they hit.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.machine.memory import CODE_BASE


@dataclass(frozen=True)
class SourceLocation:
    """``file:line`` with an optional enclosing function name."""

    file: str
    line: int
    function: str = ""

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class Symbol:
    """A guest function: name, home source file, instrumentation provenance."""

    name: str
    file: str = "<unknown>"
    line: int = 0
    instrumented: bool = True        # compiled with -fsanitize-style hooks
    library: str = "a.out"           # which "object" it lives in

    addr: int = 0                    # synthetic code address, set on interning

    def location(self, line: Optional[int] = None) -> SourceLocation:
        return SourceLocation(self.file, self.line if line is None else line,
                              self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = "" if self.instrumented else " [uninstrumented]"
        return f"Symbol({self.name} @ {self.file}:{self.line}{tag})"


class DebugInfo:
    """Symbol interning plus name-pattern matching for ignore/instrument lists."""

    def __init__(self) -> None:
        self._symbols: Dict[str, Symbol] = {}
        self._next_code_addr = CODE_BASE

    def intern(self, name: str, *, file: str = "<unknown>", line: int = 0,
               instrumented: bool = True, library: str = "a.out") -> Symbol:
        """Get-or-create the symbol ``name`` (first declaration wins)."""
        sym = self._symbols.get(name)
        if sym is None:
            sym = Symbol(name=name, file=file, line=line,
                         instrumented=instrumented, library=library,
                         addr=self._next_code_addr)
            self._next_code_addr += 16
            self._symbols[name] = sym
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def all_symbols(self) -> List[Symbol]:
        return list(self._symbols.values())

    @staticmethod
    def matches_any(name: str, patterns: Tuple[str, ...]) -> bool:
        """fnmatch-style matching used by the ignore/instrument lists.

        A bare prefix such as ``__kmp`` (the paper's example) is treated as
        ``__kmp*``.
        """
        for pat in patterns:
            if not any(ch in pat for ch in "*?["):
                pat = pat + "*"
            if fnmatch.fnmatchcase(name, pat):
                return True
        return False


def format_stack(stack: Tuple[SourceLocation, ...], indent: str = "    ") -> str:
    """Render a shadow call stack the way the report listings do."""
    if not stack:
        return f"{indent}<no stack recorded>"
    lines = []
    for i, loc in enumerate(reversed(stack)):
        head = "at" if i == 0 else "by"
        fn = f" in {loc.function}" if loc.function else ""
        lines.append(f"{indent}{head} {loc}{fn}")
    return "\n".join(lines)
