"""The assembled simulated process: Valgrind core + guest process in one.

:class:`Machine` wires together the address space, allocator, TLS registry,
per-thread stacks, the deterministic scheduler, debug info, the cost model and
the instrumentation hub.  One :class:`Machine` is built per benchmark run
(program × tool × thread count × seed) by :class:`repro.bench.runner.Runner`.

Thread-side execution state (the shadow call stack, current source line) is
kept per simulated thread in :class:`ThreadContext`; guest programs manipulate
it only through :class:`repro.machine.program.GuestContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MachineError
from repro.machine.allocator import Allocator, FastArena
from repro.machine.cost import CostModel, CostParams, MemoryMeter
from repro.machine.debuginfo import DebugInfo, SourceLocation, Symbol
from repro.machine.memory import (AddressSpace, Region, RegionKind,
                                  DEFAULT_HEAP_SIZE, DEFAULT_STACK_SIZE,
                                  GLOBALS_BASE, HEAP_BASE, STACKS_BASE)
from repro.machine.stack import ThreadStack
from repro.machine.threads import Scheduler, SimThread
from repro.machine.tls import TlsRegistry
from repro.obs.metrics import get_registry
from repro.util.rng import RngHub
from repro.vex.client_requests import ClientRequestRouter
from repro.vex.events import AllocEvent, FreeEvent
from repro.vex.instrument import Instrumentation
from repro.vex.replacement import ReplacementRegistry
from repro.vex.tool import Tool


@dataclass
class ThreadContext:
    """Per-simulated-thread guest execution state."""

    thread_id: int
    stack: ThreadStack
    symbols: List[Symbol] = field(default_factory=list)      # shadow call stack
    lines: List[int] = field(default_factory=list)           # current line per frame

    @property
    def symbol(self) -> Symbol:
        if not self.symbols:
            raise MachineError(f"thread {self.thread_id} has no active symbol")
        return self.symbols[-1]

    @property
    def location(self) -> Optional[SourceLocation]:
        if not self.symbols:
            return None
        sym = self.symbols[-1]
        return SourceLocation(sym.file, self.lines[-1], sym.name)

    def call_stack(self) -> Tuple[SourceLocation, ...]:
        return tuple(SourceLocation(s.file, ln, s.name)
                     for s, ln in zip(self.symbols, self.lines))


class Machine:
    """One simulated process run."""

    def __init__(self, *, seed: int = 0, heap_size: int = DEFAULT_HEAP_SIZE,
                 stack_size: int = DEFAULT_STACK_SIZE,
                 cost_params: Optional[CostParams] = None) -> None:
        self.rng = RngHub(seed)
        self.space = AddressSpace()
        self.debug = DebugInfo()
        self.replacements = ReplacementRegistry()
        self.client_requests = ClientRequestRouter()
        self.scheduler = Scheduler(self.rng)
        self.stack_size = stack_size

        self.globals_region = self.space.map_region(Region(
            name="globals", base=GLOBALS_BASE, size=1 << 24,
            kind=RegionKind.GLOBALS))
        self._globals_cursor = GLOBALS_BASE
        self._global_vars: Dict[str, Tuple[int, int]] = {}

        heap_region = self.space.map_region(Region(
            name="heap", base=HEAP_BASE, size=heap_size, kind=RegionKind.HEAP))
        self.allocator = Allocator(self.space, heap_region)
        self.allocator.replacements = self.replacements
        self.allocator.on_alloc = self._notify_alloc
        self.allocator.on_free = self._notify_free
        self.fast_arena = FastArena(self.allocator)

        self.tls = TlsRegistry(self.space)

        self.tools: List[Tool] = []
        self._tool_cost = None
        self.cost: CostModel = CostModel(cost_params)
        self.instrumentation = Instrumentation(self.space, self.cost)
        self._cost_params = cost_params
        # phases timed while this machine runs report its virtual clock
        self.metrics = get_registry()
        from repro.machine.cost import OPS_PER_SECOND
        self.metrics.set_vclock(lambda: self.cost.vtime_ops,
                                ops_per_second=OPS_PER_SECOND)
        from repro.obs.tracer import get_tracer
        tracer = get_tracer()
        if tracer.enabled:
            # timeline timestamps follow this machine's virtual clock too
            tracer.set_vclock(lambda: self.cost.vtime_ops,
                              ops_per_second=OPS_PER_SECOND)
        from repro.obs.prof import get_profiler
        prof = get_profiler()
        if prof.enabled:
            # mirror every cost-model charge into the attribution profiler;
            # frames come from this machine's shadow call stacks
            self.cost._prof = prof

            def _shadow_frame(tid: int, _prof=prof) -> Optional[str]:
                ctx = self._contexts.get(tid)
                if ctx is None or not ctx.symbols:
                    return None
                return _prof.join_frames(
                    tuple(sym.name for sym in ctx.symbols))

            prof.bind_frame_provider(_shadow_frame)

        self._contexts: Dict[int, ThreadContext] = {}
        self._next_stack_base = STACKS_BASE
        self._finished = False

    # -- tool management ------------------------------------------------------

    def add_tool(self, tool: Tool) -> None:
        """Attach an analysis tool (must happen before :meth:`run`)."""
        self.tools.append(tool)
        self.instrumentation.add_tool(tool)
        # The most expensive attached tool defines the run's cost behaviour
        # (the harness attaches at most one real tool per run).
        self.cost.tool_cost = tool.cost
        self.cost.clock.serialize = tool.cost.serialize
        tool.attach(self)

    # -- threads ------------------------------------------------------------------

    def new_thread(self, fn: Callable[[], object], name: str = "") -> SimThread:
        """Spawn a simulated thread with its own stack and TLS."""
        t = self.scheduler.spawn(fn, name)
        stack_region = self.space.map_region(Region(
            name=f"stack.t{t.id}", base=self._next_stack_base,
            size=self.stack_size, kind=RegionKind.STACK, owner_thread=t.id))
        self._next_stack_base += self.stack_size + (1 << 16)   # guard gap
        self.tls.register_thread(t.id)
        self._contexts[t.id] = ThreadContext(
            thread_id=t.id, stack=ThreadStack(self.space, stack_region, t.id))
        for tool in self.tools:
            tool.on_thread_start(t.id)
        return t

    def current_thread(self) -> SimThread:
        return self.scheduler.current()

    def context(self, thread_id: Optional[int] = None) -> ThreadContext:
        if thread_id is None:
            thread_id = self.scheduler.current_id()
        return self._contexts[thread_id]

    def thread_contexts(self) -> Dict[int, ThreadContext]:
        return dict(self._contexts)

    # -- globals -------------------------------------------------------------------

    def global_var(self, name: str, size: int) -> int:
        """Address of global variable ``name``, allocating on first use."""
        entry = self._global_vars.get(name)
        if entry is None:
            addr = self._globals_cursor
            self._globals_cursor += (size + 15) & ~15
            if self._globals_cursor > self.globals_region.end:
                raise MachineError("globals region exhausted")
            entry = (addr, size)
            self._global_vars[name] = entry
        return entry[0]

    @property
    def globals_bytes(self) -> int:
        return self._globals_cursor - GLOBALS_BASE

    # -- allocator event fan-out ------------------------------------------------------

    def _notify_alloc(self, block) -> None:
        thread = self.scheduler.maybe_current()
        self.cost.charge_alloc(thread)
        event = AllocEvent(addr=block.addr, size=block.size,
                           thread_id=getattr(thread, "id", -1), seq=block.seq,
                           site=block.alloc_site, stack=block.alloc_stack)
        for tool in self.tools:
            tool.on_alloc(event)

    def _notify_free(self, block, retained: bool) -> None:
        thread = self.scheduler.maybe_current()
        self.cost.charge_alloc(thread)
        event = FreeEvent(addr=block.addr, size=block.size,
                          thread_id=getattr(thread, "id", -1), seq=block.seq,
                          retained=retained)
        for tool in self.tools:
            tool.on_free(event)

    # -- run -------------------------------------------------------------------------

    def run(self, entry: Callable[[], object]) -> object:
        """Execute ``entry`` on simulated thread 0 and drive all threads."""
        if self._finished:
            raise MachineError("Machine.run is single-shot")
        result_box: list = [None]

        def main() -> None:
            result_box[0] = entry()

        self.new_thread(main, name="main")
        try:
            with self.metrics.phase("record"):
                self.scheduler.run()
        finally:
            self._finished = True
        return result_box[0]

    # -- accounting --------------------------------------------------------------------

    def memory_meter(self) -> MemoryMeter:
        """Assemble the end-of-run footprint breakdown."""
        stack_bytes = sum(ctx.stack.peak_bytes
                          for ctx in self._contexts.values())
        from repro.machine.cost import PER_THREAD_RSS_BYTES
        meter = MemoryMeter(
            heap_high_water=self.allocator.high_water,
            retained_bytes=self.allocator.retained_bytes,
            stack_bytes=stack_bytes,
            globals_bytes=self.globals_bytes,
            tls_bytes=self.tls.bytes_mapped,
            thread_bytes=max(0, self.scheduler.peak_live - 1)
            * PER_THREAD_RSS_BYTES,
        )
        meter.tool_bytes = sum(tool.memory_bytes(meter.app_bytes)
                               for tool in self.tools)
        return meter
