"""Deterministic simulated threads with strict token-passing scheduling.

Each simulated thread is a real Python thread, but **exactly one runs at any
moment**: the scheduler (running on the thread that called
:meth:`Scheduler.run`) hands a token to one simulated thread, which runs guest
code until it hits a *scheduling point* (:meth:`Scheduler.yield_point`,
:meth:`Scheduler.block_until`, or termination) and hands the token back.

Consequences, all load-bearing for the reproduction:

* **Determinism** — the interleaving is a pure function of the run seed, so
  every verdict in Table I is reproducible, and sweeping seeds reproduces the
  schedule-sensitivity ranges the paper reports for Archer.
* **Deadlock detection** — when every live thread is blocked and no predicate
  is satisfied, :class:`repro.errors.SimDeadlock` is raised with a dump of the
  wait reasons.  This is how the Table II ``deadlock`` cells for Taskgrind at
  4 threads are produced (by an actual circular wait in the modeled tool, not
  by fiat).
* **Virtual time** — threads carry a virtual clock (charged by the cost
  model); the scheduler always runs the runnable thread with the smallest
  clock, giving a discrete-event notion of parallel execution time.

Guest code never sees this module directly; the runtimes
(:mod:`repro.openmp`, :mod:`repro.cilk`) call the yield/block primitives at
their task scheduling points, mirroring where a real runtime would enter the
kernel or the Valgrind scheduler.
"""

from __future__ import annotations

import enum
import threading
from typing import Callable, List, Optional

from repro.errors import MachineError, SimDeadlock
from repro.obs.tracer import get_tracer
from repro.util.rng import RngHub

_TRACER = get_tracer()

_SLICE_TIMEOUT = 300.0      # seconds of *real* time before declaring a hang


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class _Abort(BaseException):
    """Injected into simulated threads to unwind them on scheduler shutdown."""


class SimThread:
    """One simulated thread: a real thread gated by a resume event."""

    def __init__(self, sched: "Scheduler", tid: int, fn: Callable[[], object],
                 name: str) -> None:
        self.sched = sched
        self.id = tid
        self.name = name
        self.fn = fn
        self.state = ThreadState.NEW
        self.vtime = 0.0                     # simulated ops executed
        self.block_reason: str = ""
        self.block_pred: Optional[Callable[[], bool]] = None
        self.exc: Optional[BaseException] = None
        self.result: object = None
        self._resume = threading.Event()
        self._real = threading.Thread(target=self._entry,
                                      name=f"sim-{tid}-{name}", daemon=True)

    # -- real-thread side -------------------------------------------------

    def _entry(self) -> None:
        self.sched._local.sim_thread = self
        try:
            self._wait_for_token()
            self.result = self.fn()
        except _Abort:
            pass
        except BaseException as exc:    # noqa: BLE001 - guest faults propagate
            self.exc = exc
        finally:
            self.state = ThreadState.DONE
            if _TRACER.enabled:
                _TRACER.instant("thread.exit", self.id, cat="thread",
                                args={"name": self.name,
                                      "faulted": self.exc is not None})
            self.sched._token_to_master()

    def _wait_for_token(self) -> None:
        if not self._resume.wait(timeout=_SLICE_TIMEOUT):  # pragma: no cover
            raise MachineError(f"simulated thread {self.id} never resumed")
        self._resume.clear()
        if self.sched._aborting:
            raise _Abort()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimThread({self.id}, {self.name}, {self.state.value})"


class Scheduler:
    """Token-passing scheduler over :class:`SimThread` instances."""

    #: probability of picking a uniformly random runnable thread instead of
    #: the min-vtime one — models OS scheduling noise / wake latencies, and
    #: is the source of the seed-to-seed verdict/report variance the paper
    #: observes for Archer (e.g. Table II's "149 to 273" report range).
    JITTER = 0.25

    def __init__(self, rng: Optional[RngHub] = None,
                 policy: str = "min_vtime") -> None:
        self.rng = rng or RngHub(0)
        self.policy = policy
        self.threads: List[SimThread] = []
        self.now = 0.0                       # vtime of the last-run slice
        self.switches = 0
        #: replay hooks (repro.replay).  ``pick_observer(tid)`` is called
        #: after every scheduling decision; ``pick_override(ready)`` — when
        #: set — *makes* the decision instead of the seeded policy (and the
        #: sched.* rng streams are not drawn, which is safe because every
        #: stream is independent).
        self.pick_observer: Optional[Callable[[int], None]] = None
        self.pick_override: Optional[
            Callable[[List["SimThread"]], "SimThread"]] = None
        self.peak_live = 0                   # max concurrently-live threads
        self._master = threading.Event()
        self._aborting = False
        self._local = threading.local()
        self._started = False

    # -- introspection ------------------------------------------------------

    def current(self) -> SimThread:
        """The simulated thread the calling real thread embodies."""
        t = getattr(self._local, "sim_thread", None)
        if t is None:
            raise MachineError("not running on a simulated thread")
        return t

    def current_id(self) -> int:
        return self.current().id

    def maybe_current(self) -> Optional[SimThread]:
        return getattr(self._local, "sim_thread", None)

    # -- thread creation -------------------------------------------------------

    def spawn(self, fn: Callable[[], object], name: str = "") -> SimThread:
        """Create a simulated thread; it becomes runnable immediately.

        Safe to call from the master or from a running simulated thread
        (exactly one real thread is ever active, so no further locking).
        """
        tid = len(self.threads)
        t = SimThread(self, tid, fn, name or f"t{tid}")
        self.threads.append(t)
        t.state = ThreadState.RUNNABLE
        t.vtime = self.now
        live = sum(1 for x in self.threads if x.state != ThreadState.DONE)
        self.peak_live = max(self.peak_live, live)
        if _TRACER.enabled:
            _TRACER._meta("thread_name", 1, tid, {"name": t.name})
            _TRACER.instant("thread.spawn", tid, cat="thread",
                            args={"name": t.name, "live": live})
        t._real.start()
        return t

    # -- scheduling points (called from simulated threads) ------------------------

    def yield_point(self) -> None:
        """Give the scheduler a chance to run somebody else."""
        t = self.current()
        t.state = ThreadState.RUNNABLE
        self._token_to_master()
        t._wait_for_token()
        t.state = ThreadState.RUNNING

    def block_until(self, pred: Callable[[], bool], reason: str) -> None:
        """Suspend the calling thread until ``pred()`` holds.

        The predicate is evaluated by the scheduler between slices; it must be
        cheap and must only read state mutated by other simulated threads.
        """
        if pred():
            return
        t = self.current()
        t.state = ThreadState.BLOCKED
        t.block_pred = pred
        t.block_reason = reason
        self._token_to_master()
        t._wait_for_token()
        t.state = ThreadState.RUNNING
        t.block_pred = None
        t.block_reason = ""

    def _token_to_master(self) -> None:
        self._master.set()

    # -- master loop ---------------------------------------------------------------

    def run(self) -> None:
        """Drive all simulated threads to completion.

        Re-raises the first guest exception; raises :class:`SimDeadlock` when
        no thread can make progress.  Must be called from the thread that
        created the scheduler (the "Valgrind core" thread).
        """
        if self._started:
            raise MachineError("Scheduler.run is single-shot")
        self._started = True
        try:
            while True:
                live = [t for t in self.threads if t.state != ThreadState.DONE]
                if not live:
                    break
                t = self._pick(live)
                if t is None:
                    states = {x.id: x.block_reason or x.state.value for x in live}
                    raise SimDeadlock(states)
                self._run_slice(t)
                failed = next((x for x in self.threads if x.exc is not None), None)
                if failed is not None:
                    raise failed.exc
        except BaseException:
            self._abort_all()
            raise
        self._abort_all()        # no-op when everything finished cleanly

    def _pick(self, live: List[SimThread]) -> Optional[SimThread]:
        ready: List[SimThread] = []
        for t in live:
            if t.state == ThreadState.RUNNABLE:
                ready.append(t)
            elif t.state == ThreadState.BLOCKED:
                assert t.block_pred is not None
                if t.block_pred():
                    ready.append(t)
        if not ready:
            return None
        if self.pick_override is not None:
            chosen = self.pick_override(ready)
            if self.pick_observer is not None:
                self.pick_observer(chosen.id)
            return chosen
        chosen = None
        if len(ready) > 1 and self.policy == "min_vtime":
            if self.rng.randint("sched.jitter", 0, 100) < self.JITTER * 100:
                chosen = ready[self.rng.choice("sched.jitterpick",
                                               len(ready))]
            else:
                best = min(t.vtime for t in ready)
                ready = [t for t in ready if t.vtime == best]
        if chosen is None:
            if len(ready) > 1:
                chosen = ready[self.rng.choice("sched.tiebreak", len(ready))]
            else:
                chosen = ready[0]
        if self.pick_observer is not None:
            self.pick_observer(chosen.id)
        return chosen

    def _run_slice(self, t: SimThread) -> None:
        if t.state == ThreadState.BLOCKED:
            # Time passed while waiting: jump to the present.
            t.vtime = max(t.vtime, self.now)
        t.state = ThreadState.RUNNING
        self.switches += 1
        t._resume.set()
        if not self._master.wait(timeout=_SLICE_TIMEOUT):  # pragma: no cover
            raise MachineError(f"simulated thread {t.id} hung (real deadlock?)")
        self._master.clear()
        self.now = max(self.now, t.vtime)

    def _abort_all(self) -> None:
        self._aborting = True
        for t in self.threads:
            while t.state != ThreadState.DONE:
                t._resume.set()
                if not self._master.wait(timeout=30):  # pragma: no cover
                    break
                self._master.clear()
        for t in self.threads:
            t._real.join(timeout=30)
