"""Heap allocator with first-fit recycling — and the hooks to defeat it.

Two properties matter for the paper:

1. **Recycling** (Section IV-B): ``free`` returns a block to a free list and a
   later ``malloc`` of a compatible size *reuses the same address*.  Two
   independent tasks that each ``malloc``/``write``/``free`` can therefore
   touch the same bytes, which a naive determinacy-race analysis flags.
2. **Function replacement** (Section III-C / IV-B): Valgrind tools can wrap
   the allocator.  Taskgrind turns ``free`` into a no-op so distinct
   allocations never alias, and records an allocation-site stack trace per
   block for error reports.  The replacement registry lives in
   :mod:`repro.vex.replacement`; this allocator consults it on every call.

The paper's future-work caveat — library-internal allocators such as LLVM's
``__kmp_fast_allocate`` recycle *despite* the wrapping — is reproduced by
:class:`FastArena`, the simulated OpenMP runtime's private pool, which this
module also provides and which ignores replacements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DoubleFree, OutOfMemory
from repro.faults.inject import get_injector
from repro.machine.memory import AddressSpace, Region
from repro.obs.tracer import get_tracer

_TRACER = get_tracer()
_FAULTS = get_injector()

ALIGNMENT = 16


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


@dataclass
class AllocationBlock:
    """Metadata of one heap allocation (live, freed, or retained)."""

    addr: int
    size: int                                 # aligned size
    seq: int                                  # allocation order, block id
    req_size: int = 0                         # size the guest asked for
    alloc_site: Optional[object] = None       # SourceLocation of the malloc
    alloc_stack: Tuple[object, ...] = ()      # shadow call stack at malloc
    alloc_thread: int = -1
    freed: bool = False                       # logically freed by the guest
    retained: bool = False                    # freed but kept (free-as-noop)

    @property
    def end(self) -> int:
        return self.addr + self.size


class Allocator:
    """First-fit bump+free-list allocator over the heap region.

    * ``malloc`` prefers the free list (exact/first fit, splitting), falling
      back to bumping the arena top — so recycling happens naturally and
      deterministically.
    * ``free`` consults the replacement registry first: a tool that replaced
      ``free`` with a no-op causes the block to be *retained* (address never
      reused, bytes still counted in the footprint — the paper's 6x memory
      overhead has this as one mechanism).
    """

    def __init__(self, space: AddressSpace, region: Region) -> None:
        self.space = space
        self.region = region
        self._top = region.base
        self._free: List[Tuple[int, int]] = []      # (addr, size), sorted by addr
        self.blocks: Dict[int, AllocationBlock] = {}  # live blocks by addr
        self.all_blocks: List[AllocationBlock] = []   # every block ever allocated
        self._seq = 0
        # statistics
        self.live_bytes = 0
        self.retained_bytes = 0
        self.high_water = 0
        self.total_allocs = 0
        self.total_frees = 0
        self.recycled_allocs = 0
        # wired by the Machine
        self.replacements = None                      # vex.replacement registry
        self.on_alloc = None                          # callback(block)
        self.on_free = None                           # callback(block, retained)

    # -- allocation ---------------------------------------------------------

    def malloc(self, size: int, *, site: Optional[object] = None,
               stack: Tuple[object, ...] = (), thread: int = -1) -> AllocationBlock:
        """Allocate ``size`` bytes; returns the block metadata."""
        if size <= 0:
            raise ValueError(f"malloc of non-positive size {size}")
        if _FAULTS.plan is not None:
            _FAULTS.on_alloc()            # may raise an injected OutOfMemory
        want = _align(size)
        addr = self._take_from_free_list(want)
        recycled = addr is not None
        if addr is None:
            addr = self._top
            if addr + want > self.region.end:
                raise OutOfMemory(
                    f"heap arena exhausted ({self._top - self.region.base} used)")
            self._top += want
        block = AllocationBlock(addr=addr, size=want, seq=self._seq,
                                req_size=size, alloc_site=site,
                                alloc_stack=tuple(stack),
                                alloc_thread=thread)
        self._seq += 1
        self.blocks[addr] = block
        self.all_blocks.append(block)
        self.total_allocs += 1
        if recycled:
            self.recycled_allocs += 1
        self.live_bytes += want
        self.high_water = max(self.high_water, self.footprint)
        if _TRACER.enabled:
            _TRACER.instant("heap.malloc", thread, cat="heap",
                            args={"addr": addr, "size": size,
                                  "recycled": recycled})
        if self.on_alloc is not None:
            self.on_alloc(block)
        return block

    def _take_from_free_list(self, want: int) -> Optional[int]:
        for i, (addr, size) in enumerate(self._free):
            if size >= want:
                if size == want:
                    self._free.pop(i)
                else:
                    self._free[i] = (addr + want, size - want)
                return addr
        return None

    # -- deallocation ------------------------------------------------------------

    def free(self, addr: int) -> None:
        """Free the block at ``addr`` (honouring tool replacements)."""
        block = self.blocks.get(addr)
        if block is None or block.freed:
            raise DoubleFree(f"free of non-live address {addr:#x}")
        if self.replacements is not None and self.replacements.is_replaced("free"):
            # Tool-provided free: Taskgrind's no-op.  The block is logically
            # freed (guest must not touch it again per C semantics, though
            # nothing enforces that here, as in the real tool) but the address
            # is never recycled and the bytes stay in the footprint.
            block.freed = True
            block.retained = True
            del self.blocks[addr]
            self.retained_bytes += block.size
            self.live_bytes -= block.size
            self.total_frees += 1
            if _TRACER.enabled:
                # the paper's IV-B no-op free: block retained, never recycled
                _TRACER.instant("heap.free", block.alloc_thread, cat="heap",
                                args={"addr": addr, "size": block.size,
                                      "retained": True})
            if self.on_free is not None:
                self.on_free(block, True)
            return
        block.freed = True
        del self.blocks[addr]
        self.live_bytes -= block.size
        self.total_frees += 1
        self.space.clear_range(block.addr, block.end)
        self._release(block.addr, block.size)
        if _TRACER.enabled:
            _TRACER.instant("heap.free", block.alloc_thread, cat="heap",
                            args={"addr": addr, "size": block.size,
                                  "retained": False})
        if self.on_free is not None:
            self.on_free(block, False)

    def _release(self, addr: int, size: int) -> None:
        """Insert ``[addr, addr+size)`` into the free list, coalescing."""
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < addr:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (addr, size))
        # coalesce with right neighbour
        if lo + 1 < len(self._free):
            a, s = self._free[lo]
            na, ns = self._free[lo + 1]
            if a + s == na:
                self._free[lo:lo + 2] = [(a, s + ns)]
        # coalesce with left neighbour
        if lo > 0:
            pa, ps = self._free[lo - 1]
            a, s = self._free[lo]
            if pa + ps == a:
                self._free[lo - 1:lo + 1] = [(pa, ps + s)]

    # -- queries --------------------------------------------------------------

    def block_at(self, addr: int, include_retained: bool = True) -> Optional[AllocationBlock]:
        """The block whose range covers ``addr`` (live, or retained if asked)."""
        best: Optional[AllocationBlock] = None
        for block in self.blocks.values():
            if block.addr <= addr < block.end:
                return block
        if include_retained:
            # retained blocks were removed from `blocks`; scan history newest-first
            for block in reversed(self.all_blocks):
                if block.retained and block.addr <= addr < block.end:
                    return block
        return best

    def block_history_at(self, addr: int) -> List[AllocationBlock]:
        """Every block (any epoch) whose range covered ``addr``, oldest first."""
        return [b for b in self.all_blocks if b.addr <= addr < b.end]

    @property
    def footprint(self) -> int:
        """Bytes currently held from the OS's perspective: live + retained."""
        return self.live_bytes + self.retained_bytes

    @property
    def arena_used(self) -> int:
        return self._top - self.region.base


class FastArena:
    """A library-internal pool allocator that recycles regardless of tools.

    Models LLVM's ``__kmp_fast_allocate``: the simulated OpenMP runtime
    allocates task descriptors from this pool.  Because it is *not* routed
    through the replaced ``free``, Taskgrind's no-op-free workaround does not
    apply — the future-work limitation of the paper's Section IV-B, and the
    mechanism behind the multi-thread TMB false positives.
    """

    def __init__(self, allocator: Allocator, *, chunk: int = 256) -> None:
        self._allocator = allocator
        self.chunk = _align(chunk)
        self._free: List[int] = []
        self.total_allocs = 0
        self.recycled_allocs = 0
        #: every chunk base this arena ever carved (ROMP's runtime awareness)
        self.owned_blocks: List[int] = []

    def alloc(self, size: int, *, site: Optional[object] = None,
              thread: int = -1) -> int:
        """Allocate one fixed-size slot; reuses returned slots LIFO."""
        if size > self.chunk:
            raise ValueError(f"FastArena chunk {self.chunk} < requested {size}")
        self.total_allocs += 1
        if self._free:
            self.recycled_allocs += 1
            return self._free.pop()
        block = self._allocator.malloc(self.chunk, site=site, thread=thread)
        self.owned_blocks.append(block.addr)
        return block.addr

    def release(self, addr: int) -> None:
        """Return a slot to the pool (never to the real allocator)."""
        self._free.append(addr)
