"""ELF-style thread-local storage: TCB + DTV per simulated thread.

Reproduces the paper's Section IV-C machinery.  Each simulated thread owns a
Thread Control Block (TCB) and a Dynamic Thread Vector (DTV): a generation
counter plus a vector of per-module TLS blocks.  ``_Thread_local`` variables
are assigned a (module, offset) pair once, and resolve per-thread to
``dtv[module].base + offset`` — so two tasks running on the *same* thread see
the same address (the false-positive source) while the same code on two
different threads touches disjoint ranges.

Taskgrind's suppression records a :class:`TlsSnapshot` (TCB id + DTV content +
generation) when a segment completes; a conflict whose both sides executed on
the same thread with the same DTV is discarded.  The snapshot also exposes the
paper's stated *limitation*: a TLS block allocated and freed within a segment
never appears in the end-of-segment snapshot, so such conflicts survive
suppression (tested in ``tests/core/test_suppress.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.machine.memory import (AddressSpace, Region, RegionKind,
                                  DEFAULT_TLS_BLOCK_SIZE, TLS_BASE)


@dataclass(frozen=True)
class TlsSnapshot:
    """What Taskgrind attaches to a completed segment (TCB + DTV state)."""

    thread_id: int
    tcb: int
    generation: int
    dtv: Tuple[Tuple[int, int, int], ...]    # (module, base, size) per entry

    def covers(self, addr: int, size: int = 1) -> bool:
        """True when ``[addr, addr+size)`` lies in one of the recorded blocks."""
        return any(base <= addr and addr + size <= base + bsz
                   for _mod, base, bsz in self.dtv)


class _ThreadTls:
    """Per-thread TCB + DTV."""

    def __init__(self, thread_id: int, tcb: int) -> None:
        self.thread_id = thread_id
        self.tcb = tcb
        self.generation = 1
        self.blocks: Dict[int, Tuple[int, int]] = {}   # module -> (base, size)

    def snapshot(self) -> TlsSnapshot:
        dtv = tuple(sorted((mod, base, size)
                           for mod, (base, size) in self.blocks.items()))
        return TlsSnapshot(self.thread_id, self.tcb, self.generation, dtv)


class TlsRegistry:
    """Allocates static/dynamic TLS blocks and resolves TLS variables."""

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self._next_base = TLS_BASE
        self._threads: Dict[int, _ThreadTls] = {}
        self._static_vars: Dict[str, Tuple[int, int, int]] = {}  # name->(mod,off,size)
        self._static_cursor = 0
        self._next_module = 2          # module 1 = static TLS of the executable
        self.bytes_mapped = 0
        #: recycled dynamic-TLS carve slots: (size -> [base, ...]).  Dynamic
        #: TLS blocks come from the allocator in a real process, so reuse is
        #: the realistic behaviour — and what makes the paper's DTV-churn
        #: false positive reproducible.
        self._free_blocks: Dict[int, List[int]] = {}

    # -- thread lifecycle ----------------------------------------------------

    def register_thread(self, thread_id: int) -> None:
        """Create the TCB and static TLS block for a new simulated thread."""
        tcb = self._carve(64, f"tcb.t{thread_id}", thread_id)
        tls = _ThreadTls(thread_id, tcb)
        static = self._carve(DEFAULT_TLS_BLOCK_SIZE, f"tls.static.t{thread_id}",
                             thread_id)
        tls.blocks[1] = (static, DEFAULT_TLS_BLOCK_SIZE)
        self._threads[thread_id] = tls

    def _carve(self, size: int, name: str, thread_id: int) -> int:
        base = self._next_base
        self._next_base += (size + 0xFFF) & ~0xFFF      # page-align regions
        self.space.map_region(Region(name=name, base=base, size=size,
                                     kind=RegionKind.TLS,
                                     owner_thread=thread_id))
        self.bytes_mapped += size
        return base

    # -- static TLS variables (``_Thread_local``) ---------------------------------

    def declare_static_var(self, name: str, size: int) -> None:
        """Assign a (module=1, offset) slot to a ``_Thread_local`` variable."""
        if name in self._static_vars:
            return
        off = self._static_cursor
        self._static_cursor += (size + 15) & ~15
        if self._static_cursor > DEFAULT_TLS_BLOCK_SIZE:
            raise ValueError("static TLS image exhausted")
        self._static_vars[name] = (1, off, size)

    def resolve(self, name: str, thread_id: int) -> int:
        """Address of TLS variable ``name`` on ``thread_id``."""
        mod, off, _size = self._static_vars[name]
        base, _bsz = self._threads[thread_id].blocks[mod]
        return base + off

    # -- dynamic TLS (dlopen-style modules; exercises the DTV-gen limitation) -----

    def open_module(self, thread_id: int, size: int) -> int:
        """Allocate a dynamic TLS block for a fresh module on one thread.

        Bumps the DTV generation — the signal the paper says Taskgrind could
        use to *warn* about (but not suppress) intra-segment DTV churn.
        """
        tls = self._threads[thread_id]
        module = self._next_module
        self._next_module += 1
        free = self._free_blocks.get(size)
        if free:
            base = free.pop()
            self.space.map_region(Region(
                name=f"tls.dyn.m{module}.t{thread_id}", base=base, size=size,
                kind=RegionKind.TLS, owner_thread=thread_id))
            self.bytes_mapped += size
        else:
            base = self._carve(size, f"tls.dyn.m{module}.t{thread_id}",
                               thread_id)
        tls.blocks[module] = (base, size)
        tls.generation += 1
        return module

    def close_module(self, thread_id: int, module: int) -> None:
        tls = self._threads[thread_id]
        base, size = tls.blocks.pop(module)
        tls.generation += 1
        region = self.space.region_at(base)
        if region is not None:
            self.space.unmap_region(region)
            self.bytes_mapped -= size
        self._free_blocks.setdefault(size, []).append(base)

    def module_base(self, thread_id: int, module: int) -> int:
        return self._threads[thread_id].blocks[module][0]

    # -- snapshots --------------------------------------------------------------

    def snapshot(self, thread_id: int) -> TlsSnapshot:
        return self._threads[thread_id].snapshot()

    def generation(self, thread_id: int) -> int:
        return self._threads[thread_id].generation
