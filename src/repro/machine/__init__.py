"""Simulated process substrate.

This package is the reproduction's stand-in for a real x86-64 process under
Valgrind: a flat 64-bit address space with code/global/heap/stack/TLS regions,
a recycling heap allocator, per-thread stacks and ELF-TLS control blocks, a
deterministic simulated-thread scheduler with deadlock detection, debug
information (symbols + source locations + shadow call stacks), and the cost
model that turns executed work into the simulated seconds / bytes reported by
the Table II and Fig. 4 harnesses.

Guest programs never touch these classes directly; they go through
:class:`repro.machine.program.GuestContext`, whose loads and stores all funnel
through the instrumentation hub in :mod:`repro.vex` — the same property real
DBI guarantees.
"""

from repro.machine.memory import AddressSpace, Region, RegionKind
from repro.machine.allocator import Allocator, AllocationBlock
from repro.machine.stack import ThreadStack, StackFrame
from repro.machine.tls import TlsRegistry, TlsSnapshot
from repro.machine.threads import Scheduler, SimThread, ThreadState
from repro.machine.debuginfo import DebugInfo, SourceLocation, Symbol
from repro.machine.cost import CostModel, Clock, MemoryMeter
from repro.machine.machine import Machine
from repro.machine.program import GuestContext, Buffer, GuestProgram

__all__ = [
    "AddressSpace", "Region", "RegionKind",
    "Allocator", "AllocationBlock",
    "ThreadStack", "StackFrame",
    "TlsRegistry", "TlsSnapshot",
    "Scheduler", "SimThread", "ThreadState",
    "DebugInfo", "SourceLocation", "Symbol",
    "CostModel", "Clock", "MemoryMeter",
    "Machine", "GuestContext", "Buffer", "GuestProgram",
]
