"""Cost model: simulated seconds and bytes for the Table II / Fig. 4 harness.

The paper measures wall-clock time and RSS of real binaries on an
i5-12450H.  A Python simulation cannot reproduce absolute numbers, so the
harness reports *simulated* time and memory derived from mechanisms:

* **Time** — every guest operation (memory access element, task creation,
  sync op, allocation) charges a fixed op count to the executing thread's
  virtual clock.  An analysis tool multiplies the access charge by its
  per-access instrumentation factor and, for DBI tools, adds a one-time
  translation charge per symbol executed.  Valgrind-family tools additionally
  *serialize* the client (the big lock), so their makespan is the sum over
  threads rather than the max — exactly why the paper runs Taskgrind
  single-threaded in Fig. 4.
* **Memory** — the application footprint is the allocator high-water plus
  stacks, globals and TLS; each tool adds the bytes of the metadata it
  *actually built* during the run (shadow ranges for Archer, interval-tree
  nodes + segment records + retained-by-no-op-free blocks for Taskgrind,
  access history for ROMP).

Calibration constants below are chosen once so that the *reference* LULESH
point matches the paper's order of magnitude; everything else (the 10x/100x
slowdowns, 4x/6x memory, O(s^3) growth, crossovers) must emerge from the
mechanisms.  See EXPERIMENTS.md for paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

#: Simulated "operations" executed per simulated second by one core.
#: Chosen so the uninstrumented LULESH -s 16 run lands near the paper's 0.01 s.
OPS_PER_SECOND = 1.16e9

#: Resident baseline of a bare process (code, libc, libomp arenas) — the
#: constant part of the paper's RSS numbers.
PROCESS_IMAGE_BYTES = 8_900_000

#: Per additional worker thread: touched stack pages + libomp thread state
#: (the paper's no-tool RSS grows 10 -> 15 MB from 1 to 4 threads).
PER_THREAD_RSS_BYTES = 1_600_000


@dataclass
class CostParams:
    """Per-operation op charges (application side, before tool factors)."""

    access_per_element: float = 4.0     # one load/store of <=8 bytes
    element_bytes: int = 8              # granularity of bulk interval accesses
    task_create: float = 400.0          # descriptor alloc + enqueue
    task_schedule: float = 150.0        # dequeue/steal + dispatch
    sync_op: float = 120.0              # barrier arrival, taskwait check, ...
    alloc_op: float = 250.0             # malloc/free bookkeeping
    call_op: float = 20.0               # guest function call (frame push/pop)
    compute_per_flop: float = 1.0       # workload arithmetic (LULESH physics)

    def access_ops(self, size: int) -> float:
        elems = max(1, (size + self.element_bytes - 1) // self.element_bytes)
        return self.access_per_element * elems


@dataclass
class ToolCost:
    """How a tool inflates time and contributes memory.

    ``access_factor`` multiplies the op charge of every *observed* access
    (compile-time tools do not pay for accesses they cannot see — nor do they
    detect races in them, which is the paper's core trade-off).
    ``translation_ops`` is charged once per (symbol, thread) a DBI tool
    executes, modeling JIT recompilation of code blocks.
    """

    access_factor: float = 1.0
    #: slowdown on *non-memory* instructions: ~1 for compile-time tools
    #: (native execution), 20-60 for DBI (JIT-translated emulation)
    compute_factor: float = 1.0
    translation_ops: float = 0.0
    serialize: bool = False             # Valgrind big lock
    bytes_per_shadow_range: int = 0
    bytes_per_tree_node: int = 64
    bytes_per_segment: int = 0
    #: when set, observed accesses dispatched through the tool's *raw* fast
    #: path (write-combining recorder, no event object) charge this factor
    #: instead of ``access_factor`` — the cheaper instrumented-access cost of
    #: the batched recorder
    fast_access_factor: Optional[float] = None


class Clock:
    """Aggregates simulated time; per-thread when parallel, global when serialized."""

    def __init__(self, serialize: bool = False) -> None:
        self.serialize = serialize
        self.global_ops = 0.0
        self._per_thread: Dict[int, float] = {}

    def charge(self, thread, ops: float) -> None:
        """Charge ``ops`` to ``thread`` (a SimThread, or None pre-boot)."""
        if self.serialize:
            self.global_ops += ops
            if thread is not None:
                thread.vtime = self.global_ops
        elif thread is not None:
            thread.vtime += ops
            self._per_thread[thread.id] = thread.vtime
        else:
            self.global_ops += ops

    @property
    def makespan_ops(self) -> float:
        if self.serialize:
            return self.global_ops
        return max(self._per_thread.values(), default=0.0) + self.global_ops

    @property
    def seconds(self) -> float:
        return self.makespan_ops / OPS_PER_SECOND

    def per_thread_ops(self) -> Dict[int, float]:
        """Virtual clock per thread (empty when serialized)."""
        return dict(self._per_thread)


@dataclass
class MemoryMeter:
    """End-of-run footprint breakdown, in simulated bytes."""

    heap_high_water: int = 0
    retained_bytes: int = 0
    stack_bytes: int = 0
    globals_bytes: int = 0
    tls_bytes: int = 0
    thread_bytes: int = 0        # per-worker runtime state (peak team size)
    tool_bytes: int = 0

    @property
    def app_bytes(self) -> int:
        return (PROCESS_IMAGE_BYTES + self.heap_high_water +
                self.stack_bytes + self.globals_bytes + self.tls_bytes +
                self.thread_bytes)

    @property
    def total_bytes(self) -> int:
        return self.app_bytes + self.tool_bytes

    @property
    def total_mib(self) -> float:
        return self.total_bytes / (1 << 20)


class CostModel:
    """Run-wide accounting: op charges + footprint assembly."""

    def __init__(self, params: Optional[CostParams] = None,
                 tool_cost: Optional[ToolCost] = None) -> None:
        self.params = params or CostParams()
        self.tool_cost = tool_cost or ToolCost()
        self.clock = Clock(serialize=self.tool_cost.serialize)
        self._translated: set = set()
        self.counters: Dict[str, int] = {
            "accesses": 0, "access_bytes": 0, "tasks": 0, "syncs": 0,
            "allocs": 0, "calls": 0,
        }
        #: attribution profiler mirror (``repro.obs.prof.Profiler``), bound
        #: by the machine only when profiling is enabled — every
        #: ``clock.charge`` below is mirrored so per-bucket op totals sum
        #: to ``vtime_ops`` exactly under the serialized clock
        self._prof = None

    # -- time ------------------------------------------------------------

    def charge_access(self, thread, size: int, observed: bool,
                      fast: bool = False) -> None:
        self.counters["accesses"] += 1
        self.counters["access_bytes"] += size
        ops = self.params.access_ops(size)
        if observed:
            factor = self.tool_cost.access_factor
            if fast and self.tool_cost.fast_access_factor is not None:
                factor = self.tool_cost.fast_access_factor
            ops *= factor
        self.clock.charge(thread, ops)
        prof = self._prof
        if prof is not None:
            if not observed:
                default = "access.unobserved"
            elif fast:
                default = "record.access"
            else:
                default = "record.access.legacy"
            prof.charge(getattr(thread, "id", -1),
                        prof.take_access_hint(default), ops)

    def charge_translation(self, thread, symbol_name: str) -> None:
        if self.tool_cost.translation_ops <= 0:
            return
        key = symbol_name if self.tool_cost.serialize else (
            symbol_name, getattr(thread, "id", -1))
        if key in self._translated:
            return
        self._translated.add(key)
        self.clock.charge(thread, self.tool_cost.translation_ops)
        if self._prof is not None:
            # the translated symbol IS the attribution frame: translation
            # cost belongs to the block, not to whoever reached it first
            self._prof.charge(getattr(thread, "id", -1), "translate",
                              self.tool_cost.translation_ops,
                              frame=symbol_name)

    def charge_task(self, thread) -> None:
        self.counters["tasks"] += 1
        self.clock.charge(thread, self.params.task_create)
        if self._prof is not None:
            self._prof.charge(getattr(thread, "id", -1), "task.create",
                              self.params.task_create)

    def charge_schedule(self, thread) -> None:
        self.clock.charge(thread, self.params.task_schedule)
        if self._prof is not None:
            self._prof.charge(getattr(thread, "id", -1), "sched",
                              self.params.task_schedule)

    def charge_sync(self, thread) -> None:
        self.counters["syncs"] += 1
        self.clock.charge(thread, self.params.sync_op)
        if self._prof is not None:
            self._prof.charge(getattr(thread, "id", -1), "sync",
                              self.params.sync_op)

    def charge_alloc(self, thread) -> None:
        self.counters["allocs"] += 1
        self.clock.charge(thread, self.params.alloc_op)
        if self._prof is not None:
            self._prof.charge(getattr(thread, "id", -1), "alloc",
                              self.params.alloc_op)

    def charge_call(self, thread) -> None:
        self.counters["calls"] += 1
        self.clock.charge(thread, self.params.call_op)
        if self._prof is not None:
            self._prof.charge(getattr(thread, "id", -1), "call",
                              self.params.call_op)

    def charge_compute(self, thread, flops: float) -> None:
        ops = (flops * self.params.compute_per_flop
               * self.tool_cost.compute_factor)
        self.clock.charge(thread, ops)
        if self._prof is not None:
            self._prof.charge(getattr(thread, "id", -1), "compute", ops)

    @property
    def seconds(self) -> float:
        return self.clock.seconds

    @property
    def vtime_ops(self) -> float:
        """Current virtual makespan in ops (the registry's vclock source)."""
        return self.clock.makespan_ops

    def stats(self) -> Dict:
        """The cost model's contribution to the ``--stats`` document."""
        return {
            "makespan_ops": self.clock.makespan_ops,
            "seconds": self.seconds,
            "serialize": self.clock.serialize,
            "translated_symbols": len(self._translated),
            "counters": dict(self.counters),
            "per_thread_ops": {str(tid): ops for tid, ops
                               in sorted(self.clock.per_thread_ops().items())},
        }
