"""Guest programming API: how benchmark programs touch simulated memory.

A guest program is a Python callable receiving a :class:`GuestContext`.  All
memory traffic goes through the context so it funnels through the
instrumentation hub — the property real DBI guarantees and compile-time
instrumentation does not.  The context also maintains debug information
(shadow call stack, current source line) so reports can print
``task.1.c:8``-style locations.

Typical benchmark shape::

    def body(ctx: GuestContext) -> None:
        with ctx.function("main", file="task.c", line=1):
            x = ctx.malloc(8, line=3)
            ctx.line(8); x.write(0, 4)

:class:`Buffer` is a thin handle over an address range; element accesses emit
events and may carry per-access source lines.  Bulk ranges (LULESH fields) use
:meth:`Buffer.write_range` which emits one dense interval event, matching the
compaction of the paper's interval trees.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.errors import MachineError
from repro.machine.debuginfo import SourceLocation, Symbol
from repro.machine.machine import Machine


@dataclass(frozen=True)
class GuestProgram:
    """A benchmark program: entry point + metadata the runner needs."""

    name: str
    entry: Callable[["GuestContext"], object]
    #: OpenMP/Cilk construct tags used, e.g. {"task", "depend:inoutset"} —
    #: checked against each tool's compiler feature matrix ("ncs" rows).
    features: frozenset = frozenset()
    description: str = ""
    #: Main source file for reports.
    source_file: str = "main.c"


class Buffer:
    """A handle on ``[addr, addr+size)`` of simulated memory."""

    __slots__ = ("ctx", "addr", "size", "name", "elem", "site")

    def __init__(self, ctx: "GuestContext", addr: int, size: int,
                 name: str = "", elem: int = 4, site=None) -> None:
        self.ctx = ctx
        self.addr = addr
        self.size = size
        self.name = name
        self.elem = elem           # element width for index-based access
        self.site = site           # StaticSite token when statically elided

    @property
    def end(self) -> int:
        return self.addr + self.size

    def index_addr(self, index: int) -> int:
        return self.addr + index * self.elem

    # -- element access (emits events; optionally stores scalar values) --------

    def write(self, index: int = 0, value: object = None, *,
              line: Optional[int] = None, atomic: bool = False) -> None:
        addr = self.index_addr(index)
        self.ctx.write_mem(addr, self.elem, line=line, atomic=atomic,
                           site=self.site)
        if value is not None:
            self.ctx.machine.space.store(addr, self.elem, value)

    def read(self, index: int = 0, *, line: Optional[int] = None,
             atomic: bool = False) -> object:
        addr = self.index_addr(index)
        self.ctx.read_mem(addr, self.elem, line=line, atomic=atomic,
                          site=self.site)
        return self.ctx.machine.space.load(addr, self.elem)

    # -- bulk interval access ----------------------------------------------------

    def write_range(self, lo_index: int, hi_index: int, *,
                    line: Optional[int] = None) -> None:
        """One dense write covering elements ``[lo_index, hi_index)``."""
        if hi_index <= lo_index:
            return
        self.ctx.write_mem(self.index_addr(lo_index),
                           (hi_index - lo_index) * self.elem, line=line,
                           site=self.site)

    def read_range(self, lo_index: int, hi_index: int, *,
                   line: Optional[int] = None) -> None:
        if hi_index <= lo_index:
            return
        self.ctx.read_mem(self.index_addr(lo_index),
                          (hi_index - lo_index) * self.elem, line=line,
                          site=self.site)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "buf"
        return f"Buffer({label} @ {self.addr:#x}+{self.size})"


class GuestContext:
    """The guest program's window on the simulated process."""

    def __init__(self, machine: Machine, *, source_file: str = "main.c",
                 nthreads: int = 1) -> None:
        self.machine = machine
        self.source_file = source_file
        self.nthreads = nthreads
        #: Extension point: runtimes (OpenMP env, Cilk env) hang themselves here.
        self.extensions: dict = {}

    # -- thread-side state --------------------------------------------------------

    def _tctx(self):
        return self.machine.context()

    @property
    def current_symbol(self) -> Symbol:
        return self._tctx().symbol

    @property
    def current_location(self) -> Optional[SourceLocation]:
        return self._tctx().location

    def line(self, n: int) -> None:
        """Set the current source line of the innermost frame."""
        tctx = self._tctx()
        if not tctx.lines:
            raise MachineError("line() outside any function")
        tctx.lines[-1] = n

    def call_stack(self) -> Tuple[SourceLocation, ...]:
        return self._tctx().call_stack()

    # -- functions ------------------------------------------------------------------

    @contextlib.contextmanager
    def function(self, name: str, *, file: Optional[str] = None, line: int = 0,
                 instrumented: bool = True,
                 library: str = "a.out") -> Iterator[None]:
        """Enter guest function ``name``: push a stack frame + debug frame."""
        sym = self.machine.debug.intern(
            name, file=file or self.source_file, line=line,
            instrumented=instrumented, library=library)
        tctx = self._tctx()
        frame = tctx.stack.push_frame(sym)
        tctx.symbols.append(sym)
        tctx.lines.append(line)
        self.machine.cost.charge_call(self.machine.scheduler.current())
        try:
            yield frame
        finally:
            tctx.lines.pop()
            tctx.symbols.pop()
            tctx.stack.pop_frame(frame)

    # -- memory: variables ---------------------------------------------------------

    def _declare_site(self, name: str, klass: str) -> Optional[object]:
        """Hand a ``private=True`` declaration to the tool (tg_static_site).

        Returns the :class:`~repro.vex.elide.StaticSite` token iff some tool
        decided to elide the site; ``None`` (no subscriber, or elision
        gated off) keeps the normal recording path.
        """
        tctx = self._tctx()
        loc = tctx.location
        return self.machine.client_requests.request(
            "tg_static_site",
            (name, klass, tctx.symbol.name,
             loc.file if loc else "", loc.line if loc else 0))

    def malloc(self, size: int, *, name: str = "", elem: int = 4,
               line: Optional[int] = None, private: bool = False) -> Buffer:
        """Heap-allocate ``size`` bytes (records the allocation call stack).

        ``private=True`` asserts the allocation provably never escapes its
        creating scope (compiler-proved): its access site may be statically
        elided (class ``alloc`` of the elision lattice).
        """
        tctx = self._tctx()
        if line is not None:
            self.line(line)
        block = self.machine.allocator.malloc(
            size, site=tctx.location, stack=tctx.call_stack(),
            thread=tctx.thread_id)
        site = self._declare_site(name or "malloc", "alloc") if private \
            else None
        return Buffer(self, block.addr, size, name=name, elem=elem,
                      site=site)

    def free(self, buf: Buffer) -> None:
        self.machine.allocator.free(buf.addr)

    def global_var(self, name: str, size: int = 4, *, elem: int = 4) -> Buffer:
        """A global/static variable (one address program-wide)."""
        addr = self.machine.global_var(name, size)
        return Buffer(self, addr, size, name=name, elem=elem)

    def stack_var(self, name: str, size: int = 4, *, elem: int = 4,
                  private: bool = False) -> Buffer:
        """A local variable in the current frame (aliases across reuse!).

        ``private=True`` asserts the address provably never escapes the
        frame: the site may be statically elided (class ``stack``).
        """
        tctx = self._tctx()
        addr = tctx.stack.alloca(size, name=name)
        site = self._declare_site(name, "stack") if private else None
        return Buffer(self, addr, size, name=name, elem=elem, site=site)

    def tls_var(self, name: str, size: int = 4, *, elem: int = 4,
                private: bool = False) -> Buffer:
        """A ``_Thread_local`` variable resolved for the *current* thread.

        ``private=True`` asserts no cross-thread aliasing of the slot: the
        site may be statically elided (class ``tls``).
        """
        self.machine.tls.declare_static_var(name, size)
        addr = self.machine.tls.resolve(name, self._tctx().thread_id)
        site = self._declare_site(name, "tls") if private else None
        return Buffer(self, addr, size, name=name, elem=elem, site=site)

    # -- memory: raw access ------------------------------------------------------------

    def read_mem(self, addr: int, size: int, *, line: Optional[int] = None,
                 atomic: bool = False, site=None) -> None:
        if line is not None:
            self.line(line)
        tctx = self._tctx()
        self.machine.instrumentation.access(
            addr, size, False, thread=self.machine.scheduler.current(),
            symbol=tctx.symbol, loc=tctx.location, atomic=atomic, site=site)

    def write_mem(self, addr: int, size: int, *, line: Optional[int] = None,
                  atomic: bool = False, site=None) -> None:
        if line is not None:
            self.line(line)
        tctx = self._tctx()
        self.machine.instrumentation.access(
            addr, size, True, thread=self.machine.scheduler.current(),
            symbol=tctx.symbol, loc=tctx.location, atomic=atomic, site=site)

    # -- misc -------------------------------------------------------------------------

    def compute(self, flops: float) -> None:
        """Charge pure-compute simulated time (workload arithmetic)."""
        self.machine.cost.charge_compute(self.machine.scheduler.current(), flops)

    def client_request(self, name: str, payload=None):
        return self.machine.client_requests.request(name, payload)
