"""Flat simulated 64-bit address space with named regions.

The address space only tracks *mappings* and *scalar values*; bulk data (the
LULESH field arrays) lives in numpy arrays owned by the workloads, with the
corresponding byte ranges merely registered here.  Race analysis needs the
(address, size, kind) stream, not the payloads — the same observation that
lets the paper's interval trees compact dense accesses lets us avoid storing
them at all.

Region layout (chosen to echo a classic Linux x86-64 process):

===============  ==================  =========================================
region           base                contents
===============  ==================  =========================================
code             ``0x0000_0040_0000``  one synthetic "instruction" slot per symbol
globals          ``0x0000_0060_0000``  global/static variables
heap             ``0x0000_1000_0000``  allocator arena (grows upward)
tls              ``0x7e00_0000_0000``  per-thread static TLS blocks + DTV entries
stacks           ``0x7f00_0000_0000``  per-thread stacks (grow downward)
===============  ==================  =========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SegmentationFault
from repro.util.intervals import IntervalSet

CODE_BASE = 0x0000_0040_0000
GLOBALS_BASE = 0x0000_0060_0000
HEAP_BASE = 0x0000_1000_0000
TLS_BASE = 0x7E00_0000_0000
STACKS_BASE = 0x7F00_0000_0000

DEFAULT_HEAP_SIZE = 1 << 34          # 16 GiB of simulated arena
DEFAULT_STACK_SIZE = 1 << 21         # 2 MiB per simulated thread
DEFAULT_TLS_BLOCK_SIZE = 1 << 16     # 64 KiB static TLS per thread


class RegionKind(enum.Enum):
    """What a mapped region holds; analyses branch on this."""

    CODE = "code"
    GLOBALS = "globals"
    HEAP = "heap"
    STACK = "stack"
    TLS = "tls"


@dataclass
class Region:
    """A contiguous mapped region of the simulated address space."""

    name: str
    base: int
    size: int
    kind: RegionKind
    owner_thread: Optional[int] = None   # stacks / TLS blocks are per-thread
    meta: dict = field(default_factory=dict)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Region({self.name!r}, [{self.base:#x}, {self.end:#x}), "
                f"{self.kind.value})")


class AddressSpace:
    """Mapped-region bookkeeping plus a scalar value store.

    ``load``/``store`` keep actual Python values for *scalar* guest variables
    (so microbenchmarks can branch on data); bulk ranges are mapped but
    valueless.  Access *events* are not emitted here — that is the job of
    :class:`repro.vex.instrument.Instrumentation`, which every
    :class:`~repro.machine.program.GuestContext` access goes through first.
    """

    def __init__(self) -> None:
        self._regions: List[Region] = []          # sorted by base
        self._mapped = IntervalSet()
        self._values: Dict[int, Tuple[int, object]] = {}   # addr -> (size, value)

    # -- mapping ------------------------------------------------------------

    def map_region(self, region: Region) -> Region:
        """Register a region; overlap with an existing mapping is a bug."""
        if self._mapped.overlaps_range(region.base, region.end):
            raise ValueError(f"mapping overlap: {region!r}")
        self._mapped.add(region.base, region.end)
        # insert sorted by base
        lo, hi = 0, len(self._regions)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._regions[mid].base < region.base:
                lo = mid + 1
            else:
                hi = mid
        self._regions.insert(lo, region)
        return region

    def unmap_region(self, region: Region) -> None:
        self._regions.remove(region)
        self._mapped.remove(region.base, region.end)
        for addr in [a for a in self._values if region.contains(a)]:
            del self._values[addr]

    def region_at(self, addr: int) -> Optional[Region]:
        """The region containing ``addr``, or ``None``."""
        lo, hi = 0, len(self._regions)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._regions[mid].base <= addr:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        r = self._regions[lo - 1]
        return r if r.contains(addr) else None

    def check_mapped(self, addr: int, size: int, kind: str) -> Region:
        """Raise :class:`SegmentationFault` unless ``[addr, addr+size)`` is mapped."""
        r = self.region_at(addr)
        if r is None or not r.contains(addr, size):
            raise SegmentationFault(addr, size, kind)
        return r

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    # -- scalar value store ---------------------------------------------------

    def store(self, addr: int, size: int, value: object) -> None:
        """Store a scalar ``value`` at ``addr`` (mapping must exist)."""
        self.check_mapped(addr, size, "write")
        self._values[addr] = (size, value)

    def load(self, addr: int, size: int, default: object = 0) -> object:
        """Load the scalar previously stored at ``addr`` (0 if never written)."""
        self.check_mapped(addr, size, "read")
        entry = self._values.get(addr)
        return entry[1] if entry is not None else default

    def clear_range(self, lo: int, hi: int) -> None:
        """Drop stored scalars in ``[lo, hi)`` (used on frame pop / free)."""
        for addr in [a for a in self._values if lo <= a < hi]:
            del self._values[addr]

    # -- introspection ----------------------------------------------------------

    def describe(self, addr: int) -> str:
        """A human-readable description of what ``addr`` points into."""
        r = self.region_at(addr)
        if r is None:
            return f"{addr:#x} (unmapped)"
        off = addr - r.base
        who = f" of thread {r.owner_thread}" if r.owner_thread is not None else ""
        return f"{addr:#x} ({r.kind.value} '{r.name}'{who} +{off:#x})"
