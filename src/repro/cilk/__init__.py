"""Simulated Cilk runtime (spawn/sync over work-stealing deques).

The paper lists OpenCilk support as work-in-progress (Section III-A-b): the
Cheetah runtime's approach differs enough from OpenMP that the integration
is hard.  This package provides the simulated equivalent: a spawn/sync
tasking runtime with per-worker deques, an observer interface mirroring what
a Cilk tool shim needs (spawn/frame-begin/frame-end/sync), and the paper's
modeling assumption that *"Cilk programs can be assumed to have a single
parallel region containing all tasks"*.

Substitution note (DESIGN.md): real Cilk is work-first (the spawned child
runs immediately, the *continuation* is stealable).  Python cannot migrate a
running function's continuation across threads, so deferred-child (help-
first) scheduling is used instead — it produces the same series-parallel DAG,
which is all the determinacy-race analyses consume.  A ``serial_elision``
mode executes children inline depth-first, giving exactly the serial C
elision order that SP-bags (Nondeterminator) requires.
"""

from repro.cilk.runtime import CilkEnv, CilkFrame, CilkObserver, make_cilk_env

__all__ = ["CilkEnv", "CilkFrame", "CilkObserver", "make_cilk_env"]
