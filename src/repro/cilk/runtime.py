"""Cilk-style spawn/sync runtime over the simulated machine.

API shape (mirrors ``cilk_spawn`` / ``cilk_sync``)::

    env = make_cilk_env(machine, nworkers=4)

    def fib(frame, n):
        if n < 2:
            return n
        a = env.spawn(frame, fib, n - 1)
        b = fib(env.frame(frame), n - 2)    # the "called" branch
        env.sync(frame)
        return a.result + b

    result = env.run(fib, 10)

``spawn`` returns a :class:`SpawnHandle` whose ``.result`` is valid after the
enclosing ``sync``.  Tool shims subscribe a :class:`CilkObserver`.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import RuntimeModelError
from repro.machine.machine import Machine
from repro.machine.program import GuestContext
from repro.machine.threads import ThreadState


class CilkObserver:
    """Tool callbacks for the Cilk runtime (what a Cheetah shim would hook)."""

    def on_spawn(self, parent: "CilkFrame", child: "CilkFrame",
                 thread_id: int) -> None: ...
    def on_frame_begin(self, frame: "CilkFrame", thread_id: int) -> None: ...
    def on_frame_end(self, frame: "CilkFrame", thread_id: int) -> None: ...
    def on_sync_begin(self, frame: "CilkFrame", thread_id: int) -> None: ...
    def on_sync_end(self, frame: "CilkFrame", thread_id: int) -> None: ...


@dataclass
class CilkFrame:
    """One spawned (or root) Cilk procedure instance."""

    fid: int
    fn: Optional[Callable]
    args: tuple
    parent: Optional["CilkFrame"]
    name: str = ""
    outstanding: int = 0                 # spawned children not yet returned
    result: object = None
    done: bool = False
    exec_thread: int = -1
    create_loc: object = None

    def label(self) -> str:
        loc = f" @ {self.create_loc}" if self.create_loc else ""
        return f"{self.name}{loc}"

    def __hash__(self) -> int:
        return self.fid


class SpawnHandle:
    """What ``spawn`` returns; ``.result`` is valid after the sync."""

    def __init__(self, frame: CilkFrame) -> None:
        self.frame = frame

    @property
    def result(self) -> object:
        if not self.frame.done:
            raise RuntimeModelError(
                "spawn result read before the enclosing sync")
        return self.frame.result


class CilkEnv:
    """The Cilk runtime instance bound to one guest run."""

    #: rng streams the work-stealing path consumes — see
    #: :attr:`repro.openmp.runtime.OmpRuntime.SCHED_STREAMS`
    SCHED_STREAMS = ("cilk.steal",)

    def __init__(self, ctx: GuestContext, *, nworkers: int = 4,
                 serial_elision: bool = False) -> None:
        self.ctx = ctx
        self.machine = ctx.machine
        self.nworkers = 1 if serial_elision else nworkers
        self.serial_elision = serial_elision
        self.observers: List[CilkObserver] = []
        self._deques: Dict[int, collections.deque] = {}
        self._frame_stack: Dict[int, List[CilkFrame]] = {}
        self._next_fid = 0
        self._shutdown = False
        self._live_frames = 0

    def register(self, observer: CilkObserver) -> None:
        self.observers.append(observer)

    def _emit(self, method: str, *args) -> None:
        for obs in self.observers:
            getattr(obs, method)(*args)

    # -- identity -------------------------------------------------------------

    def _tid(self) -> int:
        return self.machine.scheduler.current_id()

    def current_frame(self) -> CilkFrame:
        stack = self._frame_stack.get(self._tid())
        if not stack:
            raise RuntimeModelError("no active Cilk frame on this thread")
        return stack[-1]

    def frame(self, frame: CilkFrame) -> CilkFrame:
        """Identity helper so call sites read like `fib(env.frame(f), ...)`."""
        return frame

    # -- the program entry -------------------------------------------------------

    def run(self, fn: Callable, *args) -> object:
        """Run ``fn(root_frame, *args)`` with the worker pool active."""
        root = self._new_frame(fn, args, parent=None, name="cilk_main")
        self._live_frames += 1
        workers = []
        for w in range(1, self.nworkers):
            workers.append(self.machine.new_thread(
                self._worker_loop, name=f"cilk.w{w}"))
        try:
            result = self._execute(root)
        finally:
            self._shutdown = True
        self.machine.scheduler.block_until(
            lambda: all(t.state == ThreadState.DONE for t in workers),
            "cilk pool shutdown")
        return result

    def _worker_loop(self) -> None:
        while not self._shutdown:
            frame = self._find_work()
            if frame is not None:
                self._execute(frame)
            else:
                self.machine.scheduler.block_until(
                    lambda: self._shutdown or self._work_visible(),
                    "cilk steal")

    # -- spawn / sync -----------------------------------------------------------------

    def _new_frame(self, fn, args, parent, name="") -> CilkFrame:
        frame = CilkFrame(fid=self._next_fid, fn=fn, args=tuple(args),
                          parent=parent,
                          name=name or f"spawn{self._next_fid}",
                          create_loc=self.ctx.current_location
                          if self._frame_stack.get(self._tid()) else None)
        self._next_fid += 1
        return frame

    def spawn(self, parent: CilkFrame, fn: Callable, *args) -> SpawnHandle:
        """``cilk_spawn fn(args)`` from ``parent``."""
        self.machine.cost.charge_task(self.machine.scheduler.current())
        child = self._new_frame(fn, args, parent)
        parent.outstanding += 1
        self._live_frames += 1
        self._emit("on_spawn", parent, child, self._tid())
        if self.serial_elision:
            # the serial C elision: the child runs to completion inline
            self._execute(child)
        else:
            self._deques.setdefault(self._tid(),
                                    collections.deque()).append(child)
            self.machine.scheduler.yield_point()
        return SpawnHandle(child)

    def sync(self, frame: CilkFrame) -> None:
        """``cilk_sync``: wait for every child spawned by ``frame``."""
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        self._emit("on_sync_begin", frame, self._tid())
        while frame.outstanding > 0:
            work = self._find_work()
            if work is not None:
                self._execute(work)
            else:
                self.machine.scheduler.block_until(
                    lambda: frame.outstanding == 0 or self._work_visible(),
                    f"cilk sync in {frame.label}")
        self._emit("on_sync_end", frame, self._tid())

    # -- scheduling ------------------------------------------------------------------------

    def _work_visible(self) -> bool:
        return any(self._deques.values())

    def _find_work(self) -> Optional[CilkFrame]:
        tid = self._tid()
        own = self._deques.get(tid)
        if own:
            return own.pop()                      # own deque: LIFO
        victims = [t for t, dq in self._deques.items() if dq]
        if victims:
            order = list(victims)
            self.machine.rng.shuffle("cilk.steal", order)
            for victim in order:
                dq = self._deques[victim]
                if dq:
                    return dq.popleft()           # steal: FIFO
        return None

    def _execute(self, frame: CilkFrame) -> object:
        tid = self._tid()
        self.machine.cost.charge_schedule(self.machine.scheduler.current())
        frame.exec_thread = tid
        self._frame_stack.setdefault(tid, []).append(frame)
        self._emit("on_frame_begin", frame, tid)
        with self.ctx.function(frame.name, line=0):
            frame.result = frame.fn(frame, *frame.args)
            if frame.outstanding > 0:
                # Cilk's implicit sync at every procedure's end
                self.sync(frame)
        self._emit("on_frame_end", frame, tid)
        self._frame_stack[tid].pop()
        frame.done = True
        self._live_frames -= 1
        if frame.parent is not None:
            frame.parent.outstanding -= 1
        if not self.serial_elision:
            self.machine.scheduler.yield_point()
        return frame.result


def make_cilk_env(machine: Machine, *, nworkers: int = 4,
                  serial_elision: bool = False,
                  source_file: str = "main.cilk") -> CilkEnv:
    """Build the GuestContext + CilkEnv pair for one run."""
    ctx = GuestContext(machine, source_file=source_file, nthreads=nworkers)
    env = CilkEnv(ctx, nworkers=nworkers, serial_elision=serial_elision)
    ctx.extensions["cilk"] = env
    return env
