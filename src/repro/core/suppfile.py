"""Valgrind-style suppression files for Taskgrind reports.

Valgrind tools ship with (and let users write) suppression files that mute
known-benign reports; Taskgrind inherits the facility.  The format here is
the Valgrind one, restricted to the fields a determinacy-race report has::

    {
       lulesh-scratch-reuse            # suppression name (free text)
       Taskgrind:Race                  # tool:kind selector
       seg:lulesh.cc:*                 # both segment labels must match one
       seg:lulesh.cc:*                 #   seg: pattern each (fnmatch)
       alloc:lulesh.cc:171             # optional allocation-site pattern
    }

* ``seg:`` lines match against the two segment labels (the task pragma
  locations); a report is muted only if *both* labels match (in either
  order) the one-or-two ``seg:`` patterns given.
* ``alloc:`` (optional) matches the allocation site of the conflicting
  block.
* ``obj:``/``fun:`` lines match any frame of the allocation stack —
  function names, fnmatch-style.

Load with :func:`parse_suppressions`, apply with
:class:`SuppressionFile.filter`, or pass a path via
``TaskgrindOptions.suppression_file``.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.reports import RaceReport
from repro.errors import ToolError


@dataclass
class Suppression:
    """One parsed suppression entry."""

    name: str
    selector: str = "Taskgrind:Race"
    seg_patterns: Tuple[str, ...] = ()
    alloc_pattern: Optional[str] = None
    fun_patterns: Tuple[str, ...] = ()
    hits: int = 0

    def matches(self, report: RaceReport) -> bool:
        labels = (report.s1.label(), report.s2.label())
        if self.seg_patterns:
            if len(self.seg_patterns) == 1:
                pat = self.seg_patterns[0]
                if not (fnmatch.fnmatchcase(labels[0], pat)
                        and fnmatch.fnmatchcase(labels[1], pat)):
                    return False
            else:
                a, b = self.seg_patterns[0], self.seg_patterns[1]
                fwd = fnmatch.fnmatchcase(labels[0], a) and \
                    fnmatch.fnmatchcase(labels[1], b)
                rev = fnmatch.fnmatchcase(labels[0], b) and \
                    fnmatch.fnmatchcase(labels[1], a)
                if not (fwd or rev):
                    return False
        if self.alloc_pattern is not None:
            site = str(report.alloc_site) if report.alloc_site else ""
            if not fnmatch.fnmatchcase(site, self.alloc_pattern):
                return False
        if self.fun_patterns:
            frames = [loc.function for loc in report.alloc_stack]
            for pat in self.fun_patterns:
                if not any(fnmatch.fnmatchcase(fr, pat) for fr in frames):
                    return False
        return True


class SuppressionFile:
    """A parsed collection of suppressions."""

    def __init__(self, entries: Sequence[Suppression]) -> None:
        self.entries = list(entries)

    def filter(self, reports: List[RaceReport]
               ) -> Tuple[List[RaceReport], int]:
        """Return (surviving reports, number suppressed)."""
        kept: List[RaceReport] = []
        muted = 0
        for report in reports:
            entry = self.match(report)
            if entry is None:
                kept.append(report)
            else:
                entry.hits += 1
                muted += 1
        return kept, muted

    def match(self, report: RaceReport) -> Optional[Suppression]:
        for entry in self.entries:
            if entry.matches(report):
                return entry
        return None

    def used_entries(self) -> List[Suppression]:
        return [e for e in self.entries if e.hits]


def parse_suppressions(text: str) -> SuppressionFile:
    """Parse the Valgrind-style format described in the module docstring."""
    entries: List[Suppression] = []
    lines = [ln.split("#", 1)[0].strip() for ln in text.splitlines()]
    i = 0
    while i < len(lines):
        if not lines[i]:
            i += 1
            continue
        if lines[i] != "{":
            raise ToolError(f"suppression parse error at line {i + 1}: "
                            f"expected '{{', got {lines[i]!r}")
        i += 1
        body: List[str] = []
        while i < len(lines) and lines[i] != "}":
            if lines[i]:
                body.append(lines[i])
            i += 1
        if i == len(lines):
            raise ToolError("suppression parse error: unterminated entry")
        i += 1                                # consume '}'
        if not body:
            raise ToolError("suppression parse error: empty entry")
        name = body[0]
        selector = "Taskgrind:Race"
        segs: List[str] = []
        alloc: Optional[str] = None
        funs: List[str] = []
        for line in body[1:]:
            if line.startswith("seg:"):
                segs.append(line[len("seg:"):])
            elif line.startswith("alloc:"):
                alloc = line[len("alloc:"):]
            elif line.startswith(("fun:", "obj:")):
                funs.append(line.split(":", 1)[1])
            elif ":" in line and not line.startswith(("seg", "alloc")):
                selector = line
            else:
                raise ToolError(
                    f"suppression parse error: unknown line {line!r}")
        if len(segs) > 2:
            raise ToolError("suppression parse error: at most two seg: "
                            "patterns per entry")
        entries.append(Suppression(name=name, selector=selector,
                                   seg_patterns=tuple(segs),
                                   alloc_pattern=alloc,
                                   fun_patterns=tuple(funs)))
    return SuppressionFile(entries)


def load_suppressions(path: str) -> SuppressionFile:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_suppressions(fh.read())
