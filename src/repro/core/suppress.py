"""False-positive suppression (paper Section IV).

Four mechanisms, individually toggleable so the S4 ablation bench can
quantify each one's contribution:

1. **Symbol filtering** (IV-A) — the *ignore-list* drops accesses occurring
   in matching symbols (default: ``__kmp*`` and friends, the parallel
   runtime's own non-determinism); the *instrument-list*, when non-empty,
   keeps only matching symbols.  Applied at recording time by the tool.
2. **Memory recycling** (IV-B) — defeated structurally by replacing ``free``
   with a no-op (see :class:`repro.core.tool.TaskgrindTool.attach`), so
   nothing to do at analysis time; the flag here merely controls whether the
   replacement is installed.  The runtime's private ``__kmp_fast_allocate``
   arena is *not* covered — the paper's future-work limitation.
3. **Thread-local accesses** (IV-C) — a conflict inside a TLS block is
   suppressed when both segments ran on the same thread with the same
   TCB/DTV snapshot.  A DTV block allocated *and* freed within a segment is
   absent from the end-of-segment snapshot, so such conflicts survive — the
   paper's stated limitation, and the ``tls_gen_warnings`` counter implements
   the "could warn via the generation number" remark.
4. **Segment-local (stack) accesses** (IV-D) — a conflict on a stack address
   is suppressed when, for *both* segments, the address lies below the stack
   pointer registered at segment start (i.e. in a frame pushed during the
   segment itself).  A conflict in the *parent's* frame is not suppressed —
   the residual multi-thread TMB false positives the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.analysis import RaceCandidate
from repro.core.segments import Segment
from repro.machine.memory import RegionKind
from repro.obs.metrics import get_registry
from repro.obs.prof import get_profiler
from repro.obs.tracer import get_tracer
from repro.util.intervals import Interval, IntervalSet

_TRACER = get_tracer()
_PROF = get_profiler()

#: Default ignore-list: LLVM OpenMP runtime internals, the dynamic loader,
#: and libc allocator internals (the paper names ``__kmp`` explicitly).
DEFAULT_IGNORE_LIST: Tuple[str, ...] = (
    "__kmp", "__kmpc", "_dl_", "__libc_", "__vg_",
)


@dataclass
class SuppressionConfig:
    """Which Section IV suppressions are active."""

    ignore_list: Tuple[str, ...] = DEFAULT_IGNORE_LIST
    instrument_list: Tuple[str, ...] = ()
    suppress_recycling: bool = True        # install the free-as-noop wrapper
    suppress_tls: bool = True
    suppress_stack: bool = True
    suppress_sequenced_same_thread: bool = True  # kept True; listed for ablation


@dataclass
class SuppressionStats:
    """How many conflict byte-ranges each mechanism removed."""

    tls_suppressed: int = 0
    stack_suppressed: int = 0
    survived: int = 0
    fully_suppressed_pairs: int = 0
    tls_gen_warnings: int = 0


class SuppressionEngine:
    """Applies the analysis-time suppressions (TLS + stack) to candidates."""

    def __init__(self, machine, config: Optional[SuppressionConfig] = None
                 ) -> None:
        self.machine = machine
        self.config = config or SuppressionConfig()
        self.stats = SuppressionStats()

    # -- recording-time filter (used by the tool's on_access) ----------------

    def symbol_filtered(self, symbol_name: str) -> bool:
        """True when accesses in ``symbol_name`` must be dropped."""
        from repro.machine.debuginfo import DebugInfo
        cfg = self.config
        if cfg.instrument_list and not DebugInfo.matches_any(
                symbol_name, cfg.instrument_list):
            return True
        return DebugInfo.matches_any(symbol_name, cfg.ignore_list)

    # -- ahead-of-time elision gate (see repro.vex.elide) ---------------------

    def site_elidable(self, klass: str) -> bool:
        """Would this engine suppress every conflict of a provably private
        site of lattice class ``klass``?

        The per-site decision the compile-time pre-pass takes *instead of*
        the per-access ``filter_candidate`` path below — gated on the same
        per-class toggles, so elision is always a subset of what the
        runtime filters would have removed.
        """
        from repro.vex.elide import ElisionPlan
        return ElisionPlan(self.config).site_elidable(klass)

    # -- analysis-time filters -------------------------------------------------

    def filter_candidate(self, cand: RaceCandidate) -> Optional[RaceCandidate]:
        """Return the candidate with suppressed byte-ranges removed.

        ``None`` when every conflicting byte was suppressed.
        """
        surviving = IntervalSet()
        for piece in cand.ranges:
            if self._piece_suppressed(piece, cand.s1, cand.s2):
                continue
            surviving.add(piece.lo, piece.hi)
        if not surviving:
            self.stats.fully_suppressed_pairs += 1
            if _PROF.enabled:
                _PROF.count("suppress.pair-dropped", cand.s1.label())
            return None
        self.stats.survived += 1
        if _PROF.enabled:
            _PROF.count("suppress.survived", cand.s1.label())
        return RaceCandidate(cand.s1, cand.s2, surviving)

    def _piece_suppressed(self, piece: Interval, s1: Segment,
                          s2: Segment) -> bool:
        region = self.machine.space.region_at(piece.lo)
        if region is None:
            return False
        if region.kind == RegionKind.STACK and self.config.suppress_stack:
            if self._stack_local(piece, s1, region) and \
                    self._stack_local(piece, s2, region):
                self.stats.stack_suppressed += 1
                if _PROF.enabled:
                    _PROF.count("suppress.stack", s1.label())
                if _TRACER.enabled:
                    _TRACER.instant("suppress.stack", cat="suppress",
                                    args={"lo": piece.lo, "hi": piece.hi,
                                          "s1": s1.id, "s2": s2.id})
                return True
        if region.kind == RegionKind.TLS and self.config.suppress_tls:
            if self._tls_suppressed(piece, s1, s2):
                self.stats.tls_suppressed += 1
                if _PROF.enabled:
                    _PROF.count("suppress.tls", s1.label())
                if _TRACER.enabled:
                    _TRACER.instant("suppress.tls", cat="suppress",
                                    args={"lo": piece.lo, "hi": piece.hi,
                                          "s1": s1.id, "s2": s2.id})
                return True
        return False

    @staticmethod
    def _stack_local(piece: Interval, seg: Segment, region) -> bool:
        """Did ``seg`` only reach ``piece`` through frames it pushed itself?

        Stacks grow downward: an address *below* the stack pointer registered
        at segment start belongs to a frame created inside the segment.  The
        segment must also have executed on the thread owning the stack —
        otherwise it reached the bytes through a shared pointer and the
        conflict is real (TMB 1001-stack.1).
        """
        if region.owner_thread != seg.thread_id:
            return False
        lo, hi = seg.stack_bounds
        if not (lo <= piece.lo and piece.hi <= hi):
            return False
        return piece.hi <= seg.sp_at_start

    def _tls_suppressed(self, piece: Interval, s1: Segment,
                        s2: Segment) -> bool:
        """Same thread + same DTV ⇒ the 'conflict' is one thread's own TLS."""
        if s1.thread_id != s2.thread_id:
            return False
        snap1, snap2 = s1.tls_snapshot, s2.tls_snapshot
        if snap1 is None or snap2 is None:
            return False
        if snap1.generation != snap2.generation:
            # DTV churn between the segments: the paper's gen-number warning
            self.stats.tls_gen_warnings += 1
        covered = snap1.covers(piece.lo, piece.size) and \
            snap2.covers(piece.lo, piece.size)
        if not covered:
            # e.g. a dynamic block allocated+freed inside the segment never
            # made it into the snapshot: conflict survives (paper limitation)
            return False
        return snap1.dtv == snap2.dtv and snap1.tcb == snap2.tcb

    # -- batch API ------------------------------------------------------------------

    def filter_all(self, candidates: List[RaceCandidate]
                   ) -> List[RaceCandidate]:
        reg = get_registry()
        s = self.stats
        tls0, stack0 = s.tls_suppressed, s.stack_suppressed
        surv0, full0 = s.survived, s.fully_suppressed_pairs
        out = []
        with reg.phase("suppress"):
            for cand in candidates:
                kept = self.filter_candidate(cand)
                if kept is not None:
                    out.append(kept)
        reg.counter("suppress.drop.tls").inc(s.tls_suppressed - tls0)
        reg.counter("suppress.drop.stack").inc(s.stack_suppressed - stack0)
        reg.counter("suppress.survived").inc(s.survived - surv0)
        reg.counter("suppress.fully_suppressed_pairs").inc(
            s.fully_suppressed_pairs - full0)
        return out

    def stats_doc(self) -> dict:
        """Analysis-time drop counts per mechanism (Section IV classes)."""
        s = self.stats
        return {
            "tls": s.tls_suppressed,
            "stack": s.stack_suppressed,
            "survived": s.survived,
            "fully_suppressed_pairs": s.fully_suppressed_pairs,
            "tls_gen_warnings": s.tls_gen_warnings,
        }
