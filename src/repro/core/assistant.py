"""Fix suggestions: toward the paper's "parallel programming assistant".

The paper closes (Section VII) with the goal of moving Taskgrind "toward a
more general 'trial and error' parallel programming assistant", and its
related-work section credits the OmpSs-2 toolchain with "synchronizations
mechanism suggestions", explicitly leaving model-specific suggestions as
future work.  This module implements that step for the OpenMP model: each
race report is classified by the *relationship between the two segments*
and mapped to the synchronisation that would order them:

==============================  =============================================
relationship                    suggestion
==============================  =============================================
sibling explicit tasks          matching ``depend`` clauses on the
                                conflicting storage (out for writers, in for
                                readers)
task vs. its creating task's    ``taskwait`` (or a ``depend`` + dependent
continuation                    continuation task) before the later access
tasks in different parents      hoist the dependence to common ancestors, or
(non-sibling)                   a ``taskgroup`` around the outer tasks
implicit tasks (worksharing)    a ``barrier`` between the conflicting phases
anything on one thread's stack  privatize the variable (``firstprivate``)
==============================  =============================================

Suggestions are heuristics for a human, rendered after the standard report;
they never change verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.reports import RaceReport
from repro.core.segments import Segment


@dataclass
class Suggestion:
    """One suggested fix."""

    action: str            # short imperative, e.g. "add depend clauses"
    detail: str            # full sentence with locations
    confidence: str        # 'high' | 'medium' | 'low'

    def __str__(self) -> str:
        return f"[{self.confidence}] {self.action}: {self.detail}"


def _task_of(seg: Segment):
    return seg.task


def _is_explicit_task(seg: Segment) -> bool:
    task = _task_of(seg)
    return task is not None and getattr(task, "fn", None) is not None and \
        seg.kind == "task"


def _is_implicit(seg: Segment) -> bool:
    return seg.kind == "implicit"


def _parent_of(seg: Segment):
    task = _task_of(seg)
    return getattr(task, "parent", None)


def _are_siblings(a: Segment, b: Segment) -> bool:
    pa, pb = _parent_of(a), _parent_of(b)
    return pa is not None and pa is pb


def _is_ancestor(ancestor, task) -> bool:
    node = getattr(task, "parent", None)
    while node is not None:
        if node is ancestor:
            return True
        node = getattr(node, "parent", None)
    return False


def _conflict_desc(report: RaceReport) -> str:
    span = report.ranges.span
    what = f"{report.ranges.total_bytes} byte(s) at {span.lo:#x}"
    if report.alloc_site is not None:
        what += f" (block from {report.alloc_site})"
    return what


def suggest(report: RaceReport) -> List[Suggestion]:
    """Fix suggestions for one race report, most applicable first."""
    s1, s2 = report.s1, report.s2
    out: List[Suggestion] = []
    where = _conflict_desc(report)
    l1, l2 = s1.label(), s2.label()

    both_tasks = _is_explicit_task(s1) and _is_explicit_task(s2)
    if both_tasks and _are_siblings(s1, s2):
        out.append(Suggestion(
            action="add depend clauses",
            detail=f"tasks {l1} and {l2} are siblings: declare "
                   f"depend(out/inout) on {where} on the writer and "
                   f"depend(in) on the reader so the runtime orders them",
            confidence="high"))
        out.append(Suggestion(
            action="or serialize via taskwait",
            detail=f"insert '#pragma omp taskwait' between the creation of "
                   f"{l1} and {l2} if the order is always required",
            confidence="medium"))
        return out

    t1, t2 = _task_of(s1), _task_of(s2)
    if both_tasks and (
            _is_ancestor(t1, t2) or _is_ancestor(t2, t1)):
        inner = l2 if _is_ancestor(t1, t2) else l1
        outer = l1 if _is_ancestor(t1, t2) else l2
        out.append(Suggestion(
            action="wait for descendants",
            detail=f"{inner} is a descendant of {outer}: use "
                   f"'#pragma omp taskgroup' (taskwait only covers direct "
                   f"children) around the creating region",
            confidence="high"))
        return out

    if both_tasks:       # tasks under different parents: the DRB173 shape
        out.append(Suggestion(
            action="hoist the dependence",
            detail=f"tasks {l1} and {l2} have different parents — depend "
                   f"clauses only bind siblings.  Declare the dependence on "
                   f"their common ancestors' tasks, or enclose the outer "
                   f"tasks in a taskgroup",
            confidence="high"))
        return out

    one_task = _is_explicit_task(s1) or _is_explicit_task(s2)
    if one_task:
        task_lab = l1 if _is_explicit_task(s1) else l2
        other_lab = l2 if _is_explicit_task(s1) else l1
        out.append(Suggestion(
            action="add taskwait",
            detail=f"the code at {other_lab} runs concurrently with task "
                   f"{task_lab}: insert '#pragma omp taskwait' before the "
                   f"access to {where}",
            confidence="high"))
        return out

    if _is_implicit(s1) and _is_implicit(s2):
        out.append(Suggestion(
            action="add a barrier",
            detail=f"the team members at {l1} and {l2} conflict on {where}: "
                   f"separate the phases with '#pragma omp barrier' (or drop "
                   f"a 'nowait')",
            confidence="high"))
        if "stack" in report.region_desc or "tls" in report.region_desc:
            out.append(Suggestion(
                action="privatize",
                detail="the conflicting storage is thread-adjacent: consider "
                       "private/firstprivate instead of sharing it",
                confidence="medium"))
        return out

    out.append(Suggestion(
        action="review the synchronisation",
        detail=f"segments {l1} and {l2} conflict on {where}; no structural "
               f"pattern recognised — check the intended ordering",
        confidence="low"))
    return out


def render_suggestions(report: RaceReport) -> str:
    """The suggestion block appended under a formatted report."""
    lines = ["suggested fixes:"]
    for s in suggest(report):
        lines.append(f"    {s}")
    return "\n".join(lines)
