"""Segment graph: nodes, happens-before edges, and construction from events.

A *segment* is a maximal sequence of instructions of one task executed
between two task scheduling points (Section II-A).  The builder consumes the
OMPT-style runtime events and maintains, per simulated thread, a stack of
``(task, current segment)`` entries: nested inline task execution pushes,
completion pops, and every scheduling point closes the entry's segment and
opens a successor with the happens-before edges the synchronisation implies:

===========================  ===================================================
event                        edges created
===========================  ===================================================
task create                  split creator segment (A1 -> A2); child's first
                             segment gets A1 -> child
task begin                   creation-segment edge + one edge per completed
                             dependence predecessor's final segment
taskwait end                 prior segment -> new, each direct child's final
                             -> new
taskgroup end                prior -> new, each member task's final -> new
barrier                      every member's pre-segment -> join node; join ->
                             every post-segment; every explicit task final of
                             the region so far -> join
parallel begin/end           fork segment -> each implicit first segment;
                             each implicit final -> continuation (Eq. (1)
                             region ordering follows transitively)
undeferred (`if(0)`) task    additionally child final -> creator continuation
                             (the task is sequenced) when the model honours it
detach fulfill               body final + fulfilling segment -> completion node
===========================  ===================================================

Which of these a tool applies is controlled by :class:`SegmentModelConfig` —
the knob that models the capability differences between Taskgrind,
TaskSanitizer and ROMP in Table I (e.g. TaskSanitizer does not support
``inoutset`` or ``detach``; Taskgrind does not order mutexes).

Flag fidelity: the LLVM runtime reports tasks it *serialized* (single-thread
team) with the same ``undeferred`` OMPT flag as genuine ``if(0)`` tasks
(llvm-project issue #89398, discussed in the paper).  The builder therefore
sees ``INCLUDED`` tasks as sequenced unless the user *annotated* the task as
semantically deferrable (the paper's LULESH annotation, forwarded to
Taskgrind by client request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.hbindex import HbIndex
from repro.machine.debuginfo import SourceLocation
from repro.obs.metrics import get_registry
from repro.obs.prof import get_profiler
from repro.obs.tracer import get_tracer
from repro.machine.tls import TlsSnapshot
from repro.openmp.ompt import DepKind, Dependence, TaskFlags
from repro.openmp.tasks import Task
from repro.util.intervals import IntervalSet
from repro.util.itree import IntervalTree, coalesce_sorted_pairs

MAX_LOC_SAMPLES = 64

#: Direct-mapped write-combining cache geometry: addresses map to one of
#: ``_WC_SLOTS`` slots by 64-byte line, mirroring how a DBI tool would keep a
#: tiny per-thread cache of recently-touched cells in front of the real
#: access structure.
_WC_SLOTS = 16
_WC_MASK = _WC_SLOTS - 1
_WC_SHIFT = 6

#: Adaptive activation threshold: a segment's pending buffer starts as a bare
#: append list and only spins up the direct-mapped cell cache once this many
#: accesses have arrived.  Workloads with thousands of tiny segments (deep
#: task recursion à la fib: ~1.6 accesses per segment) never pay the
#: ``[None] * _WC_SLOTS`` allocation + cell probing that a dense sweep
#: amortizes over thousands of hits.
_WC_ACTIVATE = 8

#: prebound recorder counters — incremented only at drain/flush time (cold),
#: never per access, so the write-combining hot loop stays registry-free
_REG = get_registry()
_TRACER = get_tracer()
_PROF = get_profiler()
_WC_HITS = _REG.counter("record.wc_hits")
_WC_SPILLS = _REG.counter("record.wc_spills")
_WC_TINY_DRAINS = _REG.counter("record.wc_tiny_drains")
_WC_FLUSHES = _REG.counter("record.wc_flushes")
_WC_ACCESSES = _REG.counter("record.wc_accesses")
_FLUSH_BULK_BUILD = _REG.counter("record.flush_bulk_build")
_FLUSH_BULK_MERGE = _REG.counter("record.flush_bulk_merge")
_FLUSH_INSERTS = _REG.counter("record.flush_inserts")
_FLUSH_BATCH = _REG.histogram("record.flush_batch_ranges")


@dataclass
class SegmentModelConfig:
    """Which synchronisation semantics a tool's segment model understands."""

    honor_dependencies: bool = True
    honor_inoutset: bool = True           # TaskSanitizer: False
    honor_mutexinoutset: bool = True
    honor_detach: bool = True             # TaskSanitizer: False
    honor_taskwait: bool = True
    honor_taskgroup: bool = True
    honor_undeferred: bool = True         # sequence if(0)/serialized tasks
    honor_mergeable: bool = False         # nobody models merged tasks (DRB129)
    #: treat tasks the user annotated as deferrable as truly deferred even if
    #: the runtime serialized them (Taskgrind's client-request annotation)
    honor_deferrable_annotation: bool = True


class _PendingAccesses:
    """Write-combining buffer for one access direction of one segment.

    The fast path of :meth:`Segment.record`: a direct-mapped cache of
    recently-touched cells (hits extend the cell's hull in place — the common
    case for the dense strided sweeps of Fig. 3) backed by an append-only
    spill of evicted cells.  Nothing is sorted or tree-shaped until
    :meth:`drain`, which sorts + coalesces once and hands the result to
    :meth:`repro.util.itree.IntervalTree.build_from_sorted`.

    The cell cache is *adaptive*: the first ``_WC_ACTIVATE`` accesses go to a
    plain append list (with a last-entry hull-extend for the sequential
    case), and the direct-mapped cells only materialize past that threshold.
    """

    __slots__ = ("cells", "spill", "count", "hits")

    def __init__(self) -> None:
        #: allocated lazily once the access count clears ``_WC_ACTIVATE`` —
        #: tiny segments stay in plain-append mode end to end
        self.cells: Optional[List[Optional[List[int]]]] = None
        self.spill: List[Tuple[int, int]] = []
        self.count = 0
        self.hits = 0

    def add(self, lo: int, hi: int) -> None:
        self.count += 1
        cells = self.cells
        if cells is None:
            if self.count <= _WC_ACTIVATE:
                spill = self.spill
                if spill:
                    plo, phi = spill[-1]
                    if lo <= phi and plo <= hi:     # overlap or adjacency
                        self.hits += 1
                        if lo < plo or hi > phi:
                            spill[-1] = (min(lo, plo), max(hi, phi))
                        return
                spill.append((lo, hi))
                return
            cells = self.cells = [None] * _WC_SLOTS
        slot = (lo >> _WC_SHIFT) & _WC_MASK
        cell = cells[slot]
        if cell is not None:
            if lo <= cell[1] and cell[0] <= hi:     # overlap or adjacency
                if lo < cell[0]:
                    cell[0] = lo
                if hi > cell[1]:
                    cell[1] = hi
                self.hits += 1
                return
            self.spill.append((cell[0], cell[1]))
        cells[slot] = [lo, hi]

    def drain(self) -> List[Tuple[int, int]]:
        """All buffered ranges, sorted and coalesced; resets the buffer."""
        pairs = self.spill
        spilled = 0
        if self.cells is not None:
            spilled = len(pairs)
            _WC_SPILLS.inc(spilled)
            for cell in self.cells:
                if cell is not None:
                    pairs.append((cell[0], cell[1]))
            self.cells = None
        else:
            _WC_TINY_DRAINS.inc()
        _WC_ACCESSES.inc(self.count)
        _WC_HITS.inc(self.hits)
        _WC_FLUSHES.inc()
        if _PROF.enabled:
            # count-axis attribution: booked once per drain (cold), never
            # per access — the write-combining hot loop stays profiler-free
            if self.hits:
                _PROF.count("record.wc.hit", n=self.hits)
            if spilled:
                _PROF.count("record.wc.spill", n=spilled)
            _PROF.count("record.wc.flush")
        self.spill = []
        self.count = 0
        self.hits = 0
        pairs.sort()
        return coalesce_sorted_pairs(pairs)


class Segment:
    """One node of the segment graph, with its access interval trees."""

    __slots__ = ("id", "thread_id", "task", "kind", "virtual", "open",
                 "_reads", "_writes", "_pend_r", "_pend_w", "_rset", "_wset",
                 "_nparr", "loc_samples", "sp_at_start",
                 "stack_bounds", "tls_snapshot", "label_loc", "seq_opened",
                 "seq_closed")

    def __init__(self, sid: int, thread_id: int, task: Optional[Task],
                 kind: str, *, virtual: bool = False,
                 sp_at_start: int = 0,
                 stack_bounds: Tuple[int, int] = (0, 0),
                 label_loc: Optional[SourceLocation] = None) -> None:
        self.id = sid
        self.thread_id = thread_id
        self.task = task
        self.kind = kind                 # 'serial','implicit','task','join'
        self.virtual = virtual
        self.open = not virtual
        self._reads = IntervalTree()
        self._writes = IntervalTree()
        self._pend_r: Optional[_PendingAccesses] = None
        self._pend_w: Optional[_PendingAccesses] = None
        self._rset: Optional[Tuple[Tuple[int, int], IntervalSet]] = None
        self._wset: Optional[Tuple[Tuple[int, int], IntervalSet]] = None
        self._nparr: Optional[Tuple[Tuple[int, int, int, int], tuple]] = None
        #: (lo, hi, is_write, loc) samples for report rendering
        self.loc_samples: List[Tuple[int, int, bool, Optional[SourceLocation]]] = []
        self.sp_at_start = sp_at_start
        self.stack_bounds = stack_bounds
        self.tls_snapshot: Optional[TlsSnapshot] = None
        self.label_loc = label_loc
        self.seq_opened = -1
        self.seq_closed = -1

    # -- recording ---------------------------------------------------------

    @staticmethod
    def _flush_into(tree: IntervalTree,
                    pend: _PendingAccesses) -> IntervalTree:
        """Drain a pending buffer into a tree, picking the cheaper strategy:
        bulk rebuild for large batches, plain inserts for a handful of pairs
        (sparse segments would otherwise pay the rebuild machinery for 1-2
        intervals)."""
        pairs = pend.drain()
        _FLUSH_BATCH.observe(len(pairs))
        if not tree and len(pairs) > 8:
            _FLUSH_BULK_BUILD.inc()
            return IntervalTree.build_from_sorted(pairs)
        if tree and len(pairs) * 4 >= len(tree):
            _FLUSH_BULK_MERGE.inc()
            return tree.bulk_merge(pairs)
        _FLUSH_INSERTS.inc()
        for lo, hi in pairs:
            tree.insert(lo, hi)
        return tree

    @property
    def reads(self) -> IntervalTree:
        """The read tree; flushes any write-combined pending accesses first."""
        p = self._pend_r
        if p is not None and p.count:
            self._reads = self._flush_into(self._reads, p)
        return self._reads

    @property
    def writes(self) -> IntervalTree:
        """The write tree; flushes any write-combined pending accesses first."""
        p = self._pend_w
        if p is not None and p.count:
            self._writes = self._flush_into(self._writes, p)
        return self._writes

    def record(self, addr: int, size: int, is_write: bool,
               loc: Optional[SourceLocation] = None) -> None:
        """Fast path: write-combine into a pending buffer.

        The interval trees are only built when the segment's trees are next
        observed (normally when the segment closes) — one sorted bulk build
        instead of one AVL insert per access.
        """
        if is_write:
            p = self._pend_w
            if p is None:
                p = self._pend_w = _PendingAccesses()
        else:
            p = self._pend_r
            if p is None:
                p = self._pend_r = _PendingAccesses()
        p.add(addr, addr + size)
        if len(self.loc_samples) < MAX_LOC_SAMPLES:
            self.loc_samples.append((addr, addr + size, is_write, loc))

    def record_immediate(self, addr: int, size: int, is_write: bool,
                         loc: Optional[SourceLocation] = None) -> None:
        """Legacy path: one coalescing tree insert per access.

        Kept as the oracle/baseline the fast path is benchmarked and
        property-tested against.
        """
        tree = self.writes if is_write else self.reads
        tree.insert(addr, addr + size)
        if len(self.loc_samples) < MAX_LOC_SAMPLES:
            self.loc_samples.append((addr, addr + size, is_write, loc))

    def flush_accesses(self) -> None:
        """Force pending write-combined accesses into the interval trees."""
        self.reads
        self.writes

    def reads_set(self) -> IntervalSet:
        """The read tree as a cached normalized :class:`IntervalSet`."""
        tree = self.reads
        key = (len(tree), tree.total_bytes)
        cached = self._rset
        if cached is None or cached[0] != key:
            s = IntervalSet()
            for lo, hi in tree.pairs():
                s._los.append(lo)
                s._his.append(hi)
            cached = self._rset = (key, s)
        return cached[1]

    def writes_set(self) -> IntervalSet:
        """The write tree as a cached normalized :class:`IntervalSet`."""
        tree = self.writes
        key = (len(tree), tree.total_bytes)
        cached = self._wset
        if cached is None or cached[0] != key:
            s = IntervalSet()
            for lo, hi in tree.pairs():
                s._los.append(lo)
                s._his.append(hi)
            cached = self._wset = (key, s)
        return cached[1]

    def np_arrays(self) -> tuple:
        """The access sets as cached sorted ``int64`` numpy arrays.

        ``(w_los, w_his, r_los, r_his, rw_los, rw_his)`` in the canonical
        normalized form — the operand layout of the ``analysis_kernel=numpy``
        backend (see :mod:`repro.core.npkernel`).  Built once per segment
        alongside the interval trees and invalidated by the same
        ``(len, total_bytes)`` key as the flat set views.  Only callable when
        numpy is available (the kernel resolver guarantees that).
        """
        rt, wt = self.reads, self.writes
        key = (len(rt), rt.total_bytes, len(wt), wt.total_bytes)
        cached = self._nparr
        if cached is None or cached[0] != key:
            from repro.core.npkernel import build_segment_arrays
            cached = self._nparr = (
                key, build_segment_arrays(self.reads_set(),
                                          self.writes_set()))
        return cached[1]

    def sample_loc(self, lo: int, hi: int,
                   want_write: Optional[bool] = None) -> Optional[SourceLocation]:
        """A recorded source location overlapping ``[lo, hi)``, if any."""
        for a, b, w, loc in self.loc_samples:
            if a < hi and lo < b and (want_write is None or w == want_write):
                if loc is not None:
                    return loc
        return None

    @property
    def has_accesses(self) -> bool:
        return (bool(self._reads) or bool(self._writes)
                or (self._pend_r is not None and self._pend_r.count > 0)
                or (self._pend_w is not None and self._pend_w.count > 0))

    def label(self) -> str:
        if self.label_loc is not None:
            return str(self.label_loc)
        if self.task is not None:
            return self.task.label()
        return f"{self.kind}#{self.id}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Segment {self.id} {self.kind} t{self.thread_id} {self.label()}>"


class SegmentGraph:
    """DAG of segments with an O(1) label index + bitset reachability oracle.

    ``hb_mode`` selects the query path:

    * ``'auto'`` (default) — answer from the order-maintenance
      :class:`~repro.core.hbindex.HbIndex` when it is exact for this run,
      else from the bitmask DP;
    * ``'bitmask'`` — always the DP (the pre-index behaviour);
    * ``'checked'`` — answer from the index but assert agreement with the DP
      on every query (the property-test mode).
    """

    def __init__(self) -> None:
        self.segments: List[Segment] = []
        self._succ: List[List[int]] = []
        self.edge_count = 0
        self._reach: Optional[List[int]] = None    # descendant bitmask per node
        self.hb_index: Optional[HbIndex] = None
        self.hb_mode: str = "auto"                 # 'auto'|'bitmask'|'checked'
        #: (E, H) label snapshot from prepare_queries — valid only while the
        #: graph is unchanged
        self._hb_labels: Optional[Tuple[List, List]] = None
        # query-path mix (plain ints: incremented on the analysis hot path,
        # published into the metrics registry at stats-assembly time)
        self.q_label = 0           # answered from the flat label snapshot
        self.q_index = 0           # answered by an HbIndex hint
        self.q_dp = 0              # answered by the bitmask DP
        self.dp_rebuilds = 0       # full reachability DP materializations
        #: replay hook (repro.replay): an object with ``on_segment(seg)``
        #: and ``on_edge(src_id, dst_id)``, notified in creation order —
        #: ``_succ`` loses that order, so recording must observe it live
        self.observer = None

    def new_segment(self, **kwargs) -> Segment:
        seg = Segment(len(self.segments), **kwargs)
        self.segments.append(seg)
        self._succ.append([])
        self._reach = None
        self._hb_labels = None
        if self.observer is not None:
            self.observer.on_segment(seg)
        return seg

    def add_edge(self, src: Optional[Segment], dst: Optional[Segment]) -> None:
        if src is None or dst is None or src is dst:
            return
        self._succ[src.id].append(dst.id)
        self.edge_count += 1
        self._reach = None
        self._hb_labels = None
        if self.observer is not None:
            self.observer.on_edge(src.id, dst.id)
        if self.hb_index is not None:
            self.hb_index.on_edge(src.id, dst.id)
        if _TRACER.enabled and (src.thread_id != dst.thread_id
                                or src.virtual or dst.virtual):
            # cross-thread / join-node edges are the synchronisation edges —
            # same-thread program-order edges would only be timeline noise
            _TRACER.edge_flow(f"hb seg#{src.id}->seg#{dst.id}",
                              src.thread_id, dst.thread_id,
                              args={"src": src.id, "dst": dst.id})

    # -- reachability --------------------------------------------------------

    def _topo_order(self) -> List[int]:
        """Kahn topological order (ids are *not* topological: a task executed
        inside a barrier closes after the join node was created)."""
        n = len(self.segments)
        indeg = [0] * n
        for succs in self._succ:
            for t in succs:
                indeg[t] += 1
        frontier = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        while frontier:
            sid = frontier.pop()
            order.append(sid)
            for t in self._succ[sid]:
                indeg[t] -= 1
                if indeg[t] == 0:
                    frontier.append(t)
        if len(order) != n:  # pragma: no cover - construction invariant
            raise AssertionError("segment graph has a cycle")
        return order

    def _compute_reach(self) -> List[int]:
        """Descendant bitmask per segment via reverse-topological DP."""
        reach = [0] * len(self.segments)
        for sid in reversed(self._topo_order()):
            mask = 0
            for t in self._succ[sid]:
                mask |= (1 << t) | reach[t]
            reach[sid] = mask
        return reach

    def _reachability(self) -> List[int]:
        if self._reach is None:
            self.dp_rebuilds += 1
            with get_registry().phase("hb.dp_rebuild"):
                self._reach = self._compute_reach()
        return self._reach

    def prepare_queries(self) -> None:
        """Materialize whatever the configured query path will need.

        Called once before a query-heavy pass (Algorithm 1) so the first
        ``ordered`` call doesn't pay a full DP rebuild mid-loop — and so that
        when the O(1) index can answer, the DP is not built at all.  When the
        index is exact, its labels are snapshotted into flat arrays for the
        cheapest possible per-query cost.
        """
        idx = self.hb_index
        if (idx is None or not idx.exact
                or self.hb_mode in ("bitmask", "checked")):
            self._reachability()
        elif self._hb_labels is None:
            self._hb_labels = idx.label_arrays(len(self.segments))

    def ordered(self, a: Segment, b: Segment) -> bool:
        """True when a path exists between ``a`` and ``b`` (either direction)."""
        labs = self._hb_labels
        if labs is not None and self.hb_mode == "auto":
            e, h = labs
            ea, eb = e[a.id], e[b.id]
            if ea is not None and eb is not None:
                # both E and H are strict total orders: a path exists iff
                # the two label comparisons agree in direction
                self.q_label += 1
                if _PROF.enabled:
                    _PROF.count("hb.query.label")
                return (ea < eb) == (h[a.id] < h[b.id])
        idx = self.hb_index
        if idx is not None and self.hb_mode != "bitmask":
            hint = idx.ordered_hint(a.id, b.id)
            if hint is not None:
                if self.hb_mode == "checked":
                    reach = self._reachability()
                    dp = bool(reach[a.id] >> b.id & 1) or \
                        bool(reach[b.id] >> a.id & 1)
                    assert hint == dp, (
                        f"hb index disagrees with bitmask oracle on "
                        f"({a.id}, {b.id}): index={hint} dp={dp}")
                self.q_index += 1
                if _PROF.enabled:
                    _PROF.count("hb.query.index")
                return hint
        self.q_dp += 1
        if _PROF.enabled:
            _PROF.count("hb.query.dp")
        reach = self._reachability()
        return bool(reach[a.id] >> b.id & 1) or bool(reach[b.id] >> a.id & 1)

    def happens_before(self, a: Segment, b: Segment) -> bool:
        labs = self._hb_labels
        if labs is not None and self.hb_mode == "auto":
            e, h = labs
            ea, eb = e[a.id], e[b.id]
            if ea is not None and eb is not None:
                self.q_label += 1
                if _PROF.enabled:
                    _PROF.count("hb.query.label")
                return ea < eb and h[a.id] < h[b.id]
        idx = self.hb_index
        if idx is not None and self.hb_mode != "bitmask":
            hint = idx.happens_before_hint(a.id, b.id)
            if hint is not None:
                if self.hb_mode == "checked":
                    dp = bool(self._reachability()[a.id] >> b.id & 1)
                    assert hint == dp, (
                        f"hb index disagrees with bitmask oracle on "
                        f"({a.id} -> {b.id}): index={hint} dp={dp}")
                self.q_index += 1
                if _PROF.enabled:
                    _PROF.count("hb.query.index")
                return hint
        self.q_dp += 1
        if _PROF.enabled:
            _PROF.count("hb.query.dp")
        return bool(self._reachability()[a.id] >> b.id & 1)

    def independent(self, a: Segment, b: Segment) -> bool:
        return a is not b and not self.ordered(a, b)

    def explain_unordered(self, a: Segment, b: Segment) -> dict:
        """Why the configured query path found no happens-before path.

        Mirrors the tier selection of :meth:`ordered` without touching the
        query counters: reports which mechanism answered (label snapshot,
        order-maintenance index, or bitmask DP) and the evidence it used —
        the provenance half of a race report's witness.
        """
        labs = self._hb_labels
        if labs is not None and self.hb_mode == "auto":
            e, h = labs
            ea, eb = e[a.id], e[b.id]
            if ea is not None and eb is not None:
                ha, hb = h[a.id], h[b.id]
                return {
                    "tier": "label",
                    "e_labels": [ea, eb], "h_labels": [ha, hb],
                    "reason": (
                        f"order-maintenance labels disagree in direction: "
                        f"E({ea} {'<' if ea < eb else '>'} {eb}) but "
                        f"H({ha} {'<' if ha < hb else '>'} {hb}) — the "
                        f"segments are parallel branches"),
                }
        idx = self.hb_index
        if idx is not None and self.hb_mode != "bitmask":
            hint = idx.ordered_hint(a.id, b.id)
            if hint is not None:
                return {
                    "tier": "index",
                    "reason": ("order-maintenance index query returned "
                               "unordered (E and H comparisons disagree)"),
                }
        reach = self._reachability()
        return {
            "tier": "dp",
            "a_reaches_b": bool(reach[a.id] >> b.id & 1),
            "b_reaches_a": bool(reach[b.id] >> a.id & 1),
            "reason": ("bitmask reachability DP found no path "
                       f"seg#{a.id}->seg#{b.id} nor seg#{b.id}->seg#{a.id}"),
        }

    def successors(self, seg: Segment) -> List[Segment]:
        return [self.segments[i] for i in self._succ[seg.id]]

    def predecessors_map(self) -> List[List[int]]:
        """Reverse adjacency (predecessor ids per segment), built on demand."""
        preds: List[List[int]] = [[] for _ in self.segments]
        for sid, succs in enumerate(self._succ):
            for t in succs:
                preds[t].append(sid)
        return preds

    def topo_positions(self) -> List[int]:
        """Topological position per segment id (for nearest-ancestor picks)."""
        pos = [0] * len(self.segments)
        for i, sid in enumerate(self._topo_order()):
            pos[sid] = i
        return pos

    def check_acyclic(self) -> None:
        """Raise if the graph has a cycle (it must be a DAG)."""
        self._topo_order()

    def memory_bytes(self, *, bytes_per_node: int = 64,
                     bytes_per_segment: int = 160) -> int:
        """Simulated footprint of the graph + its interval trees."""
        nodes = sum(len(s.reads) + len(s.writes) for s in self.segments)
        index_bytes = (self.hb_index.memory_bytes()
                       if self.hb_index is not None else 0)
        return (nodes * bytes_per_node
                + len(self.segments) * bytes_per_segment
                + self.edge_count * 16
                + index_bytes)

    def stats(self) -> dict:
        """Graph shape + happens-before query mix for the stats document."""
        idx = self.hb_index
        return {
            "segments": len(self.segments),
            "edges": self.edge_count,
            "hb_mode": self.hb_mode,
            "hb_exact": idx.exact if idx is not None else False,
            "hb_inexact_reason": (idx.inexact_reason
                                  if idx is not None else None),
            "queries": {
                "label": self.q_label,
                "index": self.q_index,
                "dp": self.q_dp,
            },
            "dp_rebuilds": self.dp_rebuilds,
            "index_queries": idx.queries if idx is not None else 0,
            "index_fallbacks": idx.fallbacks if idx is not None else 0,
            "memory_bytes": self.memory_bytes(),
        }


@dataclass
class _TaskEntry:
    """Per-thread stack entry: the task being executed + its open segment."""

    task: Optional[Task]
    segment: Segment
    merged_into: Optional["_TaskEntry"] = None


@dataclass
class _TaskInfo:
    """What the builder remembers about each task."""

    creation_segment: Optional[Segment] = None
    final_segment: Optional[Segment] = None
    children: List[Task] = field(default_factory=list)
    preds: List[Tuple[Task, Dependence]] = field(default_factory=list)
    group_members: List[Task] = field(default_factory=list)   # if group owner
    annotated: bool = False
    completion_seq: int = -1
    exec_thread: int = -1


class SegmentBuilder:
    """Builds a :class:`SegmentGraph` from runtime events.

    One instance per tool per run.  The owning tool forwards OMPT events (via
    its shim) and access events (after its own symbol filtering) into the
    builder's methods.
    """

    def __init__(self, machine, config: Optional[SegmentModelConfig] = None,
                 *, fast_record: bool = True) -> None:
        self.machine = machine
        self.config = config or SegmentModelConfig()
        self.graph = SegmentGraph()
        #: O(1) fork-join happens-before labels, maintained as events arrive.
        #: Event shapes the labeling can't express mark it inexact and the
        #: graph falls back to the bitmask DP.
        self.hb = HbIndex()
        self.graph.hb_index = self.hb
        #: route accesses through the write-combining fast path (False =
        #: legacy per-access tree inserts; the perf bench flips this)
        self.fast_record = fast_record
        #: when set to a list, every access is appended as
        #: ``(segment_id, addr, size, is_write)`` — the perf bench's capture
        #: hook for replaying identical streams through both record paths
        self.access_log: Optional[List[Tuple[int, int, int, bool]]] = None
        #: 0 = exact byte recording; a power of two widens every access to
        #: its enclosing granule window (memory-budget degradation — see
        #: :meth:`enter_coarse_mode`)
        self.coarse_granule = 0
        self._entries: Dict[int, List[_TaskEntry]] = {}
        self._info: Dict[int, _TaskInfo] = {}
        self._group_stack: Dict[int, List[List[Task]]] = {}   # task tid -> stacks
        self._task_group: Dict[int, Optional[List[Task]]] = {}
        self._region_fork: Dict[int, Segment] = {}
        self._region_unjoined: Dict[int, List[Segment]] = {}
        self._barrier_join: Dict[Tuple[int, int], Segment] = {}
        self._barrier_absorbed: Set[Tuple[int, int]] = set()
        self._barrier_count: Dict[Tuple[int, int], int] = {}  # (region, thread)
        self._taskwait_prior: Dict[Tuple[int, int], Segment] = {}
        self._group_prior: Dict[Tuple[int, int], List] = {}
        self._mutex_last_final: Dict[int, Segment] = {}   # mutexinoutset addr
        self.event_seq = 0
        self.last_seq_by_thread: Dict[int, int] = {}

    # -- plumbing ------------------------------------------------------------

    def _bump(self, thread_id: int) -> int:
        self.event_seq += 1
        self.last_seq_by_thread[thread_id] = self.event_seq
        return self.event_seq

    def info(self, task: Task) -> _TaskInfo:
        ti = self._info.get(task.tid)
        if ti is None:
            ti = self._info[task.tid] = _TaskInfo()
        return ti

    def _stack(self, thread_id: int) -> List[_TaskEntry]:
        st = self._entries.get(thread_id)
        if st is None:
            st = self._entries[thread_id] = []
        return st

    def _thread_meta(self, thread_id: int) -> Tuple[int, Tuple[int, int]]:
        """(current stack pointer, stack region bounds) of a thread."""
        try:
            tctx = self.machine.context(thread_id)
        except KeyError:
            return 0, (0, 0)
        stack = tctx.stack
        frame = stack.current_frame
        sp = frame.sp if frame is not None else stack.region.end
        return sp, (stack.region.base, stack.region.end)

    def _open(self, thread_id: int, task: Optional[Task], kind: str,
              label_loc=None) -> Segment:
        sp, bounds = self._thread_meta(thread_id)
        seg = self.graph.new_segment(thread_id=thread_id, task=task, kind=kind,
                                     sp_at_start=sp, stack_bounds=bounds,
                                     label_loc=label_loc)
        seg.seq_opened = self._bump(thread_id)
        if _TRACER.enabled:
            _TRACER.segment_begin(seg.id, thread_id, kind, seg.label())
        return seg

    def _close(self, seg: Segment, thread_id: int) -> Segment:
        if seg.open:
            seg.open = False
            seg.seq_closed = self._bump(thread_id)
            seg.flush_accesses()       # bulk-build the interval trees now
            if _TRACER.enabled:
                _TRACER.segment_end(seg.id, args={
                    "reads": len(seg._reads), "writes": len(seg._writes)})
                if _PROF.enabled:
                    # merge cumulative per-class op counters onto the
                    # timeline lanes at every segment boundary
                    _PROF.sample_timeline(_TRACER, thread_id)
            try:
                seg.tls_snapshot = self.machine.tls.snapshot(thread_id)
            except KeyError:  # pragma: no cover - threads always registered
                seg.tls_snapshot = None
        return seg

    def current_entry(self, thread_id: int) -> _TaskEntry:
        st = self._stack(thread_id)
        if not st:
            seg = self._open(thread_id, None, "serial")
            self.hb.place_root(seg.id)
            st.append(_TaskEntry(task=None, segment=seg))
        return st[-1]

    def _hb_ensure_placed(self, seg: Segment) -> None:
        """Root-place a segment that ended up with no incoming edges."""
        if self.hb.exact and not self.hb.placed(seg.id):
            self.hb.place_root(seg.id)

    def current_segment(self, thread_id: int) -> Segment:
        return self.current_entry(thread_id).segment

    def _task_label(self, task: Task):
        return task.create_loc

    def _effectively_sequenced(self, task: Task) -> bool:
        """Is this task sequenced with its creator in this tool's model?

        LLVM's OMPT flag fidelity: INCLUDED (serialized) tasks are
        indistinguishable from UNDEFERRED ones unless annotated.
        """
        if not self.config.honor_undeferred:
            return False
        undeferred_as_seen = bool(
            task.flags & (TaskFlags.UNDEFERRED | TaskFlags.INCLUDED))
        if not undeferred_as_seen:
            return False
        if (self.config.honor_deferrable_annotation
                and self.info(task).annotated
                and not task.flags & TaskFlags.UNDEFERRED):
            # annotation rescues serialized tasks, never genuine if(0)
            return False
        return True

    # -- events: annotation -----------------------------------------------------

    def on_task_annotate_deferrable(self, task: Task) -> None:
        self.info(task).annotated = True

    # -- events: parallel regions -------------------------------------------------

    def on_parallel_begin(self, region, encountering_task: Task,
                          thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        self._region_fork[region.id] = self._close(entry.segment, thread_id)
        self._region_unjoined[region.id] = []

    def on_parallel_end(self, region, encountering_task: Task,
                        thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(entry.segment, seg)       # program order
        for t in region.implicit_tasks:
            if t is not None:
                self.graph.add_edge(self.info(t).final_segment, seg)
        # any task that completed without being absorbed by a barrier join
        for fin in self._region_unjoined.pop(region.id, []):
            self.graph.add_edge(fin, seg)
        entry.segment = seg

    def on_implicit_task_begin(self, region, task: Task,
                               thread_id: int) -> None:
        seg = self._open(thread_id, task, "implicit")
        fork = self._region_fork.get(region.id)
        if fork is not None:
            self.hb.fork_child(fork.id, seg.id)   # team members are parallel
        else:
            self.hb.place_root(seg.id)
        self.graph.add_edge(fork, seg)
        self._stack(thread_id).append(_TaskEntry(task=task, segment=seg))
        self.info(task).creation_segment = self._region_fork.get(region.id)

    def on_implicit_task_end(self, region, task: Task, thread_id: int) -> None:
        entry = self._stack(thread_id).pop()
        self.info(task).final_segment = self._close(entry.segment, thread_id)
        self.info(task).completion_seq = self.event_seq
        self.info(task).exec_thread = thread_id

    # -- events: explicit tasks ------------------------------------------------------

    def on_task_create(self, task: Task, parent: Task, thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        creation = self._close(entry.segment, thread_id)
        cont = self._open(thread_id, entry.task,
                          entry.segment.kind if entry.task else "serial")
        # the continuation and the (future) task child are both parallel
        # branches forked off the creation segment
        self.hb.fork_child(creation.id, cont.id)
        self.graph.add_edge(creation, cont)
        entry.segment = cont
        ti = self.info(task)
        ti.creation_segment = creation
        if parent is not None:
            self.info(parent).children.append(task)
        # taskgroup membership (innermost open group of the creator)
        groups = self._group_stack.get(parent.tid if parent else -1)
        if groups:
            groups[-1].append(task)
            self._task_group[task.tid] = groups[-1]
        else:
            inherited = self._task_group.get(parent.tid) if parent else None
            if inherited is not None:
                inherited.append(task)
                self._task_group[task.tid] = inherited

    def on_task_dependence_pair(self, pred: Task, succ: Task,
                                dep: Dependence) -> None:
        if not self.config.honor_dependencies:
            return
        if dep.kind == DepKind.INOUTSET and not self.config.honor_inoutset:
            return
        if (dep.kind == DepKind.MUTEXINOUTSET
                and not self.config.honor_mutexinoutset):
            return
        # dependence edges cut across the fork-join nesting: not expressible
        # in the two-order labeling (DePa handles pure fork-join only)
        self.hb.mark_inexact("task dependence")
        self.info(succ).preds.append((pred, dep))

    def on_task_schedule_begin(self, task: Task, thread_id: int) -> None:
        ti = self.info(task)
        if task.is_merged and self.config.honor_mergeable is False:
            # Nobody in the paper's tool set models merged-task semantics:
            # the merged task's accesses land in the encountering task's
            # segment (which is exactly why DRB129 is a universal FN).
            parent_entry = self.current_entry(thread_id)
            self._stack(thread_id).append(_TaskEntry(
                task=task, segment=parent_entry.segment,
                merged_into=parent_entry))
            return
        seg = self._open(thread_id, task, "task",
                         label_loc=self._task_label(task))
        if ti.creation_segment is not None:
            self.hb.fork_child(ti.creation_segment.id, seg.id)
        if self.config.honor_mutexinoutset and task.mutexinoutset_addrs:
            # observed-order serialization edges are not fork-join shaped
            self.hb.mark_inexact("mutexinoutset ordering")
        self.graph.add_edge(ti.creation_segment, seg)
        for pred, _dep in ti.preds:
            self.graph.add_edge(self.info(pred).final_segment, seg)
        if self.config.honor_mutexinoutset:
            # Taskgrind orders mutexinoutset members by their observed
            # execution order (the runtime's mutual exclusion serializes them,
            # so the observed order is a sound happens-before witness).
            for addr in task.mutexinoutset_addrs:
                self.graph.add_edge(self._mutex_last_final.get(addr), seg)
        self._stack(thread_id).append(_TaskEntry(task=task, segment=seg))

    def on_task_schedule_end(self, task: Task, thread_id: int,
                             completed: bool) -> None:
        entry = self._stack(thread_id).pop()
        ti = self.info(task)
        if entry.merged_into is not None:
            ti.final_segment = entry.merged_into.segment
            ti.completion_seq = self.event_seq
            ti.exec_thread = thread_id
            return
        final = self._close(entry.segment, thread_id)
        if self.config.honor_mutexinoutset:
            for addr in task.mutexinoutset_addrs:
                self._mutex_last_final[addr] = final
        if completed or not self.config.honor_detach:
            ti.final_segment = final
            ti.completion_seq = self.event_seq
            ti.exec_thread = thread_id
            self._after_completion(task, final)
        else:
            # detached: remember the body's final; completion node comes at
            # fulfill time
            ti.final_segment = final

    def _after_completion(self, task: Task, final: Segment) -> None:
        if task.is_merged:
            return
        if self._effectively_sequenced(task):
            # sequenced with the creator: creator's continuation follows
            creator_entry = self._entry_of_task(task.parent)
            if creator_entry is not None:
                self.graph.add_edge(final, creator_entry.segment)
        region = task.region
        if region is not None:
            self._region_unjoined.setdefault(region.id, []).append(final)

    def _entry_of_task(self, task: Optional[Task]) -> Optional[_TaskEntry]:
        if task is None:
            return None
        for st in self._entries.values():
            for entry in st:
                if entry.task is task:
                    return entry
        return None

    def on_task_detach_fulfill(self, task: Task, thread_id: int) -> None:
        if not self.config.honor_detach:
            return
        # completion nodes join strands from unrelated nesting levels
        self.hb.mark_inexact("detach fulfill")
        ti = self.info(task)
        node = self.graph.new_segment(thread_id=thread_id, task=task,
                                      kind="join", virtual=True)
        node.seq_opened = node.seq_closed = self._bump(thread_id)
        self.graph.add_edge(ti.final_segment, node)
        self.graph.add_edge(self.current_segment(thread_id), node)
        # the fulfilling segment itself must be split so the edge is sound
        self._split_current(thread_id, after=node)
        ti.final_segment = node
        ti.completion_seq = self.event_seq
        ti.exec_thread = thread_id
        self._after_completion(task, node)

    def _split_current(self, thread_id: int, after: Segment) -> None:
        entry = self.current_entry(thread_id)
        closed = self._close(entry.segment, thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(closed, seg)
        self.graph.add_edge(after, seg)
        entry.segment = seg

    # -- events: synchronisation ----------------------------------------------------

    def on_sync_begin(self, kind, task: Task, thread_id: int,
                      region=None) -> None:
        from repro.openmp.ompt import SyncKind
        entry = self.current_entry(thread_id)
        if kind == SyncKind.TASKWAIT:
            self._taskwait_prior[(task.tid, thread_id)] = \
                self._close(entry.segment, thread_id)
        elif kind == SyncKind.TASKGROUP:
            members: List[Task] = []
            self._group_stack.setdefault(task.tid, []).append(members)
            self._group_prior.setdefault((task.tid, thread_id), []).append(
                self._close(entry.segment, thread_id))
            # segment continues until group end; open a body segment
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(self._group_prior[(task.tid, thread_id)][-1],
                                seg)
            entry.segment = seg
        elif kind in (SyncKind.BARRIER, SyncKind.BARRIER_IMPLICIT):
            if region is None:
                region = task.region
            if region is None or region.size == 1:
                # serial barrier is a plain scheduling point
                self._taskwait_prior[(task.tid, thread_id)] = \
                    self._close(entry.segment, thread_id)
                return
            key = (region.id, thread_id)
            k = self._barrier_count.get(key, 0)
            self._barrier_count[key] = k + 1
            join = self._barrier_join.get((region.id, k))
            if join is None:
                join = self.graph.new_segment(thread_id=-1, task=None,
                                              kind="join", virtual=True)
                join.seq_opened = self.event_seq
                self._barrier_join[(region.id, k)] = join
            pre = self._close(entry.segment, thread_id)
            self.graph.add_edge(pre, join)
            self._taskwait_prior[(task.tid, thread_id)] = pre

    def on_sync_end(self, kind, task: Task, thread_id: int,
                    region=None) -> None:
        from repro.openmp.ompt import SyncKind
        entry = self.current_entry(thread_id)
        if kind == SyncKind.TASKWAIT:
            prior = self._taskwait_prior.pop((task.tid, thread_id), None)
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(prior, seg)
            if self.config.honor_taskwait:
                for child in self.info(task).children:
                    self.graph.add_edge(self.info(child).final_segment, seg)
            self._hb_ensure_placed(seg)
            entry.segment = seg
        elif kind == SyncKind.TASKGROUP:
            members = self._group_stack[task.tid].pop()
            prior = self._group_prior[(task.tid, thread_id)].pop()
            closed = self._close(entry.segment, thread_id)
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(closed, seg)
            if self.config.honor_taskgroup:
                for member in members:
                    self.graph.add_edge(self.info(member).final_segment, seg)
            entry.segment = seg
        elif kind in (SyncKind.BARRIER, SyncKind.BARRIER_IMPLICIT):
            if region is None:
                region = task.region
            if region is None or region.size == 1:
                prior = self._taskwait_prior.pop((task.tid, thread_id), None)
                seg = self._open(thread_id, entry.task, entry.segment.kind)
                self.graph.add_edge(prior, seg)
                # a serial barrier still completes every outstanding task
                if region is not None:
                    for fin in self._region_unjoined.get(region.id, []):
                        self.graph.add_edge(fin, seg)
                    self._region_unjoined[region.id] = []
                self._hb_ensure_placed(seg)
                entry.segment = seg
                return
            key = (region.id, thread_id)
            k = self._barrier_count[key] - 1
            join = self._barrier_join[(region.id, k)]
            if (region.id, k) not in self._barrier_absorbed:
                # first member through: absorb every task completed so far
                # (the barrier guaranteed they all finished)
                for fin in self._region_unjoined.get(region.id, []):
                    self.graph.add_edge(fin, join)
                self._region_unjoined[region.id] = []
                self._barrier_absorbed.add((region.id, k))
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            # every member's post-barrier segment is a parallel branch off
            # the join node — plain sequential placement would order them
            if self.hb.placed(join.id):
                self.hb.fork_child(join.id, seg.id)
            self.graph.add_edge(join, seg)
            prior = self._taskwait_prior.pop((task.tid, thread_id), None)
            self.graph.add_edge(prior, seg)
            entry.segment = seg

    # -- accesses -----------------------------------------------------------------

    def enter_coarse_mode(self, granule: int = 64) -> None:
        """Degrade recording to ``granule``-byte intervals (memory budget).

        Every subsequent access is widened to the enclosing granule-aligned
        window, so adjacent accesses coalesce into far fewer tree nodes.
        This *over*-approximates the access sets — the analysis can then
        report byte overlaps that never happened — which is why the tool
        stamps a degraded-precision warning on every report of such a run.
        One-way: precision already lost cannot be bought back by leaving
        coarse mode, so there is no exit and re-entering can only widen
        the granule, never narrow it.
        """
        assert granule > 0 and (granule & (granule - 1)) == 0, \
            "coarse granule must be a power of two"
        self.coarse_granule = max(self.coarse_granule, granule)

    def record_access(self, thread_id: int, addr: int, size: int,
                      is_write: bool,
                      loc: Optional[SourceLocation] = None) -> None:
        seg = self.current_segment(thread_id)
        g = self.coarse_granule
        if g:
            lo = addr & ~(g - 1)
            size = ((addr + size + g - 1) & ~(g - 1)) - lo
            addr = lo
        if self.access_log is not None:
            self.access_log.append((seg.id, addr, size, is_write))
        if self.fast_record:
            seg.record(addr, size, is_write, loc)
        else:
            seg.record_immediate(addr, size, is_write, loc)
