"""Segment graph: nodes, happens-before edges, and construction from events.

A *segment* is a maximal sequence of instructions of one task executed
between two task scheduling points (Section II-A).  The builder consumes the
OMPT-style runtime events and maintains, per simulated thread, a stack of
``(task, current segment)`` entries: nested inline task execution pushes,
completion pops, and every scheduling point closes the entry's segment and
opens a successor with the happens-before edges the synchronisation implies:

===========================  ===================================================
event                        edges created
===========================  ===================================================
task create                  split creator segment (A1 -> A2); child's first
                             segment gets A1 -> child
task begin                   creation-segment edge + one edge per completed
                             dependence predecessor's final segment
taskwait end                 prior segment -> new, each direct child's final
                             -> new
taskgroup end                prior -> new, each member task's final -> new
barrier                      every member's pre-segment -> join node; join ->
                             every post-segment; every explicit task final of
                             the region so far -> join
parallel begin/end           fork segment -> each implicit first segment;
                             each implicit final -> continuation (Eq. (1)
                             region ordering follows transitively)
undeferred (`if(0)`) task    additionally child final -> creator continuation
                             (the task is sequenced) when the model honours it
detach fulfill               body final + fulfilling segment -> completion node
===========================  ===================================================

Which of these a tool applies is controlled by :class:`SegmentModelConfig` —
the knob that models the capability differences between Taskgrind,
TaskSanitizer and ROMP in Table I (e.g. TaskSanitizer does not support
``inoutset`` or ``detach``; Taskgrind does not order mutexes).

Flag fidelity: the LLVM runtime reports tasks it *serialized* (single-thread
team) with the same ``undeferred`` OMPT flag as genuine ``if(0)`` tasks
(llvm-project issue #89398, discussed in the paper).  The builder therefore
sees ``INCLUDED`` tasks as sequenced unless the user *annotated* the task as
semantically deferrable (the paper's LULESH annotation, forwarded to
Taskgrind by client request).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.machine.debuginfo import SourceLocation
from repro.machine.tls import TlsSnapshot
from repro.openmp.ompt import DepKind, Dependence, TaskFlags
from repro.openmp.tasks import Task
from repro.util.itree import IntervalTree

MAX_LOC_SAMPLES = 64


@dataclass
class SegmentModelConfig:
    """Which synchronisation semantics a tool's segment model understands."""

    honor_dependencies: bool = True
    honor_inoutset: bool = True           # TaskSanitizer: False
    honor_mutexinoutset: bool = True
    honor_detach: bool = True             # TaskSanitizer: False
    honor_taskwait: bool = True
    honor_taskgroup: bool = True
    honor_undeferred: bool = True         # sequence if(0)/serialized tasks
    honor_mergeable: bool = False         # nobody models merged tasks (DRB129)
    #: treat tasks the user annotated as deferrable as truly deferred even if
    #: the runtime serialized them (Taskgrind's client-request annotation)
    honor_deferrable_annotation: bool = True


class Segment:
    """One node of the segment graph, with its access interval trees."""

    __slots__ = ("id", "thread_id", "task", "kind", "virtual", "open",
                 "reads", "writes", "loc_samples", "sp_at_start",
                 "stack_bounds", "tls_snapshot", "label_loc", "seq_opened",
                 "seq_closed")

    def __init__(self, sid: int, thread_id: int, task: Optional[Task],
                 kind: str, *, virtual: bool = False,
                 sp_at_start: int = 0,
                 stack_bounds: Tuple[int, int] = (0, 0),
                 label_loc: Optional[SourceLocation] = None) -> None:
        self.id = sid
        self.thread_id = thread_id
        self.task = task
        self.kind = kind                 # 'serial','implicit','task','join'
        self.virtual = virtual
        self.open = not virtual
        self.reads = IntervalTree()
        self.writes = IntervalTree()
        #: (lo, hi, is_write, loc) samples for report rendering
        self.loc_samples: List[Tuple[int, int, bool, Optional[SourceLocation]]] = []
        self.sp_at_start = sp_at_start
        self.stack_bounds = stack_bounds
        self.tls_snapshot: Optional[TlsSnapshot] = None
        self.label_loc = label_loc
        self.seq_opened = -1
        self.seq_closed = -1

    # -- recording ---------------------------------------------------------

    def record(self, addr: int, size: int, is_write: bool,
               loc: Optional[SourceLocation]) -> None:
        tree = self.writes if is_write else self.reads
        tree.insert(addr, addr + size)
        if len(self.loc_samples) < MAX_LOC_SAMPLES:
            self.loc_samples.append((addr, addr + size, is_write, loc))

    def sample_loc(self, lo: int, hi: int,
                   want_write: Optional[bool] = None) -> Optional[SourceLocation]:
        """A recorded source location overlapping ``[lo, hi)``, if any."""
        for a, b, w, loc in self.loc_samples:
            if a < hi and lo < b and (want_write is None or w == want_write):
                if loc is not None:
                    return loc
        return None

    @property
    def has_accesses(self) -> bool:
        return bool(self.reads) or bool(self.writes)

    def label(self) -> str:
        if self.label_loc is not None:
            return str(self.label_loc)
        if self.task is not None:
            return self.task.label()
        return f"{self.kind}#{self.id}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Segment {self.id} {self.kind} t{self.thread_id} {self.label()}>"


class SegmentGraph:
    """DAG of segments with bitset reachability."""

    def __init__(self) -> None:
        self.segments: List[Segment] = []
        self._succ: List[List[int]] = []
        self.edge_count = 0
        self._reach: Optional[List[int]] = None    # descendant bitmask per node

    def new_segment(self, **kwargs) -> Segment:
        seg = Segment(len(self.segments), **kwargs)
        self.segments.append(seg)
        self._succ.append([])
        self._reach = None
        return seg

    def add_edge(self, src: Optional[Segment], dst: Optional[Segment]) -> None:
        if src is None or dst is None or src is dst:
            return
        self._succ[src.id].append(dst.id)
        self.edge_count += 1
        self._reach = None

    # -- reachability --------------------------------------------------------

    def _topo_order(self) -> List[int]:
        """Kahn topological order (ids are *not* topological: a task executed
        inside a barrier closes after the join node was created)."""
        n = len(self.segments)
        indeg = [0] * n
        for succs in self._succ:
            for t in succs:
                indeg[t] += 1
        frontier = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        while frontier:
            sid = frontier.pop()
            order.append(sid)
            for t in self._succ[sid]:
                indeg[t] -= 1
                if indeg[t] == 0:
                    frontier.append(t)
        if len(order) != n:  # pragma: no cover - construction invariant
            raise AssertionError("segment graph has a cycle")
        return order

    def _compute_reach(self) -> List[int]:
        """Descendant bitmask per segment via reverse-topological DP."""
        reach = [0] * len(self.segments)
        for sid in reversed(self._topo_order()):
            mask = 0
            for t in self._succ[sid]:
                mask |= (1 << t) | reach[t]
            reach[sid] = mask
        return reach

    def _reachability(self) -> List[int]:
        if self._reach is None:
            self._reach = self._compute_reach()
        return self._reach

    def ordered(self, a: Segment, b: Segment) -> bool:
        """True when a path exists between ``a`` and ``b`` (either direction)."""
        reach = self._reachability()
        return bool(reach[a.id] >> b.id & 1) or bool(reach[b.id] >> a.id & 1)

    def happens_before(self, a: Segment, b: Segment) -> bool:
        return bool(self._reachability()[a.id] >> b.id & 1)

    def independent(self, a: Segment, b: Segment) -> bool:
        return a is not b and not self.ordered(a, b)

    def successors(self, seg: Segment) -> List[Segment]:
        return [self.segments[i] for i in self._succ[seg.id]]

    def check_acyclic(self) -> None:
        """Raise if the graph has a cycle (it must be a DAG)."""
        self._topo_order()

    def memory_bytes(self, *, bytes_per_node: int = 64,
                     bytes_per_segment: int = 160) -> int:
        """Simulated footprint of the graph + its interval trees."""
        nodes = sum(len(s.reads) + len(s.writes) for s in self.segments)
        return (nodes * bytes_per_node
                + len(self.segments) * bytes_per_segment
                + self.edge_count * 16)


@dataclass
class _TaskEntry:
    """Per-thread stack entry: the task being executed + its open segment."""

    task: Optional[Task]
    segment: Segment
    merged_into: Optional["_TaskEntry"] = None


@dataclass
class _TaskInfo:
    """What the builder remembers about each task."""

    creation_segment: Optional[Segment] = None
    final_segment: Optional[Segment] = None
    children: List[Task] = field(default_factory=list)
    preds: List[Tuple[Task, Dependence]] = field(default_factory=list)
    group_members: List[Task] = field(default_factory=list)   # if group owner
    annotated: bool = False
    completion_seq: int = -1
    exec_thread: int = -1


class SegmentBuilder:
    """Builds a :class:`SegmentGraph` from runtime events.

    One instance per tool per run.  The owning tool forwards OMPT events (via
    its shim) and access events (after its own symbol filtering) into the
    builder's methods.
    """

    def __init__(self, machine, config: Optional[SegmentModelConfig] = None
                 ) -> None:
        self.machine = machine
        self.config = config or SegmentModelConfig()
        self.graph = SegmentGraph()
        self._entries: Dict[int, List[_TaskEntry]] = {}
        self._info: Dict[int, _TaskInfo] = {}
        self._group_stack: Dict[int, List[List[Task]]] = {}   # task tid -> stacks
        self._task_group: Dict[int, Optional[List[Task]]] = {}
        self._region_fork: Dict[int, Segment] = {}
        self._region_unjoined: Dict[int, List[Segment]] = {}
        self._barrier_join: Dict[Tuple[int, int], Segment] = {}
        self._barrier_absorbed: Set[Tuple[int, int]] = set()
        self._barrier_count: Dict[Tuple[int, int], int] = {}  # (region, thread)
        self._taskwait_prior: Dict[Tuple[int, int], Segment] = {}
        self._group_prior: Dict[Tuple[int, int], List] = {}
        self._mutex_last_final: Dict[int, Segment] = {}   # mutexinoutset addr
        self.event_seq = 0
        self.last_seq_by_thread: Dict[int, int] = {}

    # -- plumbing ------------------------------------------------------------

    def _bump(self, thread_id: int) -> int:
        self.event_seq += 1
        self.last_seq_by_thread[thread_id] = self.event_seq
        return self.event_seq

    def info(self, task: Task) -> _TaskInfo:
        ti = self._info.get(task.tid)
        if ti is None:
            ti = self._info[task.tid] = _TaskInfo()
        return ti

    def _stack(self, thread_id: int) -> List[_TaskEntry]:
        st = self._entries.get(thread_id)
        if st is None:
            st = self._entries[thread_id] = []
        return st

    def _thread_meta(self, thread_id: int) -> Tuple[int, Tuple[int, int]]:
        """(current stack pointer, stack region bounds) of a thread."""
        try:
            tctx = self.machine.context(thread_id)
        except KeyError:
            return 0, (0, 0)
        stack = tctx.stack
        frame = stack.current_frame
        sp = frame.sp if frame is not None else stack.region.end
        return sp, (stack.region.base, stack.region.end)

    def _open(self, thread_id: int, task: Optional[Task], kind: str,
              label_loc=None) -> Segment:
        sp, bounds = self._thread_meta(thread_id)
        seg = self.graph.new_segment(thread_id=thread_id, task=task, kind=kind,
                                     sp_at_start=sp, stack_bounds=bounds,
                                     label_loc=label_loc)
        seg.seq_opened = self._bump(thread_id)
        return seg

    def _close(self, seg: Segment, thread_id: int) -> Segment:
        if seg.open:
            seg.open = False
            seg.seq_closed = self._bump(thread_id)
            try:
                seg.tls_snapshot = self.machine.tls.snapshot(thread_id)
            except KeyError:  # pragma: no cover - threads always registered
                seg.tls_snapshot = None
        return seg

    def current_entry(self, thread_id: int) -> _TaskEntry:
        st = self._stack(thread_id)
        if not st:
            seg = self._open(thread_id, None, "serial")
            st.append(_TaskEntry(task=None, segment=seg))
        return st[-1]

    def current_segment(self, thread_id: int) -> Segment:
        return self.current_entry(thread_id).segment

    def _task_label(self, task: Task):
        return task.create_loc

    def _effectively_sequenced(self, task: Task) -> bool:
        """Is this task sequenced with its creator in this tool's model?

        LLVM's OMPT flag fidelity: INCLUDED (serialized) tasks are
        indistinguishable from UNDEFERRED ones unless annotated.
        """
        if not self.config.honor_undeferred:
            return False
        undeferred_as_seen = bool(
            task.flags & (TaskFlags.UNDEFERRED | TaskFlags.INCLUDED))
        if not undeferred_as_seen:
            return False
        if (self.config.honor_deferrable_annotation
                and self.info(task).annotated
                and not task.flags & TaskFlags.UNDEFERRED):
            # annotation rescues serialized tasks, never genuine if(0)
            return False
        return True

    # -- events: annotation -----------------------------------------------------

    def on_task_annotate_deferrable(self, task: Task) -> None:
        self.info(task).annotated = True

    # -- events: parallel regions -------------------------------------------------

    def on_parallel_begin(self, region, encountering_task: Task,
                          thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        self._region_fork[region.id] = self._close(entry.segment, thread_id)
        self._region_unjoined[region.id] = []

    def on_parallel_end(self, region, encountering_task: Task,
                        thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(entry.segment, seg)       # program order
        for t in region.implicit_tasks:
            if t is not None:
                self.graph.add_edge(self.info(t).final_segment, seg)
        # any task that completed without being absorbed by a barrier join
        for fin in self._region_unjoined.pop(region.id, []):
            self.graph.add_edge(fin, seg)
        entry.segment = seg

    def on_implicit_task_begin(self, region, task: Task,
                               thread_id: int) -> None:
        seg = self._open(thread_id, task, "implicit")
        self.graph.add_edge(self._region_fork.get(region.id), seg)
        self._stack(thread_id).append(_TaskEntry(task=task, segment=seg))
        self.info(task).creation_segment = self._region_fork.get(region.id)

    def on_implicit_task_end(self, region, task: Task, thread_id: int) -> None:
        entry = self._stack(thread_id).pop()
        self.info(task).final_segment = self._close(entry.segment, thread_id)
        self.info(task).completion_seq = self.event_seq
        self.info(task).exec_thread = thread_id

    # -- events: explicit tasks ------------------------------------------------------

    def on_task_create(self, task: Task, parent: Task, thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        creation = self._close(entry.segment, thread_id)
        cont = self._open(thread_id, entry.task,
                          entry.segment.kind if entry.task else "serial")
        self.graph.add_edge(creation, cont)
        entry.segment = cont
        ti = self.info(task)
        ti.creation_segment = creation
        if parent is not None:
            self.info(parent).children.append(task)
        # taskgroup membership (innermost open group of the creator)
        groups = self._group_stack.get(parent.tid if parent else -1)
        if groups:
            groups[-1].append(task)
            self._task_group[task.tid] = groups[-1]
        else:
            inherited = self._task_group.get(parent.tid) if parent else None
            if inherited is not None:
                inherited.append(task)
                self._task_group[task.tid] = inherited

    def on_task_dependence_pair(self, pred: Task, succ: Task,
                                dep: Dependence) -> None:
        if not self.config.honor_dependencies:
            return
        if dep.kind == DepKind.INOUTSET and not self.config.honor_inoutset:
            return
        if (dep.kind == DepKind.MUTEXINOUTSET
                and not self.config.honor_mutexinoutset):
            return
        self.info(succ).preds.append((pred, dep))

    def on_task_schedule_begin(self, task: Task, thread_id: int) -> None:
        ti = self.info(task)
        if task.is_merged and self.config.honor_mergeable is False:
            # Nobody in the paper's tool set models merged-task semantics:
            # the merged task's accesses land in the encountering task's
            # segment (which is exactly why DRB129 is a universal FN).
            parent_entry = self.current_entry(thread_id)
            self._stack(thread_id).append(_TaskEntry(
                task=task, segment=parent_entry.segment,
                merged_into=parent_entry))
            return
        seg = self._open(thread_id, task, "task",
                         label_loc=self._task_label(task))
        self.graph.add_edge(ti.creation_segment, seg)
        for pred, _dep in ti.preds:
            self.graph.add_edge(self.info(pred).final_segment, seg)
        if self.config.honor_mutexinoutset:
            # Taskgrind orders mutexinoutset members by their observed
            # execution order (the runtime's mutual exclusion serializes them,
            # so the observed order is a sound happens-before witness).
            for addr in task.mutexinoutset_addrs:
                self.graph.add_edge(self._mutex_last_final.get(addr), seg)
        self._stack(thread_id).append(_TaskEntry(task=task, segment=seg))

    def on_task_schedule_end(self, task: Task, thread_id: int,
                             completed: bool) -> None:
        entry = self._stack(thread_id).pop()
        ti = self.info(task)
        if entry.merged_into is not None:
            ti.final_segment = entry.merged_into.segment
            ti.completion_seq = self.event_seq
            ti.exec_thread = thread_id
            return
        final = self._close(entry.segment, thread_id)
        if self.config.honor_mutexinoutset:
            for addr in task.mutexinoutset_addrs:
                self._mutex_last_final[addr] = final
        if completed or not self.config.honor_detach:
            ti.final_segment = final
            ti.completion_seq = self.event_seq
            ti.exec_thread = thread_id
            self._after_completion(task, final)
        else:
            # detached: remember the body's final; completion node comes at
            # fulfill time
            ti.final_segment = final

    def _after_completion(self, task: Task, final: Segment) -> None:
        if task.is_merged:
            return
        if self._effectively_sequenced(task):
            # sequenced with the creator: creator's continuation follows
            creator_entry = self._entry_of_task(task.parent)
            if creator_entry is not None:
                self.graph.add_edge(final, creator_entry.segment)
        region = task.region
        if region is not None:
            self._region_unjoined.setdefault(region.id, []).append(final)

    def _entry_of_task(self, task: Optional[Task]) -> Optional[_TaskEntry]:
        if task is None:
            return None
        for st in self._entries.values():
            for entry in st:
                if entry.task is task:
                    return entry
        return None

    def on_task_detach_fulfill(self, task: Task, thread_id: int) -> None:
        if not self.config.honor_detach:
            return
        ti = self.info(task)
        node = self.graph.new_segment(thread_id=thread_id, task=task,
                                      kind="join", virtual=True)
        node.seq_opened = node.seq_closed = self._bump(thread_id)
        self.graph.add_edge(ti.final_segment, node)
        self.graph.add_edge(self.current_segment(thread_id), node)
        # the fulfilling segment itself must be split so the edge is sound
        self._split_current(thread_id, after=node)
        ti.final_segment = node
        ti.completion_seq = self.event_seq
        ti.exec_thread = thread_id
        self._after_completion(task, node)

    def _split_current(self, thread_id: int, after: Segment) -> None:
        entry = self.current_entry(thread_id)
        closed = self._close(entry.segment, thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(closed, seg)
        self.graph.add_edge(after, seg)
        entry.segment = seg

    # -- events: synchronisation ----------------------------------------------------

    def on_sync_begin(self, kind, task: Task, thread_id: int,
                      region=None) -> None:
        from repro.openmp.ompt import SyncKind
        entry = self.current_entry(thread_id)
        if kind == SyncKind.TASKWAIT:
            self._taskwait_prior[(task.tid, thread_id)] = \
                self._close(entry.segment, thread_id)
        elif kind == SyncKind.TASKGROUP:
            members: List[Task] = []
            self._group_stack.setdefault(task.tid, []).append(members)
            self._group_prior.setdefault((task.tid, thread_id), []).append(
                self._close(entry.segment, thread_id))
            # segment continues until group end; open a body segment
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(self._group_prior[(task.tid, thread_id)][-1],
                                seg)
            entry.segment = seg
        elif kind in (SyncKind.BARRIER, SyncKind.BARRIER_IMPLICIT):
            if region is None:
                region = task.region
            if region is None or region.size == 1:
                # serial barrier is a plain scheduling point
                self._taskwait_prior[(task.tid, thread_id)] = \
                    self._close(entry.segment, thread_id)
                return
            key = (region.id, thread_id)
            k = self._barrier_count.get(key, 0)
            self._barrier_count[key] = k + 1
            join = self._barrier_join.get((region.id, k))
            if join is None:
                join = self.graph.new_segment(thread_id=-1, task=None,
                                              kind="join", virtual=True)
                join.seq_opened = self.event_seq
                self._barrier_join[(region.id, k)] = join
            pre = self._close(entry.segment, thread_id)
            self.graph.add_edge(pre, join)
            self._taskwait_prior[(task.tid, thread_id)] = pre

    def on_sync_end(self, kind, task: Task, thread_id: int,
                    region=None) -> None:
        from repro.openmp.ompt import SyncKind
        entry = self.current_entry(thread_id)
        if kind == SyncKind.TASKWAIT:
            prior = self._taskwait_prior.pop((task.tid, thread_id), None)
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(prior, seg)
            if self.config.honor_taskwait:
                for child in self.info(task).children:
                    self.graph.add_edge(self.info(child).final_segment, seg)
            entry.segment = seg
        elif kind == SyncKind.TASKGROUP:
            members = self._group_stack[task.tid].pop()
            prior = self._group_prior[(task.tid, thread_id)].pop()
            closed = self._close(entry.segment, thread_id)
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(closed, seg)
            if self.config.honor_taskgroup:
                for member in members:
                    self.graph.add_edge(self.info(member).final_segment, seg)
            entry.segment = seg
        elif kind in (SyncKind.BARRIER, SyncKind.BARRIER_IMPLICIT):
            if region is None:
                region = task.region
            if region is None or region.size == 1:
                prior = self._taskwait_prior.pop((task.tid, thread_id), None)
                seg = self._open(thread_id, entry.task, entry.segment.kind)
                self.graph.add_edge(prior, seg)
                # a serial barrier still completes every outstanding task
                if region is not None:
                    for fin in self._region_unjoined.get(region.id, []):
                        self.graph.add_edge(fin, seg)
                    self._region_unjoined[region.id] = []
                entry.segment = seg
                return
            key = (region.id, thread_id)
            k = self._barrier_count[key] - 1
            join = self._barrier_join[(region.id, k)]
            if (region.id, k) not in self._barrier_absorbed:
                # first member through: absorb every task completed so far
                # (the barrier guaranteed they all finished)
                for fin in self._region_unjoined.get(region.id, []):
                    self.graph.add_edge(fin, join)
                self._region_unjoined[region.id] = []
                self._barrier_absorbed.add((region.id, k))
            seg = self._open(thread_id, entry.task, entry.segment.kind)
            self.graph.add_edge(join, seg)
            prior = self._taskwait_prior.pop((task.tid, thread_id), None)
            self.graph.add_edge(prior, seg)
            entry.segment = seg

    # -- accesses -----------------------------------------------------------------

    def record_access(self, thread_id: int, addr: int, size: int,
                      is_write: bool, loc: Optional[SourceLocation]) -> None:
        self.current_segment(thread_id).record(addr, size, is_write, loc)
