"""Taskgrind's Qthreads shim: FEB transfers as happens-before edges.

The "subtle extension" the paper anticipates (Section III-A-c): full/empty
bits are not fork/join synchronisation — they are point-to-point transfers.
The segment rule implemented here:

* ``writeEF``/``writeF`` ends the producer's current segment (release) and
  remembers it under ``(addr, generation)``;
* a consuming ``readFE``/``readFF`` ends the consumer's segment and starts a
  new one with an edge from the remembered producer segment (acquire);
* ``fork`` behaves like task creation: the pre-fork segment happens-before
  the child's first segment.

The FEB word's own 8-byte access is attributed *before* the split on the
producer side and *after* it on the consumer side, so the transfer itself is
never reported as a race.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.segments import SegmentBuilder, _TaskEntry
from repro.obs.tracer import get_tracer
from repro.qthreads.runtime import QTask, QthreadsObserver

_TRACER = get_tracer()


class QthreadsSegmentBuilder(SegmentBuilder):
    """Segment construction for the Qthreads runtime."""

    def __init__(self, machine, config=None) -> None:
        super().__init__(machine, config)
        self._fork_creation: Dict[int, object] = {}
        self._feb_release: Dict[Tuple[int, int], object] = {}

    def on_fork(self, parent: Optional[QTask], child: QTask,
                thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        creation = self._close(entry.segment, thread_id)
        cont = self._open(thread_id, entry.task, entry.segment.kind)
        self.hb.fork_child(creation.id, cont.id)
        self.graph.add_edge(creation, cont)
        entry.segment = cont
        self._fork_creation[child.qid] = creation

    def on_task_begin(self, task: QTask, thread_id: int) -> None:
        seg = self._open(thread_id, task, "task", label_loc=task.create_loc)
        creation = self._fork_creation.get(task.qid)
        if creation is not None:
            self.hb.fork_child(creation.id, seg.id)
        self.graph.add_edge(creation, seg)
        self._stack(thread_id).append(_TaskEntry(task=task, segment=seg))

    def on_task_end(self, task: QTask, thread_id: int) -> None:
        entry = self._stack(thread_id).pop()
        self._close(entry.segment, thread_id)

    def on_feb_fill(self, addr: int, generation: int,
                    thread_id: int) -> None:
        # FEB transfers are point-to-point edges, not fork-join — the
        # two-order labeling cannot express them
        self.hb.mark_inexact("qthreads FEB transfer")
        entry = self.current_entry(thread_id)
        release = self._close(entry.segment, thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(release, seg)
        entry.segment = seg
        self._feb_release[(addr, generation)] = release

    def on_feb_consume(self, addr: int, generation: int, thread_id: int,
                       drained: bool) -> None:
        self.hb.mark_inexact("qthreads FEB transfer")
        entry = self.current_entry(thread_id)
        prior = self._close(entry.segment, thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(prior, seg)
        self.graph.add_edge(self._feb_release.get((addr, generation)), seg)
        entry.segment = seg


class TaskgrindQthreadsShim(QthreadsObserver):
    """Forwards Qthreads events to the Taskgrind plugin via client requests."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def _req(self, name: str, payload) -> None:
        if _TRACER.enabled:
            _TRACER.instant(f"shim.qthreads.{name}",
                            self.machine.scheduler.current_id(), cat="shim")
        self.machine.client_requests.request(name, payload)

    def on_fork(self, parent, child, thread_id) -> None:
        self._req("tg_qt_fork", (parent, child, thread_id))

    def on_task_begin(self, task, thread_id) -> None:
        self._req("tg_qt_task_begin", (task, thread_id))

    def on_task_end(self, task, thread_id) -> None:
        self._req("tg_qt_task_end", (task, thread_id))

    def on_feb_fill(self, addr, generation, thread_id) -> None:
        self._req("tg_qt_feb_fill", (addr, generation, thread_id))

    def on_feb_consume(self, addr, generation, thread_id, drained) -> None:
        self._req("tg_qt_feb_consume", (addr, generation, thread_id,
                                        drained))


def attach_qthreads(tool, qt_env) -> None:
    """Wire a TaskgrindTool to a Qthreads environment (after add_tool)."""
    machine = tool.machine
    builder = QthreadsSegmentBuilder(machine, tool.options.segment_model)
    tool.builder = builder
    req = machine.client_requests
    req.subscribe("tg_qt_fork", lambda p: builder.on_fork(*p))
    req.subscribe("tg_qt_task_begin", lambda p: builder.on_task_begin(*p))
    req.subscribe("tg_qt_task_end", lambda p: builder.on_task_end(*p))
    req.subscribe("tg_qt_feb_fill", lambda p: builder.on_feb_fill(*p))
    req.subscribe("tg_qt_feb_consume",
                  lambda p: builder.on_feb_consume(*p))
    qt_env.register(TaskgrindQthreadsShim(machine))
