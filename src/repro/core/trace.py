"""Trace export + offline determinacy-race analysis.

The paper's Section VII: *"The determinacy race post-processing analysis is
an embarrassingly parallel algorithm, but it is currently run sequentially
within the Valgrind framework after the instrumented program execution."*
The natural fix is to externalize it: dump the segment graph (with the
per-segment interval trees and the suppression metadata) at program exit and
run Algorithm 1 offline — sequentially, thread-parallel, or on another
machine entirely.

This module implements that pipeline:

* :func:`save_trace` — serialize a finished run (segment graph, access
  intervals, TLS/stack metadata, the address-space regions and allocation
  records the suppressions and reports need) to a JSON document;
* :func:`load_trace` — reconstruct the graph plus a lightweight
  :class:`OfflineMachineView` that quacks enough like a
  :class:`~repro.machine.machine.Machine` for the suppression engine and
  report builder;
* :func:`analyze_trace` — run any analysis mode + suppressions offline.

CLI: ``python -m repro.core.offline <trace.json> [--mode parallel]``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.analysis import (find_races_indexed, find_races_naive,
                                 find_races_parallel)
from repro.core.reports import RaceReport, build_report
from repro.core.segments import SegmentGraph
from repro.core.suppress import SuppressionConfig, SuppressionEngine
from repro.machine.debuginfo import SourceLocation
from repro.machine.memory import RegionKind
from repro.machine.tls import TlsSnapshot
from repro.obs.metrics import get_registry

TRACE_VERSION = 1


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def _loc_to_list(loc: Optional[SourceLocation]):
    if loc is None:
        return None
    return [loc.file, loc.line, loc.function]


def _loc_from_list(data) -> Optional[SourceLocation]:
    if data is None:
        return None
    return SourceLocation(data[0], data[1], data[2])


def dump_graph(graph: SegmentGraph) -> dict:
    """The segment graph as plain data."""
    segments = []
    for seg in graph.segments:
        snap = seg.tls_snapshot
        segments.append({
            "id": seg.id,
            "thread": seg.thread_id,
            "kind": seg.kind,
            "virtual": seg.virtual,
            "label_loc": _loc_to_list(seg.label_loc),
            "label": seg.label(),
            "sp_at_start": seg.sp_at_start,
            "stack_bounds": list(seg.stack_bounds),
            "reads": seg.reads.pairs(),
            "writes": seg.writes.pairs(),
            "loc_samples": [[lo, hi, w, _loc_to_list(loc)]
                            for lo, hi, w, loc in seg.loc_samples],
            "tls": None if snap is None else {
                "thread": snap.thread_id, "tcb": snap.tcb,
                "generation": snap.generation,
                "dtv": [list(entry) for entry in snap.dtv],
            },
        })
    edges = [[sid, dst] for sid, succs in enumerate(graph._succ)
             for dst in succs]
    return {"segments": segments, "edges": edges}


def dump_environment(machine) -> dict:
    """Regions + allocation records the suppressions/reports consume."""
    regions = [{
        "name": r.name, "base": r.base, "size": r.size,
        "kind": r.kind.value, "owner": r.owner_thread,
    } for r in machine.space.regions]
    blocks = [{
        "addr": b.addr, "size": b.size, "req_size": b.req_size,
        "seq": b.seq, "site": _loc_to_list(b.alloc_site),
        "stack": [_loc_to_list(loc) for loc in b.alloc_stack],
        "freed": b.freed, "retained": b.retained,
    } for b in machine.allocator.all_blocks]
    return {"regions": regions, "blocks": blocks}


def save_trace(tool, machine, path: str) -> None:
    """Serialize a finished Taskgrind run for offline analysis.

    The document embeds the recording run's stats block (when the tool
    provides one), so offline analysis can report the *record* phase —
    including its cost-model virtual time — next to its own phases.
    """
    doc = {
        "version": TRACE_VERSION,
        "graph": dump_graph(tool.builder.graph),
        "environment": dump_environment(machine),
        "suppression": {
            "suppress_tls": tool.options.suppression.suppress_tls,
            "suppress_stack": tool.options.suppression.suppress_stack,
        },
    }
    if hasattr(tool, "stats"):
        doc["stats"] = tool.stats()
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


# ---------------------------------------------------------------------------
# the offline machine view
# ---------------------------------------------------------------------------

@dataclass
class _OfflineRegion:
    name: str
    base: int
    size: int
    kind: RegionKind
    owner_thread: Optional[int]

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class _OfflineBlock:
    addr: int
    size: int
    req_size: int
    seq: int
    alloc_site: Optional[SourceLocation]
    alloc_stack: Tuple[SourceLocation, ...]
    freed: bool
    retained: bool

    @property
    def end(self) -> int:
        return self.addr + self.size


class _OfflineSpace:
    def __init__(self, regions: List[_OfflineRegion]) -> None:
        self._regions = sorted(regions, key=lambda r: r.base)

    def region_at(self, addr: int) -> Optional[_OfflineRegion]:
        for r in self._regions:
            if r.base <= addr < r.end:
                return r
        return None

    def describe(self, addr: int) -> str:
        r = self.region_at(addr)
        if r is None:
            return f"{addr:#x} (unmapped)"
        who = f" of thread {r.owner_thread}" if r.owner_thread is not None \
            else ""
        return f"{addr:#x} ({r.kind.value} '{r.name}'{who} " \
               f"+{addr - r.base:#x})"


class _OfflineAllocator:
    def __init__(self, blocks: List[_OfflineBlock]) -> None:
        self.all_blocks = blocks

    def block_at(self, addr: int, include_retained: bool = True):
        for block in reversed(self.all_blocks):
            if block.addr <= addr < block.end:
                if block.freed and not (block.retained and include_retained):
                    continue
                return block
        return None


class OfflineMachineView:
    """Quacks like a Machine for SuppressionEngine and build_report."""

    def __init__(self, space: _OfflineSpace,
                 allocator: _OfflineAllocator) -> None:
        self.space = space
        self.allocator = allocator


# ---------------------------------------------------------------------------
# deserialization + analysis
# ---------------------------------------------------------------------------

def load_graph(data: dict) -> SegmentGraph:
    graph = SegmentGraph()
    for sd in data["segments"]:
        seg = graph.new_segment(
            thread_id=sd["thread"], task=None, kind=sd["kind"],
            virtual=sd["virtual"], sp_at_start=sd["sp_at_start"],
            stack_bounds=tuple(sd["stack_bounds"]),
            label_loc=_loc_from_list(sd["label_loc"]))
        assert seg.id == sd["id"], "trace ids must be dense and ordered"
        seg.open = False
        for lo, hi in sd["reads"]:
            seg.reads.insert(lo, hi)
        for lo, hi in sd["writes"]:
            seg.writes.insert(lo, hi)
        seg.loc_samples = [(lo, hi, w, _loc_from_list(loc))
                           for lo, hi, w, loc in sd["loc_samples"]]
        if sd["tls"] is not None:
            t = sd["tls"]
            seg.tls_snapshot = TlsSnapshot(
                thread_id=t["thread"], tcb=t["tcb"],
                generation=t["generation"],
                dtv=tuple(tuple(entry) for entry in t["dtv"]))
    for src, dst in data["edges"]:
        graph.add_edge(graph.segments[src], graph.segments[dst])
    return graph


def load_environment(data: dict) -> OfflineMachineView:
    regions = [_OfflineRegion(name=r["name"], base=r["base"], size=r["size"],
                              kind=RegionKind(r["kind"]),
                              owner_thread=r["owner"])
               for r in data["regions"]]
    blocks = [_OfflineBlock(addr=b["addr"], size=b["size"],
                            req_size=b["req_size"], seq=b["seq"],
                            alloc_site=_loc_from_list(b["site"]),
                            alloc_stack=tuple(_loc_from_list(s)
                                              for s in b["stack"]),
                            freed=b["freed"], retained=b["retained"])
              for b in data["blocks"]]
    return OfflineMachineView(_OfflineSpace(regions),
                              _OfflineAllocator(blocks))


def load_trace(path: str) -> Tuple[SegmentGraph, OfflineMachineView, dict]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {doc.get('version')}")
    return load_graph(doc["graph"]), load_environment(doc["environment"]), \
        doc.get("suppression", {})


def load_trace_full(path: str) -> Tuple[SegmentGraph, OfflineMachineView,
                                        dict, Optional[dict]]:
    """:func:`load_trace` plus the embedded record-time stats block."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("version") != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {doc.get('version')}")
    return (load_graph(doc["graph"]), load_environment(doc["environment"]),
            doc.get("suppression", {}), doc.get("stats"))


def analyze_trace(path: str, *, mode: str = "indexed",
                  workers: int = 4,
                  explain: bool = False) -> List[RaceReport]:
    """The full offline pipeline: load, Algorithm 1, suppress, report."""
    reports, _stats = analyze_trace_with_stats(path, mode=mode,
                                               workers=workers,
                                               explain=explain)
    return reports


def analyze_trace_with_stats(path: str, *, mode: str = "indexed",
                             workers: int = 4, explain: bool = False
                             ) -> Tuple[List[RaceReport], dict]:
    """The offline pipeline with a per-phase stats document.

    The returned document mirrors the online tool's shape: the embedded
    record-phase stats (with their cost-model virtual time) under
    ``"record_run"``, the offline load/analysis/suppress/report phase
    timings under ``"phases"``, plus analysis and suppression counters.
    The phase timings are **per-run deltas** — two back-to-back analyses in
    one process each report only their own work, not the registry's
    cumulative process-lifetime totals.
    """
    from repro.core.reports import build_witness
    from repro.obs.tracer import get_tracer
    reg = get_registry()
    baseline = reg.mark()
    with reg.phase("offline"):
        with reg.phase("offline.load"):
            graph, view, supp_flags, record_stats = load_trace_full(path)
        if mode == "naive":
            candidates = find_races_naive(graph)
        elif mode == "parallel":
            candidates = find_races_parallel(graph, workers=workers)
        else:
            candidates = find_races_indexed(graph)
        config = SuppressionConfig(
            suppress_tls=supp_flags.get("suppress_tls", True),
            suppress_stack=supp_flags.get("suppress_stack", True))
        engine = SuppressionEngine(view, config)
        surviving = engine.filter_all(candidates)
        with reg.phase("report"):
            reports = [build_report(view, c) for c in surviving]
            if explain:
                with reg.phase("explain"):
                    for r in reports:
                        r.witness = build_witness(graph, r)
            tracer = get_tracer()
            if tracer.enabled:
                for r in reports:
                    tracer.race_flow(r.s1.id, r.s2.id,
                                     t1=r.s1.thread_id, t2=r.s2.thread_id,
                                     args={
                        "label1": r.s1.label(), "label2": r.s2.label(),
                        "bytes": r.ranges.total_bytes})
    stats = {
        "schema": "taskgrind-offline-stats/1",
        "trace": path,
        "analysis": {
            "mode": mode,
            "raw_candidates": len(candidates),
            "reports": len(reports),
        },
        "suppress": engine.stats_doc(),
        "graph": graph.stats(),
        "phases": reg.delta_since(baseline)["phases"],
        "record_run": record_stats,
    }
    reg.publish("offline", stats)
    return reports, stats
