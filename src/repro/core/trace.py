"""Trace export + offline determinacy-race analysis.

The paper's Section VII: *"The determinacy race post-processing analysis is
an embarrassingly parallel algorithm, but it is currently run sequentially
within the Valgrind framework after the instrumented program execution."*
The natural fix is to externalize it: dump the segment graph (with the
per-segment interval trees and the suppression metadata) at program exit and
run Algorithm 1 offline — sequentially, thread-parallel, or on another
machine entirely.

This module implements that pipeline:

* :func:`save_trace` — serialize a finished run to the chunked,
  per-chunk-checksummed ``taskgrind-trace/2`` stream (atomic tmp+rename,
  flushed chunk-by-chunk so a crashed writer loses at most one chunk);
* :func:`load_trace` / :func:`load_trace_full` — strict readers that raise
  the :mod:`repro.errors` trace taxonomy on any damage;
* :func:`load_trace_salvaged` — the crash-tolerant reader: recovers the
  longest valid prefix of a truncated or corrupted trace and reports what
  was lost in a :class:`TraceCoverage` block instead of raising;
* :func:`analyze_trace` — run any analysis mode + suppressions offline.

Trace format (version 2)
------------------------
One JSON object per line.  Line 0 is the header chunk (declares totals);
then ``segments`` chunks (``chunk_segments`` graph nodes each, ids dense
and in order), ``edges`` chunks, one ``environment``, one ``suppression``,
an optional ``stats`` chunk, and an ``end`` footer.  Every line carries a
CRC-32 of its canonical payload JSON plus the cost-model virtual time at
write — so the salvage reader can checksum each chunk independently and
report the last good vtime of a torn stream.  Version-1 single-document
traces remain readable through every entry point.

CLI: ``python -m repro.core.offline <trace.json> [--mode parallel]``.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import IO, List, Optional, Tuple

from repro.core.analysis import (PartialAnalysis, find_races_indexed,
                                 find_races_naive, find_races_supervised)
from repro.core.reports import RaceReport, build_report
from repro.core.segments import SegmentGraph
from repro.core.suppress import SuppressionConfig, SuppressionEngine
from repro.errors import (TraceCorruptionError, TraceFormatError,
                          TraceVersionError)
from repro.faults.inject import get_injector
from repro.machine.debuginfo import SourceLocation
from repro.machine.memory import RegionKind
from repro.machine.tls import TlsSnapshot
from repro.obs.metrics import get_registry

TRACE_VERSION = 2
TRACE_SCHEMA = "taskgrind-trace/2"
LEGACY_TRACE_VERSION = 1

#: graph nodes per ``segments`` chunk — small enough that one corrupt chunk
#: costs a bounded slice of the run, large enough that chunk framing stays
#: a rounding error of the document size
DEFAULT_CHUNK_SEGMENTS = 256
#: edges per ``edges`` chunk
DEFAULT_CHUNK_EDGES = 4096

_FAULTS = get_injector()


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------

def _loc_to_list(loc: Optional[SourceLocation]):
    if loc is None:
        return None
    return [loc.file, loc.line, loc.function]


def _loc_from_list(data) -> Optional[SourceLocation]:
    if data is None:
        return None
    return SourceLocation(data[0], data[1], data[2])


def _seg_to_dict(seg) -> dict:
    snap = seg.tls_snapshot
    return {
        "id": seg.id,
        "thread": seg.thread_id,
        "kind": seg.kind,
        "virtual": seg.virtual,
        "label_loc": _loc_to_list(seg.label_loc),
        "label": seg.label(),
        "sp_at_start": seg.sp_at_start,
        "stack_bounds": list(seg.stack_bounds),
        "reads": seg.reads.pairs(),
        "writes": seg.writes.pairs(),
        "loc_samples": [[lo, hi, w, _loc_to_list(loc)]
                        for lo, hi, w, loc in seg.loc_samples],
        "tls": None if snap is None else {
            "thread": snap.thread_id, "tcb": snap.tcb,
            "generation": snap.generation,
            "dtv": [list(entry) for entry in snap.dtv],
        },
    }


def dump_graph(graph: SegmentGraph) -> dict:
    """The segment graph as plain data."""
    segments = [_seg_to_dict(seg) for seg in graph.segments]
    edges = [[sid, dst] for sid, succs in enumerate(graph._succ)
             for dst in succs]
    return {"segments": segments, "edges": edges}


def dump_environment(machine) -> dict:
    """Regions + allocation records the suppressions/reports consume."""
    regions = [{
        "name": r.name, "base": r.base, "size": r.size,
        "kind": r.kind.value, "owner": r.owner_thread,
    } for r in machine.space.regions]
    blocks = [{
        "addr": b.addr, "size": b.size, "req_size": b.req_size,
        "seq": b.seq, "site": _loc_to_list(b.alloc_site),
        "stack": [_loc_to_list(loc) for loc in b.alloc_stack],
        "freed": b.freed, "retained": b.retained,
    } for b in machine.allocator.all_blocks]
    return {"regions": regions, "blocks": blocks}


def _payload_crc(payload) -> int:
    """CRC-32 over the canonical (sorted, compact) payload JSON."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canon.encode("utf-8")) & 0xFFFFFFFF


class _ChunkWriter:
    """Emits checksummed chunk lines, consulting the fault injector.

    Flushes the OS buffer after every chunk, so a dying writer leaves the
    stream torn mid-line at worst — exactly what the salvage reader is
    built to survive.
    """

    def __init__(self, fh: IO[bytes], vtime: float = 0.0) -> None:
        self._fh = fh
        self._seq = 0
        self.vtime = vtime
        self.truncated = False

    def emit(self, kind: str, payload, **extra) -> None:
        if self.truncated:
            return
        doc = {"seq": self._seq, "kind": kind,
               "vtime": self.vtime, "crc": _payload_crc(payload),
               "payload": payload}
        doc.update(extra)
        line = json.dumps(doc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        line = _FAULTS.on_trace_chunk(self._seq, line)
        if line is None:
            # injected truncation: model the torn half-write of a crash
            self._fh.write(b'{"seq": %d, "kind": "torn' % self._seq)
            self._fh.flush()
            self.truncated = True
            return
        self._fh.write(line + b"\n")
        self._fh.flush()
        self._seq += 1

    @property
    def chunks(self) -> int:
        return self._seq


def save_trace(tool, machine, path: str, *,
               version: int = TRACE_VERSION,
               chunk_segments: int = DEFAULT_CHUNK_SEGMENTS) -> None:
    """Serialize a Taskgrind run for offline analysis — atomically.

    The document embeds the recording run's stats block (when the tool
    provides one), so offline analysis can report the *record* phase —
    including its cost-model virtual time — next to its own phases.

    The write goes to ``path + ".tmp"`` and is renamed into place only
    once the stream is complete (or deliberately truncated by a fault
    plan): an interrupted save never leaves a half-written ``path``
    behind, and a pre-existing trace at ``path`` survives the crash.
    ``version=1`` writes the legacy single-document format.
    """
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            if version == LEGACY_TRACE_VERSION:
                _write_legacy(tool, machine, fh)
            elif version == TRACE_VERSION:
                _write_v2(tool, machine, fh, chunk_segments=chunk_segments)
            else:
                raise ValueError(f"cannot write trace version {version}")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def checkpoint_trace(tool, machine, path: str) -> None:
    """Mid-run trace snapshot (periodic flush during recording).

    Safe to call while the instrumented program is still running: reading
    the segment trees flushes any write-combined pending accesses, and
    recording resumes into fresh buffers afterwards.  Each checkpoint is a
    complete, atomic trace — a crash between checkpoints costs only the
    accesses since the last one.
    """
    save_trace(tool, machine, path)


def _write_legacy(tool, machine, fh: IO[bytes]) -> None:
    doc = {
        "version": LEGACY_TRACE_VERSION,
        "graph": dump_graph(tool.builder.graph),
        "environment": dump_environment(machine),
        "suppression": _supp_flags(tool),
    }
    if hasattr(tool, "stats"):
        doc["stats"] = tool.stats()
    fh.write(json.dumps(doc).encode("utf-8"))


def _supp_flags(tool) -> dict:
    return {
        "suppress_tls": tool.options.suppression.suppress_tls,
        "suppress_stack": tool.options.suppression.suppress_stack,
    }


def _write_v2(tool, machine, fh: IO[bytes], *,
              chunk_segments: int = DEFAULT_CHUNK_SEGMENTS) -> None:
    graph = tool.builder.graph
    segments = [_seg_to_dict(seg) for seg in graph.segments]
    edges = [[sid, dst] for sid, succs in enumerate(graph._succ)
             for dst in succs]
    # each edge travels with the chunk of its HIGHEST-id endpoint: any
    # contiguous segment prefix then carries the *complete* happens-before
    # relation among its segments.  A salvage that recovered segments
    # without their orderings would see everything as concurrent and
    # invent races — losing an edge must always lose an endpoint with it.
    edges_by_chunk: dict = {}
    for src, dst in edges:
        edges_by_chunk.setdefault(max(src, dst) // chunk_segments,
                                  []).append([src, dst])
    vtime = float(machine.cost.vtime_ops) \
        if hasattr(machine, "cost") else 0.0
    w = _ChunkWriter(fh, vtime=vtime)
    w.emit("header", {
        "segments": len(segments),
        "edges": len(edges),
        "chunk_segments": chunk_segments,
    }, schema=TRACE_SCHEMA, version=TRACE_VERSION)
    for index, start in enumerate(range(0, len(segments), chunk_segments)):
        batch = segments[start:start + chunk_segments]
        w.emit("segments", {"start": start, "segments": batch,
                            "edges": edges_by_chunk.get(index, [])})
    w.emit("environment", dump_environment(machine))
    w.emit("suppression", _supp_flags(tool))
    if hasattr(tool, "stats"):
        w.emit("stats", tool.stats())
    w.emit("end", {"chunks": w.chunks})


# ---------------------------------------------------------------------------
# the offline machine view
# ---------------------------------------------------------------------------

@dataclass
class _OfflineRegion:
    name: str
    base: int
    size: int
    kind: RegionKind
    owner_thread: Optional[int]

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class _OfflineBlock:
    addr: int
    size: int
    req_size: int
    seq: int
    alloc_site: Optional[SourceLocation]
    alloc_stack: Tuple[SourceLocation, ...]
    freed: bool
    retained: bool

    @property
    def end(self) -> int:
        return self.addr + self.size


class _OfflineSpace:
    def __init__(self, regions: List[_OfflineRegion]) -> None:
        self._regions = sorted(regions, key=lambda r: r.base)

    def region_at(self, addr: int) -> Optional[_OfflineRegion]:
        for r in self._regions:
            if r.base <= addr < r.end:
                return r
        return None

    def describe(self, addr: int) -> str:
        r = self.region_at(addr)
        if r is None:
            return f"{addr:#x} (unmapped)"
        who = f" of thread {r.owner_thread}" if r.owner_thread is not None \
            else ""
        return f"{addr:#x} ({r.kind.value} '{r.name}'{who} " \
               f"+{addr - r.base:#x})"


class _OfflineAllocator:
    def __init__(self, blocks: List[_OfflineBlock]) -> None:
        self.all_blocks = blocks

    def block_at(self, addr: int, include_retained: bool = True):
        for block in reversed(self.all_blocks):
            if block.addr <= addr < block.end:
                if block.freed and not (block.retained and include_retained):
                    continue
                return block
        return None


class OfflineMachineView:
    """Quacks like a Machine for SuppressionEngine and build_report."""

    def __init__(self, space: _OfflineSpace,
                 allocator: _OfflineAllocator) -> None:
        self.space = space
        self.allocator = allocator


# ---------------------------------------------------------------------------
# deserialization
# ---------------------------------------------------------------------------

def _load_segment(graph: SegmentGraph, sd: dict) -> None:
    seg = graph.new_segment(
        thread_id=sd["thread"], task=None, kind=sd["kind"],
        virtual=sd["virtual"], sp_at_start=sd["sp_at_start"],
        stack_bounds=tuple(sd["stack_bounds"]),
        label_loc=_loc_from_list(sd["label_loc"]))
    assert seg.id == sd["id"], "trace ids must be dense and ordered"
    seg.open = False
    for lo, hi in sd["reads"]:
        seg.reads.insert(lo, hi)
    for lo, hi in sd["writes"]:
        seg.writes.insert(lo, hi)
    seg.loc_samples = [(lo, hi, w, _loc_from_list(loc))
                       for lo, hi, w, loc in sd["loc_samples"]]
    if sd["tls"] is not None:
        t = sd["tls"]
        seg.tls_snapshot = TlsSnapshot(
            thread_id=t["thread"], tcb=t["tcb"],
            generation=t["generation"],
            dtv=tuple(tuple(entry) for entry in t["dtv"]))


def load_graph(data: dict) -> SegmentGraph:
    graph = SegmentGraph()
    for sd in data["segments"]:
        _load_segment(graph, sd)
    for src, dst in data["edges"]:
        graph.add_edge(graph.segments[src], graph.segments[dst])
    return graph


def load_environment(data: dict) -> OfflineMachineView:
    regions = [_OfflineRegion(name=r["name"], base=r["base"], size=r["size"],
                              kind=RegionKind(r["kind"]),
                              owner_thread=r["owner"])
               for r in data["regions"]]
    blocks = [_OfflineBlock(addr=b["addr"], size=b["size"],
                            req_size=b["req_size"], seq=b["seq"],
                            alloc_site=_loc_from_list(b["site"]),
                            alloc_stack=tuple(_loc_from_list(s)
                                              for s in b["stack"]),
                            freed=b["freed"], retained=b["retained"])
              for b in data["blocks"]]
    return OfflineMachineView(_OfflineSpace(regions),
                              _OfflineAllocator(blocks))


def _empty_view() -> OfflineMachineView:
    return OfflineMachineView(_OfflineSpace([]), _OfflineAllocator([]))


# ---------------------------------------------------------------------------
# coverage accounting + the salvage reader
# ---------------------------------------------------------------------------

@dataclass
class TraceCoverage:
    """What a (possibly damaged) trace load actually recovered."""

    complete: bool = True
    trace_version: int = TRACE_VERSION
    segments_total: Optional[int] = None     # None: header lost too
    segments_recovered: int = 0
    edges_total: Optional[int] = None
    edges_recovered: int = 0
    edges_dropped_dangling: int = 0          # edges into lost segments
    chunks_valid: int = 0
    chunks_corrupt: int = 0
    first_bad_chunk: Optional[int] = None
    first_bad_byte: Optional[int] = None
    #: cost-model vtime stamped on the newest chunk that survived
    last_good_vtime: float = 0.0
    environment_recovered: bool = True
    errors: List[str] = field(default_factory=list)

    @property
    def segments_lost(self) -> Optional[int]:
        if self.segments_total is None:
            return None
        return self.segments_total - self.segments_recovered

    def to_dict(self) -> dict:
        return {
            "schema": "taskgrind-trace-coverage/1",
            "complete": self.complete,
            "trace_version": self.trace_version,
            "segments": {"total": self.segments_total,
                         "recovered": self.segments_recovered,
                         "lost": self.segments_lost},
            "edges": {"total": self.edges_total,
                      "recovered": self.edges_recovered,
                      "dropped_dangling": self.edges_dropped_dangling},
            "chunks": {"valid": self.chunks_valid,
                       "corrupt": self.chunks_corrupt,
                       "first_bad": self.first_bad_chunk,
                       "first_bad_byte": self.first_bad_byte},
            "last_good_vtime": self.last_good_vtime,
            "environment_recovered": self.environment_recovered,
            "errors": list(self.errors),
        }

    def summary(self) -> str:
        if self.complete:
            return "trace complete"
        seg = f"{self.segments_recovered}"
        if self.segments_total is not None:
            seg += f"/{self.segments_total}"
        return (f"trace salvaged: {seg} segments, "
                f"{self.edges_recovered} edges recovered, "
                f"{self.chunks_corrupt} bad chunk(s), "
                f"last good vtime {self.last_good_vtime:.0f}")


@dataclass
class SalvagedTrace:
    """Everything :func:`load_trace_salvaged` recovered."""

    graph: SegmentGraph
    view: OfflineMachineView
    suppression: dict
    stats: Optional[dict]
    coverage: TraceCoverage


@dataclass
class _RawChunk:
    seq: int
    kind: str
    vtime: float
    payload: dict
    byte_offset: int


def _scan_chunks(path: str, data: bytes, cov: TraceCoverage
                 ) -> List[_RawChunk]:
    """Parse + checksum every line independently; book damage in ``cov``."""
    chunks: List[_RawChunk] = []
    offset = 0
    for raw in data.split(b"\n"):
        line = raw.strip()
        line_offset = offset
        offset += len(raw) + 1
        if not line:
            continue
        err: Optional[str] = None
        try:
            doc = json.loads(line)
            if not isinstance(doc, dict):
                err = "chunk line is not a JSON object"
            else:
                payload = doc.get("payload")
                crc = doc.get("crc")
                seq = doc.get("seq")
                kind = doc.get("kind")
                if payload is None or crc is None or seq is None \
                        or kind is None:
                    err = "chunk envelope missing seq/kind/crc/payload"
                elif _payload_crc(payload) != crc:
                    err = (f"checksum mismatch (stored {crc}, computed "
                           f"{_payload_crc(payload)})")
        except json.JSONDecodeError as exc:
            err = f"undecodable chunk line: {exc.msg}"
        if err is not None:
            cov.chunks_corrupt += 1
            cov.complete = False
            if cov.first_bad_byte is None:
                cov.first_bad_byte = line_offset
                try:
                    cov.first_bad_chunk = json.loads(line).get("seq")
                except (json.JSONDecodeError, AttributeError):
                    cov.first_bad_chunk = None
            cov.errors.append(f"byte {line_offset}: {err}")
            continue
        cov.chunks_valid += 1
        cov.last_good_vtime = max(cov.last_good_vtime,
                                  float(doc.get("vtime", 0.0)))
        chunks.append(_RawChunk(seq=doc["seq"], kind=doc["kind"],
                                vtime=float(doc.get("vtime", 0.0)),
                                payload=doc["payload"],
                                byte_offset=line_offset))
    return chunks


def _assemble_v2(path: str, chunks: List[_RawChunk],
                 cov: TraceCoverage) -> SalvagedTrace:
    """Rebuild the longest valid prefix from independently-valid chunks."""
    header = next((c for c in chunks if c.kind == "header"), None)
    if header is not None:
        cov.segments_total = header.payload.get("segments")
        cov.edges_total = header.payload.get("edges")
    else:
        cov.complete = False
        cov.errors.append("header chunk lost; totals unknown")

    graph = SegmentGraph()
    next_id = 0
    seg_stream_broken = False
    inline_edges: List[list] = []
    for c in chunks:
        if c.kind != "segments":
            continue
        # edges ride in the chunk of their highest-id endpoint, so the
        # contiguous prefix below is guaranteed to carry every ordering
        # among its own segments.  Edges from *rejected* chunks are still
        # harvested: any that land inside the prefix are genuine
        # happens-before facts (extra ordering can only remove races,
        # never invent them); the dangling filter drops the rest.
        inline_edges.extend(c.payload.get("edges", []))
        if seg_stream_broken or c.payload.get("start") != next_id:
            # a chunk before this one was lost: ids would no longer be
            # dense, so everything from the gap on is unrecoverable
            seg_stream_broken = True
            cov.complete = False
            continue
        try:
            for sd in c.payload["segments"]:
                _load_segment(graph, sd)
                next_id += 1
        except (KeyError, TypeError, AssertionError) as exc:
            seg_stream_broken = True
            cov.complete = False
            cov.errors.append(
                f"segment chunk {c.seq}: unreadable segment after id "
                f"{next_id - 1}: {exc!r}")
    cov.segments_recovered = len(graph.segments)
    if cov.segments_total is not None \
            and cov.segments_recovered < cov.segments_total:
        cov.complete = False

    n = len(graph.segments)
    edge_lists = [inline_edges] + [c.payload.get("edges", [])
                                   for c in chunks if c.kind == "edges"]
    for edges in edge_lists:
        for src, dst in edges:
            if src < n and dst < n:
                graph.add_edge(graph.segments[src], graph.segments[dst])
                cov.edges_recovered += 1
            else:
                cov.edges_dropped_dangling += 1

    env = next((c for c in chunks if c.kind == "environment"), None)
    if env is not None:
        try:
            view = load_environment(env.payload)
        except (KeyError, TypeError, ValueError) as exc:
            view = _empty_view()
            cov.environment_recovered = False
            cov.complete = False
            cov.errors.append(f"environment chunk unreadable: {exc!r}")
    else:
        view = _empty_view()
        cov.environment_recovered = False
        cov.complete = False
        cov.errors.append("environment chunk lost; reports will lack "
                          "allocation context and TLS/stack suppression "
                          "evidence")

    supp_chunk = next((c for c in chunks if c.kind == "suppression"), None)
    supp = dict(supp_chunk.payload) if supp_chunk is not None else {}
    stats_chunk = next((c for c in chunks if c.kind == "stats"), None)
    stats = stats_chunk.payload if stats_chunk is not None else None

    end = next((c for c in chunks if c.kind == "end"), None)
    if end is None:
        cov.complete = False
        cov.errors.append("end marker missing: trace truncated")
    return SalvagedTrace(graph=graph, view=view, suppression=supp,
                         stats=stats, coverage=cov)


def _load_legacy(path: str, doc: dict, cov: TraceCoverage) -> SalvagedTrace:
    version = doc.get("version")
    if version != LEGACY_TRACE_VERSION:
        raise TraceVersionError(path, version,
                                f"versions 1-{TRACE_VERSION}")
    try:
        graph = load_graph(doc["graph"])
        view = load_environment(doc["environment"])
    except (KeyError, TypeError, ValueError, AssertionError) as exc:
        raise TraceFormatError(
            path, f"legacy v1 document is structurally broken: {exc!r}") \
            from exc
    cov.trace_version = LEGACY_TRACE_VERSION
    cov.segments_total = cov.segments_recovered = len(graph.segments)
    cov.edges_total = cov.edges_recovered = graph.edge_count
    return SalvagedTrace(graph=graph, view=view,
                         suppression=doc.get("suppression", {}),
                         stats=doc.get("stats"), coverage=cov)


def load_trace_salvaged(path: str) -> SalvagedTrace:
    """Crash-tolerant load: recover the longest valid prefix.

    Never raises on damage within the stream — a truncated file, a
    corrupt middle chunk or an outright empty file all come back as a
    (possibly empty) graph plus a :class:`TraceCoverage` explaining the
    loss.  Only a missing file or a legacy/unknown *format* still raises
    (there is nothing to salvage from the wrong format).
    """
    with open(path, "rb") as fh:
        data = fh.read()
    cov = TraceCoverage()
    first_line = data.split(b"\n", 1)[0].strip()
    if not first_line:
        cov.complete = False
        cov.segments_total = None
        cov.errors.append("empty trace file")
        return SalvagedTrace(graph=SegmentGraph(), view=_empty_view(),
                             suppression={}, stats=None, coverage=cov)
    header_doc: Optional[dict] = None
    try:
        header_doc = json.loads(first_line)
    except json.JSONDecodeError:
        header_doc = None
    if isinstance(header_doc, dict) and "graph" in header_doc:
        # legacy single-document trace (version key checked inside)
        return _load_legacy(path, header_doc, cov)
    if isinstance(header_doc, dict) and "version" in header_doc \
            and "kind" not in header_doc:
        # a single-line document claiming some other version
        return _load_legacy(path, header_doc, cov)
    if isinstance(header_doc, dict) and header_doc.get("kind") == "header" \
            and header_doc.get("version") != TRACE_VERSION:
        # an intact v2-shaped header from some other format revision:
        # wrong-format, not damage — salvaging it would misread every chunk
        raise TraceVersionError(path, header_doc.get("version"),
                                f"versions 1-{TRACE_VERSION}")
    chunks = _scan_chunks(path, data, cov)
    return _assemble_v2(path, chunks, cov)


def assemble_chunks(chunk_docs, *, label: str = "<uploaded>"
                    ) -> SalvagedTrace:
    """Assemble already-validated v2 chunk envelopes into a trace.

    The ingestion server's adapter onto the salvage reader: its upload
    edge has already parsed and CRC-checked every envelope (rejecting bad
    ones at the wire), so this skips :func:`_scan_chunks` and goes
    straight to dense-prefix assembly.  ``chunk_docs`` are the parsed
    ``{seq, kind, vtime, crc, payload}`` dicts in accepted order.
    """
    cov = TraceCoverage()
    chunks: List[_RawChunk] = []
    for doc in chunk_docs:
        cov.chunks_valid += 1
        cov.last_good_vtime = max(cov.last_good_vtime,
                                  float(doc.get("vtime", 0.0)))
        chunks.append(_RawChunk(seq=doc["seq"], kind=doc["kind"],
                                vtime=float(doc.get("vtime", 0.0)),
                                payload=doc["payload"], byte_offset=0))
    if not chunks:
        cov.complete = False
        cov.segments_total = None
        cov.errors.append("no chunks uploaded")
        return SalvagedTrace(graph=SegmentGraph(), view=_empty_view(),
                             suppression={}, stats=None, coverage=cov)
    return _assemble_v2(label, chunks, cov)


# ---------------------------------------------------------------------------
# strict loaders (raise the trace-error taxonomy)
# ---------------------------------------------------------------------------

def _load_strict(path: str) -> SalvagedTrace:
    try:
        salvaged = load_trace_salvaged(path)
    except TraceFormatError:
        raise
    except (OSError, ValueError) as exc:
        raise TraceFormatError(path, repr(exc)) from exc
    cov = salvaged.coverage
    if cov.complete:
        return salvaged
    if not cov.chunks_valid and not cov.chunks_corrupt \
            and cov.segments_recovered == 0:
        raise TraceFormatError(path, cov.errors[0] if cov.errors
                               else "no recognizable trace content")
    raise TraceCorruptionError(
        path,
        byte_offset=(cov.first_bad_byte if cov.first_bad_byte is not None
                     else -1),
        chunk_seq=cov.first_bad_chunk,
        reason="; ".join(cov.errors) or "incomplete trace")


def load_trace(path: str) -> Tuple[SegmentGraph, OfflineMachineView, dict]:
    """Strict load: any damage raises the :mod:`repro.errors` taxonomy.

    :class:`~repro.errors.TraceVersionError` for unknown versions (it
    subclasses ``ValueError``, preserving the pre-taxonomy contract),
    :class:`~repro.errors.TraceCorruptionError` for checksum/truncation
    damage with the byte offset of the first bad chunk, and
    :class:`~repro.errors.TraceFormatError` for files that are not traces.
    """
    s = _load_strict(path)
    return s.graph, s.view, s.suppression


def load_trace_full(path: str) -> Tuple[SegmentGraph, OfflineMachineView,
                                        dict, Optional[dict]]:
    """:func:`load_trace` plus the embedded record-time stats block."""
    s = _load_strict(path)
    return s.graph, s.view, s.suppression, s.stats


# ---------------------------------------------------------------------------
# offline analysis
# ---------------------------------------------------------------------------

@dataclass
class LoadedAnalysis:
    """Result of :func:`analyze_loaded`: reports + the pipeline's books."""

    reports: List[RaceReport]
    raw_candidates: int
    partial: Optional[PartialAnalysis]
    engine: SuppressionEngine


def analyze_loaded(graph: SegmentGraph, view: OfflineMachineView,
                   supp_flags: dict, *,
                   coverage: Optional[TraceCoverage] = None,
                   mode: str = "indexed", workers: int = 4,
                   explain: bool = False, kernel: str = "auto",
                   deadline_s: Optional[float] = None,
                   max_retries: int = 2) -> LoadedAnalysis:
    """Algorithm 1 + suppression + reporting on an already-loaded trace.

    The shared back half of the offline pipeline: the file-based
    :func:`analyze_trace_with_stats` and the ingestion server's job
    executor (which assembles graphs from uploaded chunks and caches them
    by content hash) both funnel through here, so their reports are
    byte-identical for the same trace content.  ``deadline_s`` /
    ``max_retries`` only apply to ``mode="parallel"`` (supervised).
    """
    from repro.core.reports import build_witness
    from repro.obs.tracer import get_tracer
    reg = get_registry()
    partial: Optional[PartialAnalysis] = None
    if mode == "naive":
        candidates = find_races_naive(graph)
    elif mode == "parallel":
        partial = find_races_supervised(graph, workers=workers,
                                        deadline_s=deadline_s,
                                        max_retries=max_retries,
                                        kernel=kernel)
        candidates = partial.candidates
    else:
        candidates = find_races_indexed(graph, kernel=kernel)
    config = SuppressionConfig(
        suppress_tls=supp_flags.get("suppress_tls", True),
        suppress_stack=supp_flags.get("suppress_stack", True))
    engine = SuppressionEngine(view, config)
    surviving = engine.filter_all(candidates)
    with reg.phase("report"):
        reports = [build_report(view, c) for c in surviving]
        notes = []
        if coverage is not None and not coverage.complete:
            notes.append("incomplete evidence: " + coverage.summary())
        if partial is not None and not partial.complete:
            notes.append("incomplete analysis: " + partial.summary())
        for note in notes:
            for r in reports:
                r.notes = r.notes + (note,)
        if explain:
            with reg.phase("explain"):
                for r in reports:
                    r.witness = build_witness(graph, r)
        tracer = get_tracer()
        if tracer.enabled:
            for r in reports:
                tracer.race_flow(r.s1.id, r.s2.id,
                                 t1=r.s1.thread_id, t2=r.s2.thread_id,
                                 args={
                    "label1": r.s1.label(), "label2": r.s2.label(),
                    "bytes": r.ranges.total_bytes})
    return LoadedAnalysis(reports=reports, raw_candidates=len(candidates),
                          partial=partial, engine=engine)


def analyze_trace(path: str, *, mode: str = "indexed",
                  workers: int = 4,
                  explain: bool = False,
                  strict: bool = False,
                  kernel: str = "auto") -> List[RaceReport]:
    """The full offline pipeline: load, Algorithm 1, suppress, report."""
    reports, _stats = analyze_trace_with_stats(path, mode=mode,
                                               workers=workers,
                                               explain=explain,
                                               strict=strict,
                                               kernel=kernel)
    return reports


def analyze_trace_with_stats(path: str, *, mode: str = "indexed",
                             workers: int = 4, explain: bool = False,
                             strict: bool = False, kernel: str = "auto"
                             ) -> Tuple[List[RaceReport], dict]:
    """The offline pipeline with a per-phase stats document.

    The returned document mirrors the online tool's shape: the embedded
    record-phase stats (with their cost-model virtual time) under
    ``"record_run"``, the offline load/analysis/suppress/report phase
    timings under ``"phases"``, plus analysis and suppression counters.
    The phase timings are **per-run deltas** — two back-to-back analyses in
    one process each report only their own work, not the registry's
    cumulative process-lifetime totals.

    By default the load is salvage-mode: a damaged trace degrades to its
    longest valid prefix and the stats document carries a ``"coverage"``
    block accounting for the loss (reports additionally carry a salvage
    warning note).  ``strict=True`` restores fail-stop loading.
    """
    reg = get_registry()
    baseline = reg.mark()
    with reg.phase("offline"):
        with reg.phase("offline.load"):
            if strict:
                graph, view, supp_flags, record_stats = load_trace_full(path)
                coverage = None
            else:
                salvaged = load_trace_salvaged(path)
                graph, view = salvaged.graph, salvaged.view
                supp_flags = salvaged.suppression
                record_stats = salvaged.stats
                coverage = salvaged.coverage
                if not coverage.complete:
                    reg.counter("resilience.trace_salvaged").inc()
                    reg.counter("resilience.trace_chunks_lost").inc(
                        coverage.chunks_corrupt)
        la = analyze_loaded(graph, view, supp_flags, coverage=coverage,
                            mode=mode, workers=workers, explain=explain,
                            kernel=kernel)
    reports = la.reports
    stats = {
        "schema": "taskgrind-offline-stats/1",
        "trace": path,
        "analysis": {
            "mode": mode,
            "raw_candidates": la.raw_candidates,
            "reports": len(reports),
        },
        "suppress": la.engine.stats_doc(),
        "graph": graph.stats(),
        "phases": reg.delta_since(baseline)["phases"],
        "record_run": record_stats,
    }
    if coverage is not None:
        stats["coverage"] = coverage.to_dict()
    if la.partial is not None:
        stats["analysis"]["resilience"] = la.partial.to_dict()
    reg.publish("offline", stats)
    return reports, stats
