"""Taskgrind's Cilk shim: segment graph from spawn/sync events.

The paper's Section III-A-b: Cilk support is work-in-progress in the real
tool (the Cheetah runtime makes the integration hard).  Against the
*simulated* Cilk runtime the mapping is the textbook series-parallel one:

* ``spawn`` splits the parent's segment (pre-spawn accesses happen-before
  the child) and the continuation runs concurrently with the child;
* ``sync`` joins every outstanding child's final segment into the parent's
  next segment;
* the whole program is one parallel region (the paper's Cilk assumption for
  the Eq. (1) rule).

:class:`CilkSegmentBuilder` reuses the generic segment/graph machinery of
:mod:`repro.core.segments`; :class:`TaskgrindCilkShim` adapts it to the
:class:`repro.cilk.runtime.CilkObserver` interface, forwarding through the
client-request router exactly like the OMPT shim does.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cilk.runtime import CilkFrame, CilkObserver
from repro.core.segments import SegmentBuilder, _TaskEntry
from repro.obs.tracer import get_tracer

_TRACER = get_tracer()


class CilkSegmentBuilder(SegmentBuilder):
    """Series-parallel segment construction for the Cilk runtime."""

    def __init__(self, machine, config=None) -> None:
        super().__init__(machine, config)
        self._children: Dict[int, List[CilkFrame]] = {}
        self._frame_creation: Dict[int, object] = {}
        self._sync_prior: Dict[int, object] = {}

    # -- events ---------------------------------------------------------------

    def on_spawn(self, parent: CilkFrame, child: CilkFrame,
                 thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        creation = self._close(entry.segment, thread_id)
        cont = self._open(thread_id, entry.task, entry.segment.kind)
        self.hb.fork_child(creation.id, cont.id)
        self.graph.add_edge(creation, cont)
        entry.segment = cont
        self._frame_creation[child.fid] = creation
        self._children.setdefault(parent.fid, []).append(child)

    def on_frame_begin(self, frame: CilkFrame, thread_id: int) -> None:
        seg = self._open(thread_id, frame, "task",
                         label_loc=frame.create_loc)
        creation = self._frame_creation.get(frame.fid)
        if creation is not None:
            self.hb.fork_child(creation.id, seg.id)
        self.graph.add_edge(creation, seg)
        self._stack(thread_id).append(_TaskEntry(task=frame, segment=seg))

    def on_frame_end(self, frame: CilkFrame, thread_id: int) -> None:
        entry = self._stack(thread_id).pop()
        final = self._close(entry.segment, thread_id)
        self._frame_creation[("final", frame.fid)] = final

    def on_sync_begin(self, frame: CilkFrame, thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        self._sync_prior[frame.fid] = self._close(entry.segment, thread_id)

    def on_sync_end(self, frame: CilkFrame, thread_id: int) -> None:
        entry = self.current_entry(thread_id)
        seg = self._open(thread_id, entry.task, entry.segment.kind)
        self.graph.add_edge(self._sync_prior.pop(frame.fid, None), seg)
        for child in self._children.get(frame.fid, ()):
            self.graph.add_edge(
                self._frame_creation.get(("final", child.fid)), seg)
        self._hb_ensure_placed(seg)
        entry.segment = seg


class TaskgrindCilkShim(CilkObserver):
    """Forwards Cilk runtime events to the Taskgrind plugin."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def _req(self, name: str, payload) -> None:
        if _TRACER.enabled:
            _TRACER.instant(f"shim.cilk.{name}",
                            self.machine.scheduler.current_id(), cat="shim")
        self.machine.client_requests.request(name, payload)

    def on_spawn(self, parent, child, thread_id) -> None:
        self._req("tg_cilk_spawn", (parent, child, thread_id))

    def on_frame_begin(self, frame, thread_id) -> None:
        self._req("tg_cilk_frame_begin", (frame, thread_id))

    def on_frame_end(self, frame, thread_id) -> None:
        self._req("tg_cilk_frame_end", (frame, thread_id))

    def on_sync_begin(self, frame, thread_id) -> None:
        self._req("tg_cilk_sync_begin", (frame, thread_id))

    def on_sync_end(self, frame, thread_id) -> None:
        self._req("tg_cilk_sync_end", (frame, thread_id))


def attach_cilk(tool, cilk_env) -> None:
    """Wire a TaskgrindTool to a Cilk environment.

    Replaces the tool's OpenMP segment builder with a Cilk one and registers
    the shim on the runtime — call after ``machine.add_tool(tool)``.
    """
    machine = tool.machine
    builder = CilkSegmentBuilder(machine, tool.options.segment_model)
    tool.builder = builder
    req = machine.client_requests
    req.subscribe("tg_cilk_spawn", lambda p: builder.on_spawn(*p))
    req.subscribe("tg_cilk_frame_begin",
                  lambda p: builder.on_frame_begin(*p))
    req.subscribe("tg_cilk_frame_end", lambda p: builder.on_frame_end(*p))
    req.subscribe("tg_cilk_sync_begin", lambda p: builder.on_sync_begin(*p))
    req.subscribe("tg_cilk_sync_end", lambda p: builder.on_sync_end(*p))
    cilk_env.register(TaskgrindCilkShim(machine))
