"""TaskgrindTool: the Valgrind plugin (paper Sections III–IV).

Wiring (mirrors Fig. 2 of the paper):

* ``attach`` replaces ``malloc``/``free`` through the Valgrind replacement
  registry — ``malloc`` to save allocation-site stack traces for reports
  (III-C), ``free`` as a no-op to defeat allocator recycling (IV-B) — and
  subscribes to the ``tg_*`` client requests issued by the injected OMPT shim
  (:mod:`repro.core.ompt_shim`).
* ``on_access`` observes **every** access (DBI), drops those filtered by the
  ignore/instrument lists (IV-A), and records the rest into the current
  segment's interval trees (III-B).
* ``finalize`` runs the determinacy-race pass (Algorithm 1), applies the TLS
  and stack suppressions (IV-C/IV-D), and assembles the Listing-6 reports.

Modeled defect — the Table II multi-thread ``deadlock``
-------------------------------------------------------
The paper reports that Taskgrind deadlocks on LULESH with 4 threads and that
the cause "remains to be investigated".  We model a concrete, plausible tool
bug with exactly the paper's trigger matrix: when an *annotated-deferrable*
task with dependence predecessors starts on a thread other than a
predecessor's executor, the plugin waits for that executor to confirm the
cross-thread event ordering by issuing a subsequent request.  If the executor
ran the predecessor *inside a barrier* and then went idle, it never issues
one — and since it is itself waiting for the blocked task to finish, the
circular wait trips the simulator's deadlock detector.  Single-thread runs
(predecessor executor == current thread) and the TMB suite (annotated but
dependence-free) never take this path, matching Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.analysis import (PartialAnalysis, find_races_indexed,
                                 find_races_naive, find_races_supervised)
from repro.core.ompt_shim import TaskgrindOmptShim
from repro.core.reports import (RaceReport, build_report, build_witness,
                                dedupe_reports)
from repro.core.segments import SegmentBuilder, SegmentModelConfig
from repro.core.suppress import SuppressionConfig, SuppressionEngine
from repro.machine.cost import ToolCost
from repro.obs.metrics import get_registry
from repro.obs.prof import get_profiler
from repro.obs.tracer import get_tracer
from repro.vex.elide import ElisionPlan
from repro.vex.events import AccessEvent
from repro.vex.tool import Tool

#: prebound attribution profiler — the access hot paths below guard every
#: hint with a single ``_PROF.enabled`` attribute test (same pattern as the
#: tracer), so the disabled cost is one boolean check
_PROF = get_profiler()


@dataclass
class TaskgrindOptions:
    """Command-line-ish options of the tool."""

    suppression: SuppressionConfig = field(default_factory=SuppressionConfig)
    segment_model: SegmentModelConfig = field(default_factory=SegmentModelConfig)
    #: 'indexed' (default), 'naive' (faithful Algorithm 1) or 'parallel'
    analysis: str = "indexed"
    analysis_workers: int = 4
    #: conflict kernel for the pair sweep: 'auto' (numpy when importable and
    #: the pair count justifies it), 'numpy' or 'python' (the oracle; also
    #: the graceful fallback when numpy is absent)
    analysis_kernel: str = "auto"
    #: collapse reports with identical segment-label pairs
    dedupe: bool = False
    #: model the multi-thread cross-thread-confirmation lock-up (Table II)
    model_multithread_lockup: bool = True
    #: path to a Valgrind-style suppression file (see repro.core.suppfile)
    suppression_file: Optional[str] = None
    #: route accesses through the write-combining recorder + raw dispatch
    #: (False restores the legacy per-access tree inserts + event objects)
    fast_record: bool = True
    #: honor ``private=True`` site declarations with compile-time elision
    #: (no-op instrumentation); False records every declared site normally
    elide_sites: bool = True
    #: happens-before query path: 'auto' (O(1) index with bitmask fallback),
    #: 'bitmask' (legacy DP only) or 'checked' (index cross-checked vs DP)
    hb_mode: str = "auto"
    #: attach a provenance witness (ancestry, NCA, hb-tier evidence) to each
    #: report — the ``--explain`` flag
    explain: bool = False
    #: tool-memory ceiling in bytes (None = unlimited): when the modeled
    #: footprint crosses it, access recording degrades to coarse
    #: ``memory_budget_granule``-byte intervals instead of dying OOM, and
    #: every report carries a degraded-precision warning
    memory_budget: Optional[int] = None
    memory_budget_granule: int = 64
    #: supervised parallel analysis: per-chunk wall deadline (None = none)
    #: and retry budget before a failing chunk is quarantined
    analysis_deadline_s: Optional[float] = None
    analysis_max_retries: int = 2
    #: two-phase detection (repro.replay): ``"full"`` records accesses and
    #: analyzes as usual; ``"sync"`` is the cheap first pass — accesses are
    #: observed (so virtual time, and therefore the schedule, is identical
    #: to a full run's) but never recorded, and finalize skips analysis
    record_mode: str = "full"
    #: partial replay scope (a :class:`repro.replay.filter.ReplayFilter`):
    #: accesses are clipped to its address ranges at record time and race
    #: candidates outside its segment pairs are dropped before suppression
    replay_filter: Optional[object] = None


class TaskgrindTool(Tool):
    """The Taskgrind Valgrind tool."""

    name = "taskgrind"
    is_dbi = True
    # ~100x single-thread slowdown and the Valgrind big lock (serialized
    # client); translation charged once per symbol (JIT to VEX IR).  The
    # write-combining fast path charges a cheaper per-access factor (most
    # accesses hit the direct-mapped recorder cache instead of the trees).
    cost = ToolCost(access_factor=117.0, compute_factor=20.0,
                    translation_ops=200_000.0,
                    serialize=True, bytes_per_tree_node=64,
                    bytes_per_segment=192,
                    fast_access_factor=95.0)

    #: Valgrind core resident baseline: translation cache, VEX, tool statics.
    VALGRIND_CORE_BYTES = 44 << 20

    def __init__(self, options: Optional[TaskgrindOptions] = None) -> None:
        super().__init__()
        self.options = options or TaskgrindOptions()
        self.fast_path = self.options.fast_record
        self.builder: Optional[SegmentBuilder] = None
        self.suppressor: Optional[SuppressionEngine] = None
        #: ahead-of-time per-site elision decisions (tg_static_site)
        self.elision = ElisionPlan(self.options.suppression,
                                   enabled=self.options.elide_sites)
        self.reports: List[RaceReport] = []
        self.raw_candidates: int = 0
        self.filtered_accesses = 0
        self.recorded_accesses = 0
        self.fast_accesses = 0          # via on_access_raw (no event object)
        self.legacy_accesses = 0        # via on_access (AccessEvent path)
        self.file_suppressed = 0
        self._symbol_filtered: dict = {}       # symbol name -> filtered?
        #: supervised-analysis coverage of the last finalize (parallel mode)
        self.partial_analysis: Optional[PartialAnalysis] = None
        #: vtime-ordered access count at which the memory budget tripped
        self.budget_tripped_at: Optional[int] = None
        self._budget_check_every = 2048
        self._budget_active = self.options.memory_budget is not None
        #: sync-only recording (two-phase first pass): the hub still
        #: dispatches every access here — keeping the cost-model charges,
        #: and therefore the schedule, identical to a full run — but the
        #: handlers are rebound to a counter bump, skipping the symbol
        #: memo, budget check and tree insert entirely
        self.sync_only = self.options.record_mode == "sync"
        self.sync_skipped = 0
        if self.options.record_mode not in ("full", "sync"):
            raise ValueError(
                f"unknown record_mode {self.options.record_mode!r}")
        if self.sync_only:
            self.on_access = self._on_access_sync
            self.on_access_raw = self._on_access_raw_sync
        #: partial-replay scope + its accounting
        self.replay_filter = self.options.replay_filter
        self.filter_recorded = 0        # accesses recorded (possibly clipped)
        self.filter_dropped = 0         # accesses fully outside the scope
        self.filter_pair_dropped = 0    # candidates dropped by pair scope

    # -- lifecycle -----------------------------------------------------------

    def attach(self, machine) -> None:
        super().attach(machine)
        self.builder = SegmentBuilder(machine, self.options.segment_model,
                                      fast_record=self.options.fast_record)
        self.builder.graph.hb_mode = self.options.hb_mode
        if _PROF.enabled:
            # fallback attribution frame when a thread has no shadow stack
            # (runtime-internal charges): the executing task's ancestry label
            def _task_frame(tid: int, _builder=self.builder):
                # peek only: current_entry() would open a segment as a
                # side effect, which a profiler fallback must never do
                st = _builder._entries.get(tid)
                if not st or st[-1].task is None:
                    return None
                return f"task:{st[-1].task.label()}"

            _PROF.bind_ancestry_provider(_task_frame)
        self.suppressor = SuppressionEngine(machine,
                                            self.options.suppression)
        if self.options.suppression.suppress_recycling:
            machine.replacements.replace("free")      # free -> no-op (IV-B)
        machine.replacements.replace("malloc")        # stack traces (III-C)

        req = machine.client_requests
        req.subscribe("tg_parallel_begin",
                      lambda p: self.builder.on_parallel_begin(*p))
        req.subscribe("tg_parallel_end",
                      lambda p: self.builder.on_parallel_end(*p))
        req.subscribe("tg_implicit_begin",
                      lambda p: self.builder.on_implicit_task_begin(*p))
        req.subscribe("tg_implicit_end",
                      lambda p: self.builder.on_implicit_task_end(*p))
        req.subscribe("tg_task_create",
                      lambda p: self.builder.on_task_create(*p))
        req.subscribe("tg_task_dependence",
                      lambda p: self.builder.on_task_dependence_pair(*p))
        req.subscribe("tg_task_begin", self._on_task_begin)
        req.subscribe("tg_task_end",
                      lambda p: self.builder.on_task_schedule_end(*p))
        req.subscribe("tg_task_detach_fulfill",
                      lambda p: self.builder.on_task_detach_fulfill(*p))
        req.subscribe("tg_sync_begin",
                      lambda p: self.builder.on_sync_begin(*p))
        req.subscribe("tg_sync_end",
                      lambda p: self.builder.on_sync_end(*p))
        req.subscribe("taskgrind_deferrable",
                      lambda task: self.builder.on_task_annotate_deferrable(task))
        req.subscribe("tg_static_site", self._on_static_site)

    def _on_static_site(self, payload):
        """A ``private=True`` declaration: decide elision for the site.

        Returns the :class:`~repro.vex.elide.StaticSite` token only when the
        site is elided — the guest attaches it to the handle and the hub
        carries it back on every access, so the hot path is one None test.
        """
        name, klass, symbol, file, line = payload
        return self.elision.declare(name, klass, symbol=symbol,
                                    file=file, line=line)

    def make_ompt_shim(self) -> TaskgrindOmptShim:
        """The OMPT tool Taskgrind injects into the client (register it on
        the runtime's dispatcher)."""
        return TaskgrindOmptShim(self.machine)

    # -- the modeled multi-thread lock-up ----------------------------------------

    def _on_task_begin(self, payload) -> None:
        task, thread_id = payload
        if self.options.model_multithread_lockup:
            self._confirm_cross_thread_order(task, thread_id)
        self.builder.on_task_schedule_begin(task, thread_id)

    def _confirm_cross_thread_order(self, task, thread_id: int) -> None:
        info = self.builder.info(task)
        if not info.annotated or not info.preds:
            return
        sched = self.machine.scheduler
        for pred, _dep in info.preds:
            pi = self.builder.info(pred)
            if pi.exec_thread in (-1, thread_id):
                continue
            t, seq = pi.exec_thread, pi.completion_seq
            # Wait for the predecessor's executor to issue any later request,
            # "confirming" it observed the completion ordering.  An executor
            # that ran the predecessor inside a barrier and then parked never
            # does — circular wait, detected as a simulated deadlock.
            sched.block_until(
                lambda t=t, seq=seq:
                self.builder.last_seq_by_thread.get(t, 0) > seq,
                f"taskgrind: cross-thread ordering confirmation from t{t}")

    # -- access recording ------------------------------------------------------------

    def on_access(self, event: AccessEvent) -> None:
        if event.site is not None:
            # statically elided: the declaration already proved the runtime
            # suppression verdict, so the access never enters the trees
            self.elision.note(event.site)
            if _PROF.enabled:
                _PROF.hint_access("elide.noop")
            return
        if self.suppressor.symbol_filtered(event.symbol.name):
            self.filtered_accesses += 1
            if _PROF.enabled:
                _PROF.hint_access("suppress.symbol-filter")
            return
        if self.replay_filter is not None \
                and self.replay_filter.filters_addresses:
            self._record_clipped(event.thread_id, event.addr, event.size,
                                 event.is_write, event.loc, legacy=True)
            return
        self.recorded_accesses += 1
        self.legacy_accesses += 1
        if self._budget_active:
            self._check_memory_budget()
        self.builder.record_access(event.thread_id, event.addr, event.size,
                                   event.is_write, event.loc)

    def on_access_raw(self, thread_id: int, addr: int, size: int,
                      is_write: bool, symbol, loc, site=None) -> None:
        if site is not None:
            self.elision.note(site)
            if _PROF.enabled:
                _PROF.hint_access("elide.noop")
            return
        # memoized ignore/instrument-list decision (one lookup per symbol
        # name instead of re-running the pattern match per access)
        filtered = self._symbol_filtered.get(symbol.name)
        if filtered is None:
            filtered = self._symbol_filtered[symbol.name] = \
                self.suppressor.symbol_filtered(symbol.name)
        if filtered:
            self.filtered_accesses += 1
            if _PROF.enabled:
                _PROF.hint_access("suppress.symbol-filter")
            return
        if self.replay_filter is not None \
                and self.replay_filter.filters_addresses:
            self._record_clipped(thread_id, addr, size, is_write, loc)
            return
        self.recorded_accesses += 1
        self.fast_accesses += 1
        if self._budget_active:
            self._check_memory_budget()
        self.builder.record_access(thread_id, addr, size, is_write, loc)

    def _record_clipped(self, thread_id: int, addr: int, size: int,
                        is_write: bool, loc, legacy: bool = False) -> None:
        """Partial replay: record only the bytes inside the filter scope.

        Clipping (rather than dropping whole accesses) keeps the recorded
        evidence inside the scope *identical* to a full recording's — the
        invariant the --verify-single-pass parity check rests on.
        """
        if _PROF.enabled:
            _PROF.hint_access("record.access.clipped")
        spans = self.replay_filter.clip(addr, addr + size)
        if not spans:
            self.filter_dropped += 1
            return
        self.recorded_accesses += 1
        self.filter_recorded += 1
        if legacy:
            self.legacy_accesses += 1
        else:
            self.fast_accesses += 1
        if self._budget_active:
            self._check_memory_budget()
        for lo, hi in spans:
            self.builder.record_access(thread_id, lo, hi - lo, is_write,
                                       loc)

    # -- sync-only recording (two-phase first pass) -----------------------------

    def _on_access_sync(self, event: AccessEvent) -> None:
        self.sync_skipped += 1
        if _PROF.enabled:
            _PROF.hint_access("record.sync-skip")

    def _on_access_raw_sync(self, thread_id: int, addr: int, size: int,
                            is_write: bool, symbol, loc,
                            site=None) -> None:
        self.sync_skipped += 1
        if _PROF.enabled:
            _PROF.hint_access("record.sync-skip")

    def _check_memory_budget(self) -> None:
        """Trip into coarse recording when the footprint crosses the budget.

        The check amortizes: the (non-trivial) footprint model runs once per
        ``_budget_check_every`` recorded accesses, so between checks the
        footprint can overshoot by at most one check window's worth of tree
        nodes.  Tripping is one-way — precision already spent recording at
        byte granularity stays, only *new* accesses coarsen.
        """
        if self.budget_tripped_at is not None \
                or self.recorded_accesses % self._budget_check_every:
            return
        if self.memory_bytes() <= self.options.memory_budget:
            return
        self.budget_tripped_at = self.recorded_accesses
        granule = self.options.memory_budget_granule
        self.builder.enter_coarse_mode(granule)
        reg = get_registry()
        reg.counter("resilience.memory_budget_trips").inc()
        reg.gauge("resilience.coarse_granule").set(granule)

    # -- post-mortem analysis -----------------------------------------------------------

    def finalize(self) -> List[RaceReport]:
        reg = get_registry()
        if self.sync_only:
            # sync-only pass: there is no access evidence to analyze — the
            # run exists to produce a schedule document, not verdicts
            self.reports = []
            reg.counter("replay.sync_runs").inc()
            reg.publish("taskgrind", self.stats())
            return self.reports
        with reg.phase("finalize"):
            graph = self.builder.graph
            mode = self.options.analysis
            if mode == "naive":
                candidates = find_races_naive(graph)
            elif mode == "parallel":
                self.partial_analysis = find_races_supervised(
                    graph, workers=self.options.analysis_workers,
                    deadline_s=self.options.analysis_deadline_s,
                    max_retries=self.options.analysis_max_retries,
                    kernel=self.options.analysis_kernel)
                candidates = self.partial_analysis.candidates
            else:
                candidates = find_races_indexed(
                    graph, kernel=self.options.analysis_kernel)
            self.raw_candidates = len(candidates)
            flt = self.replay_filter
            if flt is not None and flt.pairs:
                kept = [c for c in candidates
                        if flt.admits_pair(c.s1.id, c.s2.id)]
                self.filter_pair_dropped = len(candidates) - len(kept)
                candidates = kept
            surviving = self.suppressor.filter_all(candidates)
            with reg.phase("report"):
                reports = [build_report(self.machine, c) for c in surviving]
                if self.options.dedupe:
                    reports = dedupe_reports(reports)
                if self.options.suppression_file is not None:
                    from repro.core.suppfile import load_suppressions
                    supp = load_suppressions(self.options.suppression_file)
                    reports, self.file_suppressed = supp.filter(reports)
                if self.options.explain:
                    with reg.phase("explain"):
                        for r in reports:
                            r.witness = build_witness(graph, r)
                for note in self._degradation_notes():
                    for r in reports:
                        r.notes = r.notes + (note,)
                tracer = get_tracer()
                if tracer.enabled:
                    for r in reports:
                        tracer.race_flow(r.s1.id, r.s2.id,
                                         t1=r.s1.thread_id,
                                         t2=r.s2.thread_id, args={
                            "label1": r.s1.label(), "label2": r.s2.label(),
                            "bytes": r.ranges.total_bytes})
            self.reports = reports
        reg.publish("taskgrind", self.stats())
        return reports

    def _degradation_notes(self) -> List[str]:
        """Suppression-style warnings stamped on every report of a degraded
        run — a report reader must never mistake coarsened or partial
        evidence for the exact kind."""
        notes: List[str] = []
        if self.budget_tripped_at is not None:
            notes.append(
                f"degraded precision: memory budget "
                f"({self.options.memory_budget} bytes) exceeded after "
                f"{self.budget_tripped_at} accesses; later accesses "
                f"recorded at {self.builder.coarse_granule}-byte granularity "
                f"(byte ranges over-approximate)")
        pa = self.partial_analysis
        if pa is not None and not pa.complete:
            notes.append("incomplete analysis: " + pa.summary())
        return notes

    # -- observability --------------------------------------------------------------------

    def stats(self) -> dict:
        """The run's stats document (record / hb / analysis / suppression).

        Key names are stable — the CI offline smoke test and the perf gate
        parse this document; see ``docs/INTERNALS.md`` §6.
        """
        builder = self.builder
        graph = builder.graph if builder is not None else None
        machine = self.machine
        doc: dict = {
            "schema": "taskgrind-stats/1",
            "record": {
                "fast_path": self.fast_path,
                "mode": self.options.record_mode,
                "recorded_accesses": self.recorded_accesses,
                "filtered_accesses": self.filtered_accesses,
                "fast_accesses": self.fast_accesses,
                "legacy_accesses": self.legacy_accesses,
                "sync_skipped_accesses": self.sync_skipped,
            },
        }
        if self.replay_filter is not None:
            doc["replay"] = {
                "filter": self.replay_filter.describe(),
                "recorded_accesses": self.filter_recorded,
                "dropped_accesses": self.filter_dropped,
                "pair_dropped_candidates": self.filter_pair_dropped,
            }
        if machine is not None:
            doc["record"]["hub"] = machine.instrumentation.stats()
            doc["virtual"] = machine.cost.stats()
        if graph is not None:
            doc["graph"] = graph.stats()
        doc["analysis"] = {
            "mode": self.options.analysis,
            "kernel": self.options.analysis_kernel,
            "raw_candidates": self.raw_candidates,
            "reports": len(self.reports),
        }
        resilience: dict = {
            "memory_budget": self.options.memory_budget,
            "budget_tripped_at": self.budget_tripped_at,
            "coarse_granule": (builder.coarse_granule
                               if builder is not None else 0),
        }
        if self.partial_analysis is not None:
            resilience["analysis"] = self.partial_analysis.to_dict()
        doc["resilience"] = resilience
        supp: dict = {"ignore_list": self.filtered_accesses,
                      "file_suppressed": self.file_suppressed}
        if machine is not None and hasattr(machine, "allocator"):
            supp["recycling_retained_blocks"] = sum(
                1 for b in machine.allocator.all_blocks
                if getattr(b, "retained", False))
        if self.suppressor is not None:
            supp.update(self.suppressor.stats_doc())
        supp["elided_sites"] = self.elision.elided_sites
        supp["elided_accesses"] = self.elision.elided_accesses
        supp["elision"] = self.elision.stats_doc()
        doc["suppress"] = supp
        return doc

    # -- accounting -----------------------------------------------------------------------

    def memory_bytes(self, app_bytes: int = 0) -> int:
        graph_bytes = self.builder.graph.memory_bytes(
            bytes_per_node=self.cost.bytes_per_tree_node,
            bytes_per_segment=self.cost.bytes_per_segment)
        # allocation-site stack traces saved by the malloc wrapper
        alloc_meta = len(self.machine.allocator.all_blocks) * 96
        return self.VALGRIND_CORE_BYTES + graph_bytes + alloc_meta
