"""Vectorized conflict kernels — the ``analysis_kernel=numpy`` backend.

The pure-Python analysis pass walks every candidate segment pair with an
interpreted happens-before query followed by three linear IntervalSet merges
(:func:`repro.core.analysis._conflict_ranges`).  This module reformulates the
same computation over flat sorted ``int64`` arrays:

* **Array layout** — each segment's read/write sets become three pairs of
  parallel arrays ``(los, his)``: the write set ``w``, the read set ``r`` and
  the precomputed union ``rw = r ∪ w``.  All are sorted by ``lo``, pairwise
  disjoint and non-adjacent (the same canonical form as
  :class:`repro.util.intervals.IntervalSet`), so
  ``s1.w ∩ (s2.r ∪ s2.w)`` is one ``searchsorted`` sweep instead of a Python
  merge loop.  Arrays are built once per segment and cached alongside the
  interval trees (:meth:`repro.core.segments.Segment.np_arrays`).
* **Batched happens-before** — a whole chunk of candidate pairs is filtered
  with one vectorized label comparison (when the order-maintenance index is
  exact) or one gather into a dense reachability matrix unpacked from the
  bitmask DP (when it is not).
* **Batched bounding-box prefilter** — pairs whose access-set hulls cannot
  overlap are dropped before any per-pair interval work.

The Python kernel remains the oracle: for any input both kernels produce
byte-identical conflict sets (enforced by the parity tests and the fuzz
harness), so ``auto`` may pick either purely on performance grounds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.intervals import IntervalSet

try:  # pragma: no cover - exercised via both arms of the parity tests
    import numpy as _np
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - no-numpy environments
    _np = None
    HAVE_NUMPY = False

#: Below this many candidate pairs the fixed numpy call overhead outweighs
#: the vectorization win; ``analysis_kernel=auto`` stays on the Python loop.
AUTO_MIN_PAIRS = 32

#: Ceiling on the dense reachability matrix (segments with accesses): above
#: this the matrix is not materialized and ordering falls back to per-pair
#: queries inside the chunk loop.
MATRIX_MAX_SEGS = 4096

#: Each candidate pair's operand intervals are relocated into a private
#: ``1 << _WINDOW_SHIFT`` address window so one global sweep intersects every
#: pair at once.  Valid while guest addresses stay below the window size —
#: the simulated address space tops out under 2**47 (stack region base).
_WINDOW_SHIFT = 48

#: Pairs processed per batched sweep: bounds the window offsets well below
#: int64 overflow (``_PAIR_BATCH << _WINDOW_SHIFT`` must fit in 63 bits).
_PAIR_BATCH = 8192


# ---------------------------------------------------------------------------
# primitive sweeps over sorted disjoint (los, his) arrays
# ---------------------------------------------------------------------------

def _empty() -> Tuple["_np.ndarray", "_np.ndarray"]:
    z = _np.empty(0, dtype=_np.int64)
    return z, z


def coalesce_arrays(los: "_np.ndarray", his: "_np.ndarray"
                    ) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """Normalize arbitrary ``[lo, hi)`` arrays: sort, merge overlap/adjacency.

    Same canonical form as :class:`IntervalSet` (touching ranges coalesce),
    so a round trip through arrays preserves set equality.
    """
    n = los.shape[0]
    if n <= 1:
        return los, his
    order = _np.argsort(los, kind="stable")
    los = los[order]
    his = his[order]
    cummax = _np.maximum.accumulate(his)
    starts = _np.empty(n, dtype=bool)
    starts[0] = True
    _np.greater(los[1:], cummax[:-1], out=starts[1:])
    ends = _np.nonzero(_np.append(starts[1:], True))[0]
    return los[starts], cummax[ends]


def union_arrays(alos, ahis, blos, bhis):
    """``a ∪ b`` for two normalized interval arrays."""
    if not alos.shape[0]:
        return blos, bhis
    if not blos.shape[0]:
        return alos, ahis
    return coalesce_arrays(_np.concatenate((alos, blos)),
                           _np.concatenate((ahis, bhis)))


def intersect_arrays(alos, ahis, blos, bhis):
    """``a ∩ b`` for two normalized interval arrays (one searchsorted sweep).

    For each ``a`` interval the overlapping ``b`` window is
    ``[searchsorted(bhis, alo, right), searchsorted(blos, ahi, left))``;
    expanding the windows with ``repeat`` yields every overlap pair at once.
    The result is already normalized (gaps in either operand separate the
    output pieces).
    """
    if not alos.shape[0] or not blos.shape[0]:
        return _empty()
    first = _np.searchsorted(bhis, alos, side="right")
    last = _np.searchsorted(blos, ahis, side="left")
    counts = last - first
    total = int(counts.sum())
    if total == 0:
        return _empty()
    a_idx = _np.repeat(_np.arange(alos.shape[0]), counts)
    offsets = _np.repeat(_np.cumsum(counts) - counts - first, counts)
    b_idx = _np.arange(total) - offsets
    los = _np.maximum(alos[a_idx], blos[b_idx])
    his = _np.minimum(ahis[a_idx], bhis[b_idx])
    return los, his


def build_segment_arrays(rset: IntervalSet, wset: IntervalSet):
    """One segment's cached kernel operand: ``(w, r, rw)`` sorted arrays.

    Returns ``(w_los, w_his, r_los, r_his, rw_los, rw_his)``; the ``rw``
    union is precomputed here so the per-pair kernel never unions at query
    time.
    """
    w_los = _np.asarray(wset._los, dtype=_np.int64)
    w_his = _np.asarray(wset._his, dtype=_np.int64)
    r_los = _np.asarray(rset._los, dtype=_np.int64)
    r_his = _np.asarray(rset._his, dtype=_np.int64)
    rw_los, rw_his = union_arrays(r_los, r_his, w_los, w_his)
    return (w_los, w_his, r_los, r_his, rw_los, rw_his)


def conflict_ranges_arrays(a1, a2) -> Optional[IntervalSet]:
    """``(w1 ∩ rw2) ∪ (w2 ∩ r1)`` over two segments' cached arrays.

    Byte-identical to :func:`repro.core.analysis._conflict_ranges`; returns
    ``None`` instead of an empty set so the hot caller can branch cheaply.
    """
    w1_los, w1_his = a1[0], a1[1]
    w2_los, w2_his = a2[0], a2[1]
    p1_los, p1_his = intersect_arrays(w1_los, w1_his, a2[4], a2[5])
    p2_los, p2_his = intersect_arrays(w2_los, w2_his, a1[2], a1[3])
    los, his = union_arrays(p1_los, p1_his, p2_los, p2_his)
    if not los.shape[0]:
        return None
    out = IntervalSet()
    out._los = los.tolist()
    out._his = his.tolist()
    return out


# ---------------------------------------------------------------------------
# per-pass context: spans + batched happens-before backing
# ---------------------------------------------------------------------------

class _Pool:
    """Every segment's intervals of one kind, concatenated once.

    ``los``/``his`` hold segment ``k``'s intervals at
    ``[starts[k], starts[k] + lens[k])``; a batched sweep *gathers* the
    operand arrays for a whole pair list with fancy indexing instead of one
    numpy call per pair.
    """

    __slots__ = ("los", "his", "starts", "lens")

    def __init__(self, seg_los: List, seg_his: List) -> None:
        self.lens = _np.asarray([a.shape[0] for a in seg_los],
                                dtype=_np.int64)
        self.starts = _np.cumsum(self.lens) - self.lens
        self.los = (_np.concatenate(seg_los) if seg_los
                    else _np.empty(0, dtype=_np.int64))
        self.his = (_np.concatenate(seg_his) if seg_his
                    else _np.empty(0, dtype=_np.int64))

    def gather(self, sel: "_np.ndarray", offsets: "_np.ndarray"):
        """Concatenate the selected segments' intervals, each pair's shifted
        into its window: ``(los, his, per-element repeat counts)``."""
        lens = self.lens[sel]
        total = int(lens.sum())
        if total == 0:
            return _empty()
        span = _np.cumsum(lens) - lens
        idx = (_np.arange(total) - _np.repeat(span, lens)
               + _np.repeat(self.starts[sel], lens))
        off = _np.repeat(offsets, lens)
        return self.los[idx] + off, self.his[idx] + off


class KernelContext:
    """Immutable per-pass state shared by every chunk of one analysis run.

    Built single-threaded before the (possibly parallel) pair sweep so chunk
    workers only read.  Holds the pooled per-segment interval arrays, the
    segment hull arrays for the bounding-box prefilter, and whichever batched
    happens-before backing applies:

    * exact order-maintenance labels → two gathered ``int64`` arrays;
    * bitmask DP → a dense boolean matrix ``ordered[i, j]`` unpacked from
      the big-int reachability masks (only when the segment count is small
      enough to justify it);
    * neither → per-pair :meth:`SegmentGraph.ordered` fallback.
    """

    def __init__(self, graph, segs: Sequence) -> None:
        self.graph = graph
        self.segs = segs
        n = len(segs)
        w_lo = [0] * n
        w_hi = [0] * n
        r_lo = [0] * n
        r_hi = [0] * n
        w_los: List = [None] * n
        w_his: List = [None] * n
        r_los: List = [None] * n
        r_his: List = [None] * n
        rw_los: List = [None] * n
        rw_his: List = [None] * n
        for k, seg in enumerate(segs):
            arr = seg.np_arrays()
            w_los[k], w_his[k], r_los[k], r_his[k], rw_los[k], rw_his[k] = arr
            # (1, 0) sentinel hull for an empty set: overlaps nothing
            w_lo[k], w_hi[k] = ((int(arr[0][0]), int(arr[1][-1]))
                                if arr[0].shape[0] else (1, 0))
            r_lo[k], r_hi[k] = ((int(arr[2][0]), int(arr[3][-1]))
                                if arr[2].shape[0] else (1, 0))
        self.w_pool = _Pool(w_los, w_his)
        self.r_pool = _Pool(r_los, r_his)
        self.rw_pool = _Pool(rw_los, rw_his)
        self.w_lo = _np.asarray(w_lo, dtype=_np.int64)
        self.w_hi = _np.asarray(w_hi, dtype=_np.int64)
        self.r_lo = _np.asarray(r_lo, dtype=_np.int64)
        self.r_hi = _np.asarray(r_hi, dtype=_np.int64)
        # rw hull = hull of the non-sentinel hulls
        w_real = self.w_lo < self.w_hi
        r_real = self.r_lo < self.r_hi
        both = w_real & r_real
        self.rw_lo = _np.where(both, _np.minimum(self.w_lo, self.r_lo),
                               _np.where(w_real, self.w_lo, self.r_lo))
        self.rw_hi = _np.where(both, _np.maximum(self.w_hi, self.r_hi),
                               _np.where(w_real, self.w_hi, self.r_hi))
        # the window relocation trick needs every address under one window
        top = 0
        for pool in (self.w_pool, self.r_pool):
            if pool.his.shape[0]:
                top = max(top, int(pool.his.max()))
        self._batched = top < (1 << _WINDOW_SHIFT)
        self._e = self._h = None
        self._matrix = None
        if not self._snapshot_labels():
            self._build_matrix()

    def _snapshot_labels(self) -> bool:
        graph = self.graph
        labs = graph._hb_labels
        if labs is None or graph.hb_mode != "auto":
            return False
        e, h = labs
        evals = [e[s.id] for s in self.segs]
        if any(v is None for v in evals):
            return False
        try:
            # order-maintenance labels are arbitrary-precision ints; deep
            # graphs (fib) overflow int64 and fall back to the matrix/per-
            # pair paths, which only compare — never convert — the labels
            self._e = _np.asarray(evals, dtype=_np.int64)
            self._h = _np.asarray([h[s.id] for s in self.segs],
                                  dtype=_np.int64)
        except OverflowError:
            self._e = self._h = None
            return False
        return True

    def _build_matrix(self) -> None:
        if len(self.segs) > MATRIX_MAX_SEGS:
            return
        reach = self.graph._reachability()
        n_global = len(reach)
        nbytes = (n_global + 7) // 8 or 1
        ids = [s.id for s in self.segs]
        rows = _np.empty((len(ids), n_global), dtype=bool)
        for k, sid in enumerate(ids):
            bits = _np.unpackbits(
                _np.frombuffer(reach[sid].to_bytes(nbytes, "little"),
                               dtype=_np.uint8),
                bitorder="little")
            rows[k] = bits[:n_global]
        sub = rows[:, ids]                      # reach[i] restricted to segs
        self._matrix = sub | sub.T              # ordered in either direction

    def ordered_mask(self, ii: "_np.ndarray", jj: "_np.ndarray"
                     ) -> Optional["_np.ndarray"]:
        """Batched ``graph.ordered`` over pair index arrays (None = no
        batched backing; caller falls back to per-pair queries)."""
        graph = self.graph
        if self._e is not None:
            graph.q_label += ii.shape[0]
            return ((self._e[ii] < self._e[jj])
                    == (self._h[ii] < self._h[jj]))
        if self._matrix is not None:
            graph.q_dp += ii.shape[0]
            return self._matrix[ii, jj]
        return None

    def check_pairs(self, pairs: Sequence[Tuple[int, int]]
                    ) -> Tuple[List[Tuple[int, int, IntervalSet]], int]:
        """One chunk of the pair sweep: returns ``([(i, j, ranges)], ordered)``.

        Produces exactly the conflicts the Python loop would: the batched
        ordered mask and hull prefilter only remove pairs whose result is
        known (ordered, or provably disjoint hulls).
        """
        if not pairs:
            return [], 0
        idx = _np.asarray(pairs, dtype=_np.int64)
        ii, jj = idx[:, 0], idx[:, 1]
        omask = self.ordered_mask(ii, jj)
        if omask is None:
            graph, segs = self.graph, self.segs
            omask = _np.fromiter(
                (graph.ordered(segs[int(i)], segs[int(j)]) for i, j in pairs),
                dtype=bool, count=len(pairs))
        n_ordered = int(omask.sum())
        unordered = ~omask
        # hull prefilter: a conflict needs w1 to meet rw2 or w2 to meet r1
        i_u, j_u = ii[unordered], jj[unordered]
        hit = (((self.w_lo[i_u] < self.rw_hi[j_u])
                & (self.rw_lo[j_u] < self.w_hi[i_u]))
               | ((self.w_lo[j_u] < self.r_hi[i_u])
                  & (self.r_lo[i_u] < self.w_hi[j_u])))
        i_h, j_h = i_u[hit], j_u[hit]
        out: List[Tuple[int, int, IntervalSet]] = []
        if not self._batched:
            segs = self.segs
            for i, j in zip(i_h.tolist(), j_h.tolist()):
                ranges = conflict_ranges_arrays(segs[i].np_arrays(),
                                                segs[j].np_arrays())
                if ranges is not None:
                    out.append((i, j, ranges))
            return out, n_ordered
        for start in range(0, i_h.shape[0], _PAIR_BATCH):
            bi = i_h[start:start + _PAIR_BATCH]
            bj = j_h[start:start + _PAIR_BATCH]
            self._conflicts_batch(bi, bj, out)
        return out, n_ordered

    def _conflicts_batch(self, bi: "_np.ndarray", bj: "_np.ndarray",
                         out: List[Tuple[int, int, IntervalSet]]) -> None:
        """Compute ``(w1 ∩ rw2) ∪ (w2 ∩ r1)`` for every pair in one sweep.

        Pair ``k``'s operands are relocated into window ``k << 48``; windows
        are disjoint and ordered, so the pooled arrays stay sorted, the
        global intersect/union sweeps never mix pairs, and the owning pair
        of each output interval is just ``lo >> 48``.
        """
        offsets = _np.arange(bi.shape[0], dtype=_np.int64) << _WINDOW_SHIFT
        p1 = intersect_arrays(*self.w_pool.gather(bi, offsets),
                              *self.rw_pool.gather(bj, offsets))
        p2 = intersect_arrays(*self.w_pool.gather(bj, offsets),
                              *self.r_pool.gather(bi, offsets))
        los, his = union_arrays(*p1, *p2)
        n = los.shape[0]
        if not n:
            return
        pair_pos = los >> _WINDOW_SHIFT
        base = pair_pos << _WINDOW_SHIFT
        los_l = (los - base).tolist()
        his_l = (his - base).tolist()
        bounds = _np.nonzero(_np.diff(pair_pos))[0] + 1
        starts = [0] + bounds.tolist() + [n]
        owners = pair_pos[starts[:-1]].tolist()
        for g, k in enumerate(owners):
            lo_s, hi_s = starts[g], starts[g + 1]
            ranges = IntervalSet()
            ranges._los = los_l[lo_s:hi_s]
            ranges._his = his_l[lo_s:hi_s]
            out.append((int(bi[k]), int(bj[k]), ranges))


def resolve_kernel(kernel: str, graph, n_pairs: int) -> str:
    """Map the ``analysis_kernel`` knob to the kernel actually used.

    ``auto`` picks numpy only when it is importable, the pair count clears
    :data:`AUTO_MIN_PAIRS`, and the graph is not in ``checked`` happens-before
    mode (whose whole point is the per-query index-vs-DP cross-check the
    batched mask would skip).  An explicit ``numpy`` request degrades to
    ``python`` gracefully when numpy is absent.
    """
    if kernel not in ("auto", "numpy", "python"):
        raise ValueError(f"unknown analysis_kernel {kernel!r} "
                         "(expected auto|numpy|python)")
    if kernel == "python":
        return "python"
    if not HAVE_NUMPY or graph.hb_mode == "checked":
        return "python"
    if kernel == "auto" and n_pairs < AUTO_MIN_PAIRS:
        return "python"
    return "numpy"
