"""Determinacy-race analysis passes (the paper's Algorithm 1).

Three interchangeable implementations, all producing identical candidate
sets (property-tested against each other):

* :func:`find_races_naive` — the faithful Algorithm 1: for every ordered pair
  of segments with no happens-before path, intersect
  ``s1.w ∩ (s2.r ∪ s2.w)``.  :math:`O(n^2)` pairs; used on the
  microbenchmarks and as the oracle.
* :func:`find_races_indexed` — address-indexed candidate generation: a sweep
  over all write intervals finds only the segment pairs that actually share
  bytes, then applies the same happens-before filter.  This is what the
  harness uses for LULESH-sized graphs.
* :func:`find_races_parallel` — the paper's future-work item ("the analysis
  is embarrassingly parallel, but currently run sequentially"): the indexed
  candidate set is partitioned across worker threads.  Benchmarked by the A1
  ablation.

The parallel pass runs under a supervisor (:func:`find_races_supervised`):
each chunk of candidate pairs gets a bounded number of retries with
exponential backoff and an optional per-chunk deadline; chunks that keep
failing are quarantined rather than allowed to take down the whole pass, and
the result is a :class:`PartialAnalysis` that states exactly how many
candidate pairs went unchecked.  A worker exception therefore degrades the
analysis instead of discarding every completed chunk.

The passes produce *raw* :class:`RaceCandidate` conflicts; the Section IV
suppressions are applied afterwards by
:class:`repro.core.suppress.SuppressionEngine` so ablations can toggle them
independently.
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.segments import Segment, SegmentGraph
from repro.faults.inject import get_injector
from repro.obs.metrics import get_registry
from repro.util.intervals import IntervalSet

_FAULTS = get_injector()


@dataclass
class RaceCandidate:
    """An unordered segment pair conflicting on ``ranges`` (pre-suppression)."""

    s1: Segment
    s2: Segment
    ranges: IntervalSet

    def key(self) -> Tuple[int, int]:
        a, b = self.s1.id, self.s2.id
        return (a, b) if a <= b else (b, a)


def _conflict_ranges(s1: Segment, s2: Segment) -> IntervalSet:
    """``(s1.w ∩ (s2.r ∪ s2.w)) ∪ (s2.w ∩ s1.r)`` as a normalized set.

    Uses each segment's cached flat :class:`IntervalSet` view, so each of the
    three intersections is one linear merge of sorted interval lists instead
    of a tree-stabbing walk; the results are unioned in one pass.
    """
    w1, w2 = s1.writes_set(), s2.writes_set()
    out = w1.intersection(w2)
    for part in (w1.intersection(s2.reads_set()),
                 w2.intersection(s1.reads_set())):
        for lo, hi in part.pairs():
            out.add(lo, hi)
    return out


def _conflict_ranges_tree(s1: Segment, s2: Segment) -> IntervalSet:
    """Legacy tree-walk conflict computation (bench baseline / test oracle)."""
    out = s1.writes.intersection_tree(s2.writes)
    out = out.union(s1.writes.intersection_tree(s2.reads))
    out = out.union(s2.writes.intersection_tree(s1.reads))
    return out


def find_races_naive(graph: SegmentGraph) -> List[RaceCandidate]:
    """Faithful Algorithm 1: all-pairs with happens-before filtering."""
    reg = get_registry()
    out: List[RaceCandidate] = []
    with reg.phase("analysis"):
        with reg.phase("analysis.prepare"):
            graph.prepare_queries()
        segs = [s for s in graph.segments if s.has_accesses]
        checked = ordered = 0
        with reg.phase("analysis.pairs"):
            for i in range(len(segs)):
                s1 = segs[i]
                for j in range(i + 1, len(segs)):
                    s2 = segs[j]
                    if not s1.writes and not s2.writes:
                        continue
                    checked += 1
                    if graph.ordered(s1, s2):
                        ordered += 1
                        continue
                    ranges = _conflict_ranges(s1, s2)
                    if ranges:
                        out.append(RaceCandidate(s1, s2, ranges))
        _record_pass(reg, "naive", checked, ordered, len(out))
    return out


def _record_pass(reg, mode: str, checked: int, ordered: int,
                 conflicts: int) -> None:
    """Publish one analysis pass's pair-work counters."""
    reg.counter("analysis.pairs_checked").inc(checked)
    reg.counter("analysis.pairs_ordered").inc(ordered)
    reg.counter("analysis.conflicts").inc(conflicts)
    reg.gauge("analysis.last_mode").set(mode)


def _write_index(segs: Sequence[Segment]
                 ) -> List[Tuple[int, int, int, bool]]:
    """Flatten every access interval into (lo, hi, seg_index, is_write)."""
    events: List[Tuple[int, int, int, bool]] = []
    for idx, seg in enumerate(segs):
        for iv in seg.writes:
            events.append((iv.lo, iv.hi, idx, True))
        for iv in seg.reads:
            events.append((iv.lo, iv.hi, idx, False))
    events.sort(key=lambda e: (e[0], e[1]))
    return events


def _candidate_pairs(segs: Sequence[Segment]) -> Set[Tuple[int, int]]:
    """Segment index pairs that share at least one byte with >=1 write.

    Sweep over sorted intervals with an active set pruned by end address.
    """
    events = _write_index(segs)
    pairs: Set[Tuple[int, int]] = set()
    active: List[Tuple[int, int, int, bool]] = []     # (hi, lo, idx, is_write)
    for lo, hi, idx, is_write in events:
        active = [a for a in active if a[0] > lo]     # drop non-overlapping
        for ahi, alo, aidx, awrite in active:
            if aidx != idx and (is_write or awrite):
                pairs.add((aidx, idx) if aidx < idx else (idx, aidx))
        active.append((hi, lo, idx, is_write))
    return pairs


def _resolve_kernel(reg, kernel: str, graph: SegmentGraph,
                    n_pairs: int) -> str:
    """Pick the pair-check kernel for this pass and publish the choice."""
    from repro.core import npkernel
    used = npkernel.resolve_kernel(kernel, graph, n_pairs)
    if kernel == "numpy" and used == "python":
        # requested but unavailable: degrade loudly, not fatally
        reg.counter("analysis.kernel_fallbacks").inc()
    reg.gauge("analysis.kernel").set(used)
    return used


def find_races_indexed(graph: SegmentGraph, *,
                       kernel: str = "auto") -> List[RaceCandidate]:
    """Address-indexed Algorithm 1 (same result set as the naive pass).

    ``kernel`` selects the pair-check backend: ``python`` (the oracle loop),
    ``numpy`` (batched array sweeps, :mod:`repro.core.npkernel`) or ``auto``.
    Both kernels produce identical candidate lists.
    """
    reg = get_registry()
    out: List[RaceCandidate] = []
    with reg.phase("analysis"):
        with reg.phase("analysis.prepare"):
            graph.prepare_queries()
        segs = [s for s in graph.segments if s.has_accesses]
        with reg.phase("analysis.candidates"):
            pairs = _candidate_pairs(segs)
        reg.counter("analysis.candidate_pairs").inc(len(pairs))
        ordered = 0
        used = _resolve_kernel(reg, kernel, graph, len(pairs))
        if used == "numpy":
            from repro.core.npkernel import KernelContext
            with reg.phase("analysis.pairs"):
                ctx = KernelContext(graph, segs)
                found, ordered = ctx.check_pairs(list(pairs))
                out = [RaceCandidate(segs[i], segs[j], ranges)
                       for i, j, ranges in found]
        else:
            # iterate unsorted and sort only the (much smaller) surviving
            # candidate list — segment ids increase with segs-list index, so
            # sorting by key() yields the same deterministic order as sorting
            # all pairs up front
            with reg.phase("analysis.pairs"):
                for i, j in pairs:
                    s1, s2 = segs[i], segs[j]
                    if graph.ordered(s1, s2):
                        ordered += 1
                        continue
                    ranges = _conflict_ranges(s1, s2)
                    if ranges:
                        out.append(RaceCandidate(s1, s2, ranges))
        out.sort(key=lambda c: c.key())
        _record_pass(reg, "indexed", len(pairs), ordered, len(out))
    return out


#: fixed chunk size for the parallel pass — independent of the worker count
#: so the work partition (and therefore any fp-free result assembly) is
#: deterministic on every machine
_PARALLEL_CHUNK = 64


@dataclass
class QuarantinedChunk:
    """One chunk the supervisor gave up on after exhausting retries."""

    index: int
    pairs: int
    attempts: int
    error: str

    def to_dict(self) -> dict:
        return {"index": self.index, "pairs": self.pairs,
                "attempts": self.attempts, "error": self.error}


@dataclass
class PartialAnalysis:
    """The supervised pass's result: candidates + explicit coverage.

    ``candidates`` is always the deterministic sorted list over every chunk
    that *did* complete; ``unchecked_pairs`` says exactly how much of the
    candidate space the quarantined chunks cover.  A fault-free run has
    ``complete == True`` and quarantines nothing.
    """

    candidates: List[RaceCandidate] = field(default_factory=list)
    chunks_total: int = 0
    chunks_ok: int = 0
    pairs_total: int = 0
    pairs_checked: int = 0
    retries: int = 0
    deadline_hits: int = 0
    quarantined: List[QuarantinedChunk] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.quarantined and self.pairs_checked == self.pairs_total

    @property
    def unchecked_pairs(self) -> int:
        return self.pairs_total - self.pairs_checked

    def to_dict(self) -> dict:
        return {
            "schema": "taskgrind-partial-analysis/1",
            "complete": self.complete,
            "chunks": {"total": self.chunks_total, "ok": self.chunks_ok,
                       "quarantined": len(self.quarantined)},
            "pairs": {"total": self.pairs_total,
                      "checked": self.pairs_checked,
                      "unchecked": self.unchecked_pairs},
            "retries": self.retries,
            "deadline_hits": self.deadline_hits,
            "quarantine": [q.to_dict() for q in self.quarantined],
        }

    def summary(self) -> str:
        if self.complete:
            return (f"all {self.pairs_total} candidate pairs checked "
                    f"({self.chunks_total} chunks)")
        return (f"{len(self.quarantined)} of {self.chunks_total} chunks "
                f"quarantined; {self.unchecked_pairs} of {self.pairs_total} "
                f"candidate pairs unchecked")


def find_races_supervised(graph: SegmentGraph, *,
                          workers: Optional[int] = None,
                          deadline_s: Optional[float] = None,
                          max_retries: int = 2,
                          backoff_s: float = 0.01,
                          kernel: str = "auto") -> PartialAnalysis:
    """The parallel pass under supervision.

    Every chunk is attempted up to ``1 + max_retries`` times with
    exponential backoff between attempts; a chunk whose worker raises (or
    misses the per-chunk ``deadline_s``) on every attempt is quarantined
    and its candidate pairs booked as unchecked — the chunks that *did*
    complete are never discarded.  Faults are observed exactly where the
    fault injector plants them (:meth:`FaultInjector.on_analysis_chunk`).
    """
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    reg = get_registry()
    result = PartialAnalysis()
    with reg.phase("analysis"):
        with reg.phase("analysis.prepare"):
            graph.prepare_queries()       # materialize once, shared read-only
            segs = [s for s in graph.segments if s.has_accesses]
            for s in segs:
                s.flush_accesses()        # no lazy tree builds inside workers
                s.reads_set()
                s.writes_set()
        with reg.phase("analysis.candidates"):
            pairs = sorted(_candidate_pairs(segs))
        reg.counter("analysis.candidate_pairs").inc(len(pairs))
        result.pairs_total = len(pairs)
        used = _resolve_kernel(reg, kernel, graph, len(pairs))
        kctx = None
        if used == "numpy":
            from repro.core.npkernel import KernelContext
            with reg.phase("analysis.prepare"):
                # built single-threaded; chunk workers only read it
                kctx = KernelContext(graph, segs)

        def check(index: int, chunk: Sequence[Tuple[int, int]]
                  ) -> Tuple[List[RaceCandidate], int]:
            _FAULTS.on_analysis_chunk(index)   # may raise / hang on demand
            found: List[RaceCandidate] = []
            n_ordered = 0
            # per-worker-thread phase: wall seconds sum across workers
            with reg.phase("analysis.pairs"):
                if kctx is not None:
                    hits, n_ordered = kctx.check_pairs(chunk)
                    found = [RaceCandidate(segs[i], segs[j], ranges)
                             for i, j, ranges in hits]
                    return found, n_ordered
                for i, j in chunk:
                    s1, s2 = segs[i], segs[j]
                    if graph.ordered(s1, s2):
                        n_ordered += 1
                        continue
                    ranges = _conflict_ranges(s1, s2)
                    if ranges:
                        found.append(RaceCandidate(s1, s2, ranges))
            return found, n_ordered

        if not pairs:
            reg.gauge("analysis.workers_requested").set(workers)
            reg.gauge("analysis.workers_effective").set(0)
            _record_pass(reg, "parallel", 0, 0, 0)
            return result
        chunks = [pairs[k:k + _PARALLEL_CHUNK]
                  for k in range(0, len(pairs), _PARALLEL_CHUNK)]
        result.chunks_total = len(chunks)
        # a pool wider than the chunk list would silently idle the extra
        # workers; clamp explicitly and record both counts so perf runs can
        # see the effective parallelism, not the requested one
        workers_eff = max(1, min(workers, len(chunks)))
        reg.gauge("analysis.workers_requested").set(workers)
        reg.gauge("analysis.workers_effective").set(workers_eff)
        reg.histogram("analysis.chunk_pairs").observe(len(chunks))
        out: List[RaceCandidate] = []
        ordered = 0
        pending = list(range(len(chunks)))
        last_error: Dict[int, str] = {}
        attempt = 0
        with reg.phase("analysis.supervise"):
            pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=workers_eff)
            try:
                while pending:
                    if attempt > 0:
                        reg.counter("resilience.chunks_retried").inc(
                            len(pending))
                        result.retries += len(pending)
                        time.sleep(backoff_s * (2 ** (attempt - 1)))
                    futures = {idx: pool.submit(check, idx, chunks[idx])
                               for idx in pending}
                    failed: List[int] = []
                    for idx, fut in futures.items():
                        try:
                            res, n_ordered = fut.result(timeout=deadline_s)
                        except concurrent.futures.TimeoutError:
                            result.deadline_hits += 1
                            reg.counter(
                                "resilience.analysis_deadline_hits").inc()
                            last_error[idx] = (
                                f"deadline exceeded ({deadline_s}s)")
                            failed.append(idx)
                            continue
                        except Exception as exc:
                            last_error[idx] = repr(exc)
                            failed.append(idx)
                            continue
                        out.extend(res)
                        ordered += n_ordered
                        result.chunks_ok += 1
                        result.pairs_checked += len(chunks[idx])
                    pending = failed
                    attempt += 1
                    if pending and attempt > max_retries:
                        for idx in pending:
                            result.quarantined.append(QuarantinedChunk(
                                index=idx, pairs=len(chunks[idx]),
                                attempts=attempt,
                                error=last_error.get(idx, "unknown")))
                        reg.counter("resilience.chunks_quarantined").inc(
                            len(pending))
                        reg.counter("resilience.pairs_unchecked").inc(
                            sum(len(chunks[idx]) for idx in pending))
                        pending = []
            finally:
                # don't block on a worker stuck past its deadline; cancel
                # anything not yet started and let stragglers finish alone
                pool.shutdown(wait=deadline_s is None, cancel_futures=True)
        out.sort(key=lambda c: c.key())
        result.candidates = out
        _record_pass(reg, "parallel", result.pairs_checked, ordered,
                     len(out))
    return result


def find_races_parallel(graph: SegmentGraph, *,
                        workers: Optional[int] = None,
                        kernel: str = "auto") -> List[RaceCandidate]:
    """Parallelized candidate verification (paper Section VII future work).

    Candidate generation stays sequential (it is a single cheap sweep); the
    happens-before check + interval intersection of each candidate pair —
    the dominant cost — is farmed out over a thread pool.  Produces the same
    sorted candidate list as :func:`find_races_indexed` for any worker count.

    Runs under the supervisor, so a worker exception costs (at most) the
    failing chunk, never the completed ones; callers that need the explicit
    coverage accounting should call :func:`find_races_supervised` directly.
    """
    return find_races_supervised(graph, workers=workers,
                                 kernel=kernel).candidates
