"""Taskgrind: the paper's contribution.

* :mod:`repro.core.segments` — segment-graph construction from OMPT-style
  runtime events (Section II-A / III-A), including the Eq. (1) parallel-region
  happens-before rule via fork/join nodes, plus per-segment read/write
  interval trees (Section III-B).
* :mod:`repro.core.analysis` — the determinacy-race pass (Algorithm 1), in a
  faithful :math:`O(n^2)` form and an address-indexed equivalent, plus the
  parallel post-processing variant the paper lists as future work.
* :mod:`repro.core.suppress` — the Section IV false-positive suppressions:
  ignore/instrument symbol lists, memory-recycling defeat (free-as-noop),
  TLS (TCB/DTV) filtering, and stack-frame (segment-local) filtering.
* :mod:`repro.core.reports` — error reports with allocation-site stack traces
  and source locations (Listing 6).
* :mod:`repro.core.tool` — :class:`TaskgrindTool`, the Valgrind-plugin
  analogue that ties it all together, including the modeled multi-thread
  lock-up behind the Table II ``deadlock`` cells.
"""

from repro.core.segments import (Segment, SegmentGraph, SegmentBuilder,
                                 SegmentModelConfig)
from repro.core.analysis import (RaceCandidate, find_races_naive,
                                 find_races_indexed, find_races_parallel)
from repro.core.suppress import SuppressionConfig, SuppressionEngine
from repro.core.reports import RaceReport, format_report
from repro.core.tool import TaskgrindTool, TaskgrindOptions
from repro.core.assistant import Suggestion, render_suggestions, suggest

__all__ = [
    "Segment", "SegmentGraph", "SegmentBuilder", "SegmentModelConfig",
    "RaceCandidate", "find_races_naive", "find_races_indexed",
    "find_races_parallel",
    "SuppressionConfig", "SuppressionEngine",
    "RaceReport", "format_report",
    "TaskgrindTool", "TaskgrindOptions",
    "Suggestion", "suggest", "render_suggestions",
]
