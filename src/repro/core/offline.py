"""CLI for offline trace analysis: ``python -m repro.core.offline``.

Runs Algorithm 1 (+ suppressions + report formatting) over a trace produced
by :func:`repro.core.trace.save_trace`, outside the "Valgrind framework" —
the paper's Section VII future-work deployment.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.reports import format_report, reports_to_json
from repro.core.trace import analyze_trace


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON from save_trace()")
    parser.add_argument("--mode", default="indexed",
                        choices=["naive", "indexed", "parallel"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    parser.add_argument("--suggest", action="store_true",
                        help="append fix suggestions to each report")
    args = parser.parse_args(argv)
    reports = analyze_trace(args.trace, mode=args.mode, workers=args.workers)
    if args.json:
        print(reports_to_json(reports))
    else:
        print(f"{len(reports)} determinacy race(s)\n")
        for report in reports:
            print(format_report(report))
            if args.suggest:
                from repro.core.assistant import render_suggestions
                print(render_suggestions(report))
            print()
    return 0 if not reports else 1


if __name__ == "__main__":
    sys.exit(main())
