"""CLI for offline trace analysis: ``python -m repro.core.offline``.

Runs Algorithm 1 (+ suppressions + report formatting) over a trace produced
by :func:`repro.core.trace.save_trace`, outside the "Valgrind framework" —
the paper's Section VII future-work deployment.

``--stats[=json|pretty|prom]`` appends the observability document: offline
phase timings (load / analysis / suppress / report) plus the recording
run's embedded stats block, which carries the cost-model virtual time of
the instrumented execution.  With ``--json``, the stats document is
embedded in the report document under the ``"stats"`` key so the output
stays one parseable JSON object.

Damaged traces degrade, they don't crash: a truncated or corrupted file is
salvaged to its longest valid prefix, the analysis runs over what survived,
and the output carries an explicit coverage warning (exit code still 0/1 by
race count).  ``--strict-trace`` restores fail-stop behavior: any damage
exits 2 with the taxonomy error's actionable message.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.reports import format_report, report_to_dict
from repro.core.trace import analyze_trace_with_stats
from repro.errors import TraceError


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON from save_trace()")
    parser.add_argument("--mode", default="indexed",
                        choices=["naive", "indexed", "parallel"])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--analysis-kernel", default="auto",
                        choices=["auto", "numpy", "python"],
                        help="conflict kernel for the pair sweep (auto picks "
                             "numpy when importable and profitable; python "
                             "is the oracle)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    parser.add_argument("--suggest", action="store_true",
                        help="append fix suggestions to each report")
    parser.add_argument("--stats", nargs="?", const="pretty", default=None,
                        choices=["json", "pretty", "prom"],
                        help="emit the observability document "
                             "(phase timings, counters, record-run stats); "
                             "'prom' renders Prometheus text exposition")
    parser.add_argument("--profile", metavar="OUT.json", default=None,
                        help="write an analyze-side taskgrind-profile/1 "
                             "document (count-axis buckets + phase timers; "
                             "the virtual-time axis is empty offline)")
    parser.add_argument("--explain", action="store_true",
                        help="append a provenance witness to each report "
                             "(task ancestry, common ancestor, hb evidence)")
    parser.add_argument("--trace-timeline", metavar="OUT.json", default=None,
                        help="export the analysis timeline (Chrome "
                             "trace-event JSON; wall-clock axis offline)")
    parser.add_argument("--strict-trace", action="store_true",
                        help="fail (exit 2) on any trace damage instead of "
                             "salvaging the longest valid prefix")
    args = parser.parse_args(argv)
    tracer = None
    if args.trace_timeline is not None:
        from repro.obs.tracer import get_tracer
        tracer = get_tracer()
        tracer.enable()
    prof = None
    reg_baseline = None
    if args.profile is not None:
        from repro.obs.metrics import get_registry
        from repro.obs.prof import get_profiler
        prof = get_profiler()
        prof.enable()
        prof.meta.update({"trace": args.trace, "mode": args.mode,
                          "axis": "counts-only"})
        reg_baseline = get_registry().mark()
    try:
        reports, stats = analyze_trace_with_stats(
            args.trace, mode=args.mode, workers=args.workers,
            explain=args.explain, strict=args.strict_trace,
            kernel=args.analysis_kernel)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if tracer is not None:
        tracer.export(args.trace_timeline)
        tracer.disable()
    if prof is not None:
        from repro.obs.metrics import get_registry
        from repro.obs.profdoc import save_profile
        phases = get_registry().delta_since(reg_baseline).get("phases")
        save_profile(args.profile, prof, phases=phases)
        prof.disable()
        print(f"wrote analyze-side profile to {args.profile}",
              file=sys.stderr)
    if args.json:
        doc = {
            "tool": "taskgrind",
            "protocol": 1,
            "error_count": len(reports),
            "errors": [report_to_dict(r) for r in reports],
        }
        if args.stats is not None:
            doc["stats"] = stats
        print(json.dumps(doc, indent=2))
    else:
        coverage = stats.get("coverage")
        if coverage is not None and not coverage["complete"]:
            seg = coverage["segments"]
            total = seg["total"] if seg["total"] is not None else "?"
            print(f"WARNING: trace damaged — salvaged "
                  f"{seg['recovered']}/{total} segments "
                  f"({coverage['chunks']['corrupt']} bad chunk(s), last good "
                  f"vtime {coverage['last_good_vtime']:.0f}); results below "
                  f"cover the recovered prefix only\n")
        resilience = stats.get("analysis", {}).get("resilience")
        if resilience is not None and not resilience["complete"]:
            pairs = resilience["pairs"]
            print(f"WARNING: analysis incomplete — "
                  f"{resilience['chunks']['quarantined']} chunk(s) "
                  f"quarantined, {pairs['unchecked']} of {pairs['total']} "
                  f"candidate pairs unchecked\n")
        print(f"{len(reports)} determinacy race(s)\n")
        for report in reports:
            print(format_report(report))
            if args.suggest:
                from repro.core.assistant import render_suggestions
                print(render_suggestions(report))
            print()
        if args.stats == "json":
            print(json.dumps(stats, indent=2))
        elif args.stats == "prom":
            from repro.obs.metrics import get_registry
            sys.stdout.write(get_registry().render_prom())
        elif args.stats == "pretty":
            from repro.obs.metrics import get_registry
            print(get_registry().render())
    return 0 if not reports else 1


if __name__ == "__main__":
    sys.exit(main())
