"""Taskgrind's built-in OMPT tool.

The paper (Section III-A): *"Taskgrind provides a built-in OMPT-tool that
forwards the OpenMP program state to the Taskgrind plugin via client
requests.  The OMPT-tool is automatically injected into the instrumented
program by Taskgrind."*

This module is that injected tool: an :class:`~repro.openmp.ompt.OmptObserver`
that translates every runtime event into a client request on the machine's
:class:`~repro.vex.client_requests.ClientRequestRouter`.  The
:class:`~repro.core.tool.TaskgrindTool` plugin subscribes to the ``tg_*``
request names — the same indirection the real tool uses, so the tests can
exercise the client-request machinery end to end.
"""

from __future__ import annotations

from repro.obs.tracer import get_tracer
from repro.openmp.ompt import OmptObserver, SyncKind

_TRACER = get_tracer()


class TaskgrindOmptShim(OmptObserver):
    """Forwards OMPT events to the Taskgrind plugin via client requests."""

    def __init__(self, machine) -> None:
        self.machine = machine

    def _req(self, name: str, payload) -> None:
        if _TRACER.enabled:
            _TRACER.instant(f"shim.ompt.{name}",
                            self.machine.scheduler.current_id(), cat="shim")
        self.machine.client_requests.request(name, payload)

    def _tid(self) -> int:
        return self.machine.scheduler.current_id()

    # -- parallel regions ---------------------------------------------------

    def on_parallel_begin(self, region, encountering_task) -> None:
        self._req("tg_parallel_begin",
                  (region, encountering_task, self._tid()))

    def on_parallel_end(self, region, encountering_task) -> None:
        self._req("tg_parallel_end",
                  (region, encountering_task, self._tid()))

    def on_implicit_task_begin(self, region, task) -> None:
        self._req("tg_implicit_begin", (region, task, self._tid()))

    def on_implicit_task_end(self, region, task) -> None:
        self._req("tg_implicit_end", (region, task, self._tid()))

    # -- explicit tasks ---------------------------------------------------------

    def on_task_create(self, task, parent) -> None:
        self._req("tg_task_create", (task, parent, self._tid()))

    def on_task_dependence_pair(self, pred, succ, dep) -> None:
        self._req("tg_task_dependence", (pred, succ, dep))

    def on_task_schedule_begin(self, task, thread_id) -> None:
        self._req("tg_task_begin", (task, thread_id))

    def on_task_schedule_end(self, task, thread_id, completed) -> None:
        self._req("tg_task_end", (task, thread_id, completed))

    def on_task_detach_fulfill(self, task, thread_id) -> None:
        self._req("tg_task_detach_fulfill", (task, thread_id))

    # -- synchronisation -----------------------------------------------------------

    def on_sync_region_begin(self, kind: SyncKind, task, thread_id) -> None:
        self._req("tg_sync_begin", (kind, task, thread_id))

    def on_sync_region_end(self, kind: SyncKind, task, thread_id) -> None:
        self._req("tg_sync_end", (kind, task, thread_id))

    # Taskgrind does not support mutexes (paper Section VI.b): the shim does
    # not even forward them.
