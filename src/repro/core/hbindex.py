"""O(1) happens-before index over the segment graph (DePa-style labels).

The bitmask reachability DP in :class:`repro.core.segments.SegmentGraph` is
exact for every DAG but costs O(n²/64) words and a full recompute whenever
an edge lands after the previous materialization.  For the fork-join subset
of OpenMP programs — tasks, taskwaits, taskgroups, parallel regions,
barriers — happens-before is answerable in O(1) from *order-maintenance
labels*, the construction of DePa (Westrick et al., arXiv:2204.14168) and of
the SP-order race detectors (Bender et al.; Utterback et al.,
arXiv:1901.00622).

Two total orders are maintained (:class:`repro.util.omlist.OrderList`):

* the **E order** ("English"): left-to-right depth-first order — a fork's
  task child precedes the continuation;
* the **H order** ("Hebrew"): right-to-left depth-first order — the
  continuation (and everything it ever does) precedes the task child.

For segments of a series-parallel graph the invariant is::

    a happens-before b   <=>   a <E b  and  a <H b
    a parallel with b    <=>   a <E b  xor  a <H b

Maintenance discipline (all O(1) amortized per event):

* a **root** goes last in E and first in H (mutually-parallel roots end up
  on opposite sides of each order);
* a **fork child** is inserted immediately after the fork segment in E
  (later children stack closer to the fork, reversing their order) and
  immediately before the fork's *end marker* in H (later children land
  after earlier children's entire subtrees — markers are extra list nodes
  that never correspond to segments);
* any other new segment is placed **sequentially** after the source of its
  first incoming edge, in both orders;
* a later in-edge ``u -> v`` whose label order disagrees triggers a
  **join reposition**: while ``v`` has no outgoing edges it may be moved to
  immediately after its label-maximal predecessor in each order (this is
  how taskwait/taskgroup/barrier joins and the sequenced-task continuation
  edge are absorbed).

Shapes outside the fork-join fragment — task *dependences*,
``mutexinoutset`` serialization edges, ``detach`` completion nodes, or a
late in-edge to a segment that already has successors — cannot generally be
embedded in two orders.  The first such event marks the index **inexact**
and every query returns ``None``; callers (``SegmentGraph.ordered``) then
fall back to the bitmask DP, which remains the correctness oracle.  The
``checked`` mode of :class:`~repro.core.segments.SegmentGraph` cross-checks
every O(1) answer against the DP and is used by the property tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.util.omlist import OMNode, OrderList


class HbIndex:
    """Incrementally maintained two-order happens-before labels."""

    def __init__(self) -> None:
        self._e = OrderList()
        self._h = OrderList()
        #: segment id -> (E node, H node)
        self._pos: Dict[int, Tuple[OMNode, OMNode]] = {}
        #: fork segment id -> its H-order end marker
        self._marker: Dict[int, OMNode] = {}
        self._preds: Dict[int, List[int]] = {}
        self._out: Dict[int, int] = {}
        self.exact = True
        self.inexact_reason: Optional[str] = None
        self.queries = 0              # observability (bench counters)
        self.fallbacks = 0

    # -- maintenance ---------------------------------------------------------

    def mark_inexact(self, reason: str) -> None:
        """Permanently degrade to the bitmask fallback for this run."""
        if self.exact:
            self.exact = False
            self.inexact_reason = reason

    def place_root(self, sid: int) -> None:
        """A segment with no predecessors (a thread's serial strand)."""
        if sid in self._pos:
            return
        self._pos[sid] = (self._e.insert_last(), self._h.insert_first())
        self._preds[sid] = []

    def fork_child(self, fork_sid: int, child_sid: int) -> None:
        """Place ``child`` as a parallel branch forked off ``fork``.

        Call *before* the corresponding ``add_edge(fork, child)`` so the
        generic edge handler sees a consistent placement.  Both the task
        child and the continuation of a task-creating split are fork
        children; so are a team's implicit tasks (off the region fork
        segment) and the post-barrier segments (off the barrier join node).
        """
        if not self.exact:
            return
        fork_pos = self._pos.get(fork_sid)
        if fork_pos is None or child_sid in self._pos:
            self.mark_inexact("fork from unplaced segment")
            return
        fe, fh = fork_pos
        marker = self._marker.get(fork_sid)
        if marker is None:
            marker = self._marker[fork_sid] = self._h.insert_after(fh)
        self._pos[child_sid] = (self._e.insert_after(fe),
                                self._h.insert_before(marker))
        self._preds[child_sid] = []

    def on_edge(self, src_sid: int, dst_sid: int) -> None:
        """Observe one happens-before edge (called from ``add_edge``)."""
        if not self.exact:
            return
        src = self._pos.get(src_sid)
        if src is None:
            self.mark_inexact("edge from unplaced segment")
            return
        self._out[src_sid] = self._out.get(src_sid, 0) + 1
        dst = self._pos.get(dst_sid)
        if dst is None:
            # first in-edge: sequential placement after the source
            self._pos[dst_sid] = (self._e.insert_after(src[0]),
                                  self._h.insert_after(src[1]))
            self._preds[dst_sid] = [src_sid]
            return
        self._preds[dst_sid].append(src_sid)
        if src[0].label < dst[0].label and src[1].label < dst[1].label:
            return                      # already consistent
        if self._out.get(dst_sid, 0):
            # dst has successors placed relative to it: moving it would
            # strand them — not expressible incrementally
            self.mark_inexact("late in-edge to a segment with successors")
            return
        self._reposition_after_preds(dst_sid)

    def _reposition_after_preds(self, sid: int) -> None:
        """Move ``sid`` immediately after its label-maximal predecessor in
        each order (the join rule)."""
        e_node, h_node = self._pos[sid]
        preds = self._preds[sid]
        best_e = max((self._pos[p][0] for p in preds if p in self._pos),
                     key=lambda n: n.label, default=None)
        best_h = max((self._pos[p][1] for p in preds if p in self._pos),
                     key=lambda n: n.label, default=None)
        if best_e is not None and best_e.label > e_node.label:
            self._e.move_after(e_node, best_e)
        if best_h is not None and best_h.label > h_node.label:
            self._h.move_after(h_node, best_h)

    # -- queries -------------------------------------------------------------

    def placed(self, sid: int) -> bool:
        return sid in self._pos

    def happens_before_hint(self, a_sid: int, b_sid: int) -> Optional[bool]:
        """O(1) directional query, or ``None`` when the index cannot answer."""
        if not self.exact:
            return None
        pa = self._pos.get(a_sid)
        pb = self._pos.get(b_sid)
        if pa is None or pb is None:
            self.fallbacks += 1
            return None
        self.queries += 1
        return pa[0].label < pb[0].label and pa[1].label < pb[1].label

    def ordered_hint(self, a_sid: int, b_sid: int) -> Optional[bool]:
        """O(1) either-direction query, or ``None`` when unanswerable."""
        if not self.exact:
            return None
        pa = self._pos.get(a_sid)
        pb = self._pos.get(b_sid)
        if pa is None or pb is None:
            self.fallbacks += 1
            return None
        self.queries += 1
        if pa[0].label < pb[0].label:
            return pa[1].label < pb[1].label
        return pb[0].label < pa[0].label and pb[1].label < pa[1].label

    def label_arrays(self, n: int) -> Tuple[List[Optional[int]],
                                            List[Optional[int]]]:
        """Snapshot (E, H) labels into flat sid-indexed arrays.

        For query-heavy passes: two list indexings + comparisons per query
        instead of dict lookups and node dereferences.  The snapshot is only
        valid until the next insertion/relabel — callers
        (``SegmentGraph.prepare_queries``) invalidate it on any graph
        mutation.
        """
        e: List[Optional[int]] = [None] * n
        h: List[Optional[int]] = [None] * n
        for sid, (en, hn) in self._pos.items():
            if sid < n:
                e[sid] = en.label
                h[sid] = hn.label
        return e, h

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self, *, bytes_per_label: int = 48) -> int:
        """Simulated footprint: two list nodes + dict slots per segment."""
        return (len(self._e) + len(self._h)) * bytes_per_label
