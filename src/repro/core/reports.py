"""Race reports: the Listing 6 error format.

A :class:`RaceReport` carries everything the paper's report shows:

* the two conflicting segments, labelled by the source location of the task
  pragma that created them (``task.1.c:8`` / ``task.1.c:11``);
* the conflicting byte range;
* the heap block it falls into, with size, block address and the *allocation
  site* stack trace Taskgrind recorded by wrapping the allocator
  (``allocated in block 0xC3EA040 of size 8 from task.1.c:3``);
* representative per-access source locations when debug info is present.

``format_report(..., style="romp")`` renders the same conflict the way the
paper's Listing 5 shows ROMP reporting it — raw addresses, no debug info —
for the L456 error-reporting comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.analysis import RaceCandidate
from repro.core.segments import Segment, SegmentGraph
from repro.machine.debuginfo import SourceLocation, format_stack
from repro.util.intervals import IntervalSet


@dataclass
class ProvenanceWitness:
    """Why the tool believes two segments race (the ``--explain`` payload).

    Assembled from the segment graph after analysis: where each racing
    segment came from (its ancestry up the graph), where their histories
    last met (nearest common ancestor), the first conflicting byte
    interval, and which happens-before query tier established that no
    ordering path exists.
    """

    #: ancestry of each racing segment as ``(seg_id, kind, label)`` triples,
    #: nearest-first, ending at the common ancestor (or a root)
    s1_path: List[Tuple[int, str, str]] = field(default_factory=list)
    s2_path: List[Tuple[int, str, str]] = field(default_factory=list)
    #: task-pragma ancestry (task labels creator-to-leaf) when tasks are live
    s1_tasks: List[str] = field(default_factory=list)
    s2_tasks: List[str] = field(default_factory=list)
    nca_id: Optional[int] = None
    nca_label: str = ""
    first_interval: Optional[Tuple[int, int]] = None
    #: which query tier answered "unordered" and its evidence
    hb_explanation: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "s1_path": [list(t) for t in self.s1_path],
            "s2_path": [list(t) for t in self.s2_path],
            "s1_tasks": self.s1_tasks,
            "s2_tasks": self.s2_tasks,
            "nca": (None if self.nca_id is None
                    else {"segment": self.nca_id, "label": self.nca_label}),
            "first_interval": (list(self.first_interval)
                               if self.first_interval else None),
            "hb": self.hb_explanation,
        }


@dataclass
class RaceReport:
    """One determinacy-race report, ready for rendering."""

    s1: Segment
    s2: Segment
    ranges: IntervalSet
    s1_loc: Optional[SourceLocation] = None      # representative access locs
    s2_loc: Optional[SourceLocation] = None
    block_addr: Optional[int] = None
    block_size: Optional[int] = None
    alloc_site: Optional[SourceLocation] = None
    alloc_stack: Tuple[SourceLocation, ...] = ()
    region_desc: str = ""
    witness: Optional[ProvenanceWitness] = None  # set by --explain
    #: degraded-evidence warnings (salvaged trace, quarantined analysis
    #: chunks, memory-budget coarsening) — rendered like suppression notes
    notes: Tuple[str, ...] = ()

    def key(self) -> Tuple[str, str]:
        """Deduplication key: the pair of segment labels (source order)."""
        a, b = self.s1.label(), self.s2.label()
        return (a, b) if a <= b else (b, a)

    def sort_key(self) -> Tuple:
        """Total deterministic order: label pair, access locations, ids.

        Everything :func:`dedupe_reports` needs to produce the same output
        list — same representatives, same order — regardless of the order
        analysis emitted the reports in (parallel mode shuffles it).
        """
        span = self.ranges.span
        return (self.key(),
                str(self.s1_loc or ""), str(self.s2_loc or ""),
                span.lo if span is not None else 0,
                min(self.s1.id, self.s2.id), max(self.s1.id, self.s2.id))


def build_report(machine, cand: RaceCandidate) -> RaceReport:
    """Assemble a report for one surviving candidate."""
    span = cand.ranges.span
    assert span is not None
    s1_loc = cand.s1.sample_loc(span.lo, span.hi)
    s2_loc = cand.s2.sample_loc(span.lo, span.hi)
    report = RaceReport(s1=cand.s1, s2=cand.s2, ranges=cand.ranges,
                        s1_loc=s1_loc, s2_loc=s2_loc,
                        region_desc=machine.space.describe(span.lo))
    block = machine.allocator.block_at(span.lo)
    if block is not None:
        report.block_addr = block.addr
        report.block_size = block.req_size or block.size
        report.alloc_site = block.alloc_site
        report.alloc_stack = tuple(block.alloc_stack)
    return report


def _ancestors(graph: SegmentGraph, preds: List[List[int]],
               start: int) -> Tuple[dict, set]:
    """BFS over predecessor edges: ``{id: parent-toward-start}`` + visited."""
    parent = {start: None}
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for sid in frontier:
            for p in preds[sid]:
                if p not in parent:
                    parent[p] = sid
                    nxt.append(p)
        frontier = nxt
    return parent, set(parent)


def _path_to(graph: SegmentGraph, parent: dict, start: int,
             ancestor: Optional[int]) -> List[Tuple[int, str, str]]:
    """The segment path ``start .. ancestor`` as (id, kind, label) triples."""
    if ancestor is None or ancestor not in parent:
        return [(start, graph.segments[start].kind,
                 graph.segments[start].label())]
    path: List[int] = []
    sid: Optional[int] = ancestor
    while sid is not None:
        path.append(sid)
        sid = parent[sid]
    path.reverse()                      # now start .. ancestor
    return [(i, graph.segments[i].kind, graph.segments[i].label())
            for i in path]


def _task_ancestry(seg: Segment) -> List[str]:
    """Task-pragma labels creator-to-leaf (empty offline, where task=None)."""
    labels: List[str] = []
    task = seg.task
    while task is not None:
        labels.append(task.label())
        task = task.parent
    labels.reverse()
    return labels


def build_witness(graph: SegmentGraph, report: RaceReport) -> ProvenanceWitness:
    """Assemble the provenance witness for one report from the graph."""
    s1, s2 = report.s1, report.s2
    preds = graph.predecessors_map()
    par1, anc1 = _ancestors(graph, preds, s1.id)
    par2, anc2 = _ancestors(graph, preds, s2.id)
    common = anc1 & anc2
    nca: Optional[int] = None
    if common:
        pos = graph.topo_positions()
        nca = max(common, key=lambda sid: pos[sid])
    witness = ProvenanceWitness(
        s1_path=_path_to(graph, par1, s1.id, nca),
        s2_path=_path_to(graph, par2, s2.id, nca),
        s1_tasks=_task_ancestry(s1),
        s2_tasks=_task_ancestry(s2),
        nca_id=nca,
        nca_label=graph.segments[nca].label() if nca is not None else "",
        hb_explanation=graph.explain_unordered(s1, s2),
    )
    for lo, hi in report.ranges.pairs():
        witness.first_interval = (lo, hi)
        break
    return witness


def _format_path(path: List[Tuple[int, str, str]]) -> str:
    parts = [f"seg#{sid}[{kind}] {label}" for sid, kind, label in path]
    if len(parts) > 6:                   # keep long chains readable
        parts = parts[:3] + [f"... ({len(parts) - 5} more)"] + parts[-2:]
    return " -> ".join(parts)


def format_witness(witness: ProvenanceWitness) -> str:
    """Render the ``--explain`` block appended below a report."""
    lines = ["provenance:"]
    if witness.s1_tasks:
        lines.append("    task ancestry (1): "
                     + " > ".join(witness.s1_tasks))
    if witness.s2_tasks:
        lines.append("    task ancestry (2): "
                     + " > ".join(witness.s2_tasks))
    lines.append("    segment path (1): " + _format_path(witness.s1_path))
    lines.append("    segment path (2): " + _format_path(witness.s2_path))
    if witness.nca_id is not None:
        lines.append(f"    diverged at seg#{witness.nca_id} "
                     f"({witness.nca_label}): nearest common ancestor of "
                     "both segments")
    else:
        lines.append("    no common ancestor: the segments come from "
                     "unrelated roots")
    if witness.first_interval is not None:
        lo, hi = witness.first_interval
        lines.append(f"    first conflicting interval: "
                     f"[{lo:#x}, {hi:#x}) ({hi - lo} bytes)")
    hb = witness.hb_explanation
    if hb:
        lines.append(f"    no happens-before path ({hb.get('tier', '?')} "
                     f"tier): {hb.get('reason', '')}")
    return "\n".join(lines)


def format_report(report: RaceReport, *, style: str = "taskgrind") -> str:
    """Render a report in the paper's Listing 6 (or Listing 5) shape."""
    if style == "romp":
        return _format_romp(report)
    span = report.ranges.span
    lines = [
        f"Segments {report.s1.label()} and {report.s2.label()} were declared",
        "    independent while accessing the same memory address",
    ]
    nbytes = report.ranges.total_bytes
    if report.block_addr is not None:
        lines.append(
            f"{nbytes} bytes from {span.lo:#x} allocated in block "
            f"{report.block_addr:#x} of size {report.block_size}")
        if report.alloc_site is not None:
            lines.append(f"    from {report.alloc_site}")
        if report.alloc_stack:
            lines.append(format_stack(report.alloc_stack))
    else:
        lines.append(f"{nbytes} bytes from {span.lo:#x} "
                     f"({report.region_desc})")
    if report.s1_loc or report.s2_loc:
        lines.append("conflicting accesses:")
        if report.s1_loc:
            lines.append(f"    at {report.s1_loc}")
        if report.s2_loc:
            lines.append(f"    at {report.s2_loc}")
    if report.witness is not None:
        lines.append(format_witness(report.witness))
    for note in report.notes:
        lines.append(f"WARNING: {note}")
    return "\n".join(lines)


def _format_romp(report: RaceReport) -> str:
    """ROMP's Listing 5 style: raw addresses, no debug info by default."""
    span = report.ranges.span
    return "\n".join([
        "data race found:",
        f"  two accesses to address {span.lo:#x}",
        "  (no source information available)",
    ])


def dedupe_reports(reports: List[RaceReport]) -> List[RaceReport]:
    """Collapse reports with identical segment-label pairs (loop iterations).

    Deterministic: the output order and the representative chosen for each
    label pair depend only on the *set* of reports, not on the order the
    analysis produced them in (parallel phase scheduling permutes it).
    """
    seen = {}
    for r in sorted(reports, key=RaceReport.sort_key):
        seen.setdefault(r.key(), r)
    return sorted(seen.values(), key=RaceReport.sort_key)


# ---------------------------------------------------------------------------
# machine-readable output (the analogue of Valgrind's --xml)
# ---------------------------------------------------------------------------

def report_to_dict(report: RaceReport) -> dict:
    """One report as plain data (stable keys, JSON-serializable)."""
    return {
        "kind": "DeterminacyRace",
        "segments": [
            {"label": report.s1.label(), "thread": report.s1.thread_id,
             "access": str(report.s1_loc) if report.s1_loc else None},
            {"label": report.s2.label(), "thread": report.s2.thread_id,
             "access": str(report.s2_loc) if report.s2_loc else None},
        ],
        "conflict": {
            "ranges": [[lo, hi] for lo, hi in report.ranges.pairs()],
            "bytes": report.ranges.total_bytes,
            "region": report.region_desc,
        },
        "allocation": None if report.block_addr is None else {
            "block": report.block_addr,
            "size": report.block_size,
            "site": str(report.alloc_site) if report.alloc_site else None,
            "stack": [str(loc) for loc in report.alloc_stack],
        },
        "witness": (report.witness.to_dict()
                    if report.witness is not None else None),
        "notes": list(report.notes),
    }


def reports_to_json(reports: List[RaceReport], *, indent: int = 2) -> str:
    """All reports as a JSON document (Valgrind ``--xml`` analogue)."""
    import json
    doc = {
        "tool": "taskgrind",
        "protocol": 1,
        "error_count": len(reports),
        "errors": [report_to_dict(r) for r in reports],
    }
    return json.dumps(doc, indent=indent)
