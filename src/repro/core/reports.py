"""Race reports: the Listing 6 error format.

A :class:`RaceReport` carries everything the paper's report shows:

* the two conflicting segments, labelled by the source location of the task
  pragma that created them (``task.1.c:8`` / ``task.1.c:11``);
* the conflicting byte range;
* the heap block it falls into, with size, block address and the *allocation
  site* stack trace Taskgrind recorded by wrapping the allocator
  (``allocated in block 0xC3EA040 of size 8 from task.1.c:3``);
* representative per-access source locations when debug info is present.

``format_report(..., style="romp")`` renders the same conflict the way the
paper's Listing 5 shows ROMP reporting it — raw addresses, no debug info —
for the L456 error-reporting comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.analysis import RaceCandidate
from repro.core.segments import Segment
from repro.machine.debuginfo import SourceLocation, format_stack
from repro.util.intervals import IntervalSet


@dataclass
class RaceReport:
    """One determinacy-race report, ready for rendering."""

    s1: Segment
    s2: Segment
    ranges: IntervalSet
    s1_loc: Optional[SourceLocation] = None      # representative access locs
    s2_loc: Optional[SourceLocation] = None
    block_addr: Optional[int] = None
    block_size: Optional[int] = None
    alloc_site: Optional[SourceLocation] = None
    alloc_stack: Tuple[SourceLocation, ...] = ()
    region_desc: str = ""

    def key(self) -> Tuple[str, str]:
        """Deduplication key: the pair of segment labels (source order)."""
        a, b = self.s1.label(), self.s2.label()
        return (a, b) if a <= b else (b, a)


def build_report(machine, cand: RaceCandidate) -> RaceReport:
    """Assemble a report for one surviving candidate."""
    span = cand.ranges.span
    assert span is not None
    s1_loc = cand.s1.sample_loc(span.lo, span.hi)
    s2_loc = cand.s2.sample_loc(span.lo, span.hi)
    report = RaceReport(s1=cand.s1, s2=cand.s2, ranges=cand.ranges,
                        s1_loc=s1_loc, s2_loc=s2_loc,
                        region_desc=machine.space.describe(span.lo))
    block = machine.allocator.block_at(span.lo)
    if block is not None:
        report.block_addr = block.addr
        report.block_size = block.req_size or block.size
        report.alloc_site = block.alloc_site
        report.alloc_stack = tuple(block.alloc_stack)
    return report


def format_report(report: RaceReport, *, style: str = "taskgrind") -> str:
    """Render a report in the paper's Listing 6 (or Listing 5) shape."""
    if style == "romp":
        return _format_romp(report)
    span = report.ranges.span
    lines = [
        f"Segments {report.s1.label()} and {report.s2.label()} were declared",
        "    independent while accessing the same memory address",
    ]
    nbytes = report.ranges.total_bytes
    if report.block_addr is not None:
        lines.append(
            f"{nbytes} bytes from {span.lo:#x} allocated in block "
            f"{report.block_addr:#x} of size {report.block_size}")
        if report.alloc_site is not None:
            lines.append(f"    from {report.alloc_site}")
        if report.alloc_stack:
            lines.append(format_stack(report.alloc_stack))
    else:
        lines.append(f"{nbytes} bytes from {span.lo:#x} "
                     f"({report.region_desc})")
    if report.s1_loc or report.s2_loc:
        lines.append("conflicting accesses:")
        if report.s1_loc:
            lines.append(f"    at {report.s1_loc}")
        if report.s2_loc:
            lines.append(f"    at {report.s2_loc}")
    return "\n".join(lines)


def _format_romp(report: RaceReport) -> str:
    """ROMP's Listing 5 style: raw addresses, no debug info by default."""
    span = report.ranges.span
    return "\n".join([
        "data race found:",
        f"  two accesses to address {span.lo:#x}",
        "  (no source information available)",
    ])


def dedupe_reports(reports: List[RaceReport]) -> List[RaceReport]:
    """Collapse reports with identical segment-label pairs (loop iterations)."""
    seen = {}
    for r in reports:
        seen.setdefault(r.key(), r)
    return list(seen.values())


# ---------------------------------------------------------------------------
# machine-readable output (the analogue of Valgrind's --xml)
# ---------------------------------------------------------------------------

def report_to_dict(report: RaceReport) -> dict:
    """One report as plain data (stable keys, JSON-serializable)."""
    return {
        "kind": "DeterminacyRace",
        "segments": [
            {"label": report.s1.label(), "thread": report.s1.thread_id,
             "access": str(report.s1_loc) if report.s1_loc else None},
            {"label": report.s2.label(), "thread": report.s2.thread_id,
             "access": str(report.s2_loc) if report.s2_loc else None},
        ],
        "conflict": {
            "ranges": [[lo, hi] for lo, hi in report.ranges.pairs()],
            "bytes": report.ranges.total_bytes,
            "region": report.region_desc,
        },
        "allocation": None if report.block_addr is None else {
            "block": report.block_addr,
            "size": report.block_size,
            "site": str(report.alloc_site) if report.alloc_site else None,
            "stack": [str(loc) for loc in report.alloc_stack],
        },
    }


def reports_to_json(reports: List[RaceReport], *, indent: int = 2) -> str:
    """All reports as a JSON document (Valgrind ``--xml`` analogue)."""
    import json
    doc = {
        "tool": "taskgrind",
        "protocol": 1,
        "error_count": len(reports),
        "errors": [report_to_dict(r) for r in reports],
    }
    return json.dumps(doc, indent=indent)
