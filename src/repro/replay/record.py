"""Phase one: record the synchronization order of a run.

:class:`ScheduleRecorder` taps three event sources that together pin the
interleaving:

* the scheduler's ``pick_observer`` — the thread chosen for every slice;
* the segment graph's live observer — segment and HB-edge creation in
  order, each segment stamped with the cost-model vclock at its birth (the
  checkpoint the replayer asserts at every segment boundary);
* the allocator's ``on_alloc`` callback (wrapped, original still called) —
  heap event order, which fixes address assignment.

Recording composes with ``TaskgrindOptions.record_mode="sync"`` (access
recording off, the cheap first pass) but does not require it: the cost
model charges accesses identically whether or not the tool records them,
so a schedule recorded in either mode replays against the other.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import get_registry
from repro.replay.schedule import ScheduleDoc


class ScheduleRecorder:
    """Attach to a (machine, tool) pair before ``machine.run``."""

    def __init__(self, program: Optional[dict] = None) -> None:
        self.program = dict(program or {})
        self.picks: list = []
        self.segments: list = []
        self.edges: list = []
        self.allocs: list = []
        self._machine = None
        self._orig_on_alloc = None

    # -- wiring -----------------------------------------------------------

    def attach(self, machine, tool) -> None:
        self._machine = machine
        machine.scheduler.pick_observer = self.picks.append
        tool.builder.graph.observer = self
        self._orig_on_alloc = machine.allocator.on_alloc
        machine.allocator.on_alloc = self._on_alloc

    # -- event taps -------------------------------------------------------

    def on_segment(self, seg) -> None:
        self.segments.append([seg.thread_id, seg.kind, bool(seg.virtual),
                              self._machine.cost.vtime_ops])

    def on_edge(self, src_id: int, dst_id: int) -> None:
        self.edges.append([src_id, dst_id])

    def _on_alloc(self, block) -> None:
        self.allocs.append([block.seq,
                            getattr(block, "alloc_thread", -1), block.size])
        if self._orig_on_alloc is not None:
            self._orig_on_alloc(block)

    # -- harvest ----------------------------------------------------------

    def finish(self) -> ScheduleDoc:
        """Assemble the schedule document after the run completed."""
        machine = self._machine
        doc = ScheduleDoc(
            program=self.program, picks=self.picks,
            segments=self.segments, edges=self.edges, allocs=self.allocs,
            rng_draws=dict(machine.rng.draws),
            final_vclock=machine.cost.vtime_ops)
        reg = get_registry()
        reg.counter("replay.record.picks").inc(len(self.picks))
        reg.counter("replay.record.segments").inc(len(self.segments))
        reg.counter("replay.record.edges").inc(len(self.edges))
        reg.counter("replay.record.allocs").inc(len(self.allocs))
        return doc


def record_bench(program, *, nthreads: int = 4, seed: int = 0,
                 options=None, sync: bool = True):
    """Record one benchmark program: returns ``(RunResult, ScheduleDoc)``.

    ``sync=True`` (the default two-phase first pass) runs with
    ``record_mode="sync"`` — access recording off, analysis skipped.
    """
    from repro.bench.runner import run_benchmark
    from repro.core.tool import TaskgrindOptions

    options = options or TaskgrindOptions()
    options.record_mode = "sync" if sync else "full"
    recorder = ScheduleRecorder({
        "kind": "bench", "name": program.name, "nthreads": nthreads,
        "seed": seed, "record_mode": options.record_mode,
        "options": {
            "analysis": options.analysis,
            "analysis_kernel": options.analysis_kernel,
            "dedupe": options.dedupe,
            "model_multithread_lockup": options.model_multithread_lockup,
        }})
    reg = get_registry()
    with reg.phase("replay.record"):
        result = run_benchmark(program, "taskgrind", nthreads=nthreads,
                               seed=seed, taskgrind_options=options,
                               on_machine=recorder.attach)
    return result, recorder.finish()
