"""``python -m repro replay SCHEDULE`` — deterministic replay of a run.

Re-executes the program recorded in a ``taskgrind-schedule/1`` document,
pinned to the recorded interleaving, with full access instrumentation
restored.  Partial replay narrows the scope::

    python -m repro replay sched.json                    # full replay
    python -m repro replay sched.json --addr-range 0x1000:0x2000
    python -m repro replay sched.json --pairs 3:7,4:9
    python -m repro replay sched.json --verify-single-pass

Exit status: 0 no races; 1 races reported; 2 usage / unreadable or
corrupt schedule; 3 the replay diverged from the recording; 4 the
``--verify-single-pass`` parity check failed.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReplayDivergenceError, ScheduleError
from repro.replay.filter import ReplayFilter
from repro.replay.replay import replay_bench
from repro.replay.schedule import load_schedule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro replay",
        description="replay a recorded schedule with full instrumentation")
    parser.add_argument("schedule", help="a taskgrind-schedule/1 document "
                                         "(see repro run --record sync)")
    parser.add_argument("--addr-range", metavar="LO:HI", action="append",
                        default=[],
                        help="partial replay: record only bytes inside "
                             "this half-open range (repeatable; 0x ok)")
    parser.add_argument("--pairs", metavar="I:J[,K:L...]", action="append",
                        default=[],
                        help="partial replay: keep only race candidates "
                             "between these segment-id pairs (repeatable)")
    parser.add_argument("--explain", action="store_true",
                        help="attach provenance witnesses to reports")
    parser.add_argument("--no-vclock-check", action="store_true",
                        help="skip the exact vclock checkpoint assertions "
                             "(still checks picks/segments/edges/allocs)")
    parser.add_argument("--verify-single-pass", action="store_true",
                        help="also run the program single-pass (full "
                             "recording, no pinning) and assert the "
                             "replayed verdicts match on the filtered "
                             "scope")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write a machine-readable replay report here")
    return parser


def _canon_reports(reports, flt: Optional[ReplayFilter]):
    """Reports as comparable (s1, s2, ranges) keys, scoped by ``flt``.

    Applying ``flt`` to a *full* run's reports yields exactly what a
    partial replay should report — the parity oracle for --verify-single-pass.
    """
    out = set()
    for r in reports:
        if flt is not None and not flt.admits_pair(r.s1.id, r.s2.id):
            continue
        pairs = []
        for lo, hi in r.ranges.pairs():
            if flt is not None and flt.filters_addresses:
                pairs.extend(flt.clip(lo, hi))
            else:
                pairs.append((lo, hi))
        if not pairs:
            continue        # report entirely outside the address scope
        out.add((r.s1.id, r.s2.id, tuple(sorted(pairs))))
    return out


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        flt = ReplayFilter.parse(args.addr_range, args.pairs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not flt.addr_ranges and not flt.pairs:
        flt = None

    try:
        doc = load_schedule(args.schedule)
    except ScheduleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"loaded schedule: {doc.summary()}")

    from repro.core.tool import TaskgrindOptions
    options = TaskgrindOptions(explain=args.explain)
    report_doc = {"schema": "taskgrind-replay/1",
                  "schedule": doc.counts(),
                  "program": doc.program,
                  "filter": flt.describe() if flt is not None else None,
                  "diverged": None, "reports": [], "parity": None}
    try:
        result, session = replay_bench(
            doc, replay_filter=flt, options=options,
            check_vclock=not args.no_vclock_check)
    except ReplayDivergenceError as exc:
        print(f"REPLAY DIVERGED: {exc}", file=sys.stderr)
        report_doc["diverged"] = exc.to_dict()
        _write_json(args.json_out, report_doc)
        return 3
    except ScheduleError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"replay held: {session.picks_used} picks, "
          f"{session.segments_checked} segments, "
          f"{session.edges_checked} edges, "
          f"{session.allocs_checked} allocs verified"
          + ("" if args.no_vclock_check
             else " (vclock checkpoints exact)"))
    from repro.core.reports import format_report
    for report in result.reports:
        print()
        print(format_report(report))
    report_doc["reports"] = [
        {"s1": r.s1.id, "s2": r.s2.id,
         "ranges": [[lo, hi] for lo, hi in r.ranges.pairs()]}
        for r in result.reports]

    if args.verify_single_pass:
        from repro.bench.runner import _find_program, run_benchmark
        ref = doc.program
        single_opts = TaskgrindOptions(explain=args.explain)
        for key, value in ref.get("options", {}).items():
            setattr(single_opts, key, value)
        single = run_benchmark(_find_program(ref["name"]), "taskgrind",
                               nthreads=ref["nthreads"], seed=ref["seed"],
                               taskgrind_options=single_opts)
        want = _canon_reports(single.reports, flt)
        got = _canon_reports(result.reports, None if flt is None else flt)
        ok = want == got
        report_doc["parity"] = {
            "ok": ok,
            "single_pass_reports": len(single.reports),
            "replayed_reports": len(result.reports)}
        if ok:
            scope = "filtered scope" if flt is not None else "full scope"
            print(f"parity: replayed verdicts identical to single-pass "
                  f"on the {scope} ({len(got)} report key(s))")
        else:
            print("PARITY MISMATCH vs single-pass run:", file=sys.stderr)
            for key in sorted(want - got):
                print(f"  single-pass only: {key}", file=sys.stderr)
            for key in sorted(got - want):
                print(f"  replay only: {key}", file=sys.stderr)
            _write_json(args.json_out, report_doc)
            return 4

    _write_json(args.json_out, report_doc)
    return 0 if not result.reports else 1


def _write_json(path: Optional[str], doc: dict) -> None:
    if not path:
        return
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote replay report to {path}")


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
