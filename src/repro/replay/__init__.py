"""Two-phase race detection: sync-only recording + deterministic replay.

The RecPlay idea (Ronsse & De Bosschere, PAPERS.md) adapted to Taskgrind:
a first pass records only the synchronization order — scheduler picks,
segment/HB-edge creation, allocator event order, cost-model vclock
checkpoints — into a tiny ``taskgrind-schedule/1`` document while the
access recorder is off; a second pass re-executes the program *pinned* to
that schedule with full access instrumentation, cross-checking the graph
at every segment boundary.  Divergence raises
:class:`repro.errors.ReplayDivergenceError` with the first mismatch.

Partial replay (:class:`~repro.replay.filter.ReplayFilter`) narrows the
second pass to caller-chosen address ranges and/or segment pairs; on the
filtered scope the verdicts are identical to a full recording's.
"""

from repro.replay.filter import ReplayFilter
from repro.replay.record import ScheduleRecorder, record_bench
from repro.replay.replay import ReplaySession, replay_bench
from repro.replay.schedule import (SCHEDULE_SCHEMA, ScheduleDoc,
                                   load_schedule, save_schedule)

__all__ = [
    "SCHEDULE_SCHEMA", "ScheduleDoc", "load_schedule", "save_schedule",
    "ScheduleRecorder", "record_bench",
    "ReplaySession", "replay_bench",
    "ReplayFilter",
]
