"""Partial replay: narrow the second pass to the scope under suspicion.

Two orthogonal filters, both optional:

* **address ranges** — during replay, only the bytes intersecting a
  requested ``[lo, hi)`` range are recorded (accesses are *clipped*, not
  dropped wholesale, so a range edge never hides a partial overlap);
* **segment pairs** — after analysis, only race candidates between the
  requested segment-id pairs survive (unordered: ``3:7`` matches both
  orientations).

The soundness contract, proven by the parity tests and the two-phase
fuzz oracle: on the filtered scope the replayed verdicts are identical to
a full recording's.  Clipping makes the address argument direct — every
byte inside the scope is recorded exactly as a full run records it, and
race verdicts are per-byte-range intersections.  Scheduling cannot drift
because the pick tape, not the recorder, owns the interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple


@dataclass(frozen=True)
class ReplayFilter:
    """Immutable scope for a partial replay."""

    #: half-open ``[lo, hi)`` address ranges; empty = record everything
    addr_ranges: Tuple[Tuple[int, int], ...] = ()
    #: unordered segment-id pairs; empty = keep every candidate
    pairs: FrozenSet[Tuple[int, int]] = frozenset()

    @classmethod
    def parse(cls, addr_specs: Sequence[str] = (),
              pair_specs: Sequence[str] = ()) -> "ReplayFilter":
        """Build from CLI specs: ``A:B`` addresses (ints, ``0x`` ok),
        ``I:J`` segment-id pairs (comma lists accepted)."""
        ranges: List[Tuple[int, int]] = []
        for spec in addr_specs:
            lo_s, _, hi_s = spec.partition(":")
            try:
                lo, hi = int(lo_s, 0), int(hi_s, 0)
            except ValueError as exc:
                raise ValueError(
                    f"bad --addr-range {spec!r} (want LO:HI)") from exc
            if hi <= lo:
                raise ValueError(f"empty --addr-range {spec!r}")
            ranges.append((lo, hi))
        pairs = set()
        for chunk in pair_specs:
            for spec in chunk.split(","):
                spec = spec.strip()
                if not spec:
                    continue
                a_s, _, b_s = spec.partition(":")
                try:
                    a, b = int(a_s, 0), int(b_s, 0)
                except ValueError as exc:
                    raise ValueError(
                        f"bad --pairs entry {spec!r} (want I:J)") from exc
                pairs.add((min(a, b), max(a, b)))
        return cls(addr_ranges=tuple(ranges), pairs=frozenset(pairs))

    @property
    def filters_addresses(self) -> bool:
        return bool(self.addr_ranges)

    def clip(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """The sub-intervals of ``[lo, hi)`` inside the scope."""
        out: List[Tuple[int, int]] = []
        for rlo, rhi in self.addr_ranges:
            clo, chi = max(lo, rlo), min(hi, rhi)
            if clo < chi:
                out.append((clo, chi))
        return out

    def admits_pair(self, a: int, b: int) -> bool:
        if not self.pairs:
            return True
        return (min(a, b), max(a, b)) in self.pairs

    def describe(self) -> dict:
        return {"addr_ranges": [[lo, hi] for lo, hi in self.addr_ranges],
                "pairs": sorted([list(p) for p in self.pairs])}
