"""Phase two: re-execute under the recorded schedule and prove it held.

:class:`ReplaySession` installs three cross-checking hooks:

* ``pick_override`` on the scheduler consumes the recorded pick tape —
  the recorded thread must be in the ready set (else the executions have
  already diverged) and the seeded ``sched.*`` streams are never drawn;
* a live graph observer asserts every segment (thread, kind, virtual
  flag, **exact** cost-model vclock checkpoint) and every HB edge against
  the recording, in creation order — the first mismatch raises
  :class:`~repro.errors.ReplayDivergenceError`;
* the allocator callback asserts heap event order (seq, thread, size).

``verify_complete`` closes the proof after the run: every recorded event
was consumed, the final vclock matches, and every non-``sched.*`` rng
stream made exactly the recorded number of draws (the work-stealing
pattern of the pinned run).

Exact float equality on vclock checkpoints is deliberate: the cost model
charges accesses identically whether the tool records them or not, so a
faithful replay reproduces the virtual clock bit-for-bit — any drift
means the executions differ, which is precisely what the check is for.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ReplayDivergenceError
from repro.obs.metrics import get_registry
from repro.replay.schedule import ScheduleDoc


class ReplaySession:
    """Attach to a fresh (machine, tool) pair before ``machine.run``."""

    def __init__(self, doc: ScheduleDoc, *,
                 check_vclock: bool = True) -> None:
        self.doc = doc
        self.check_vclock = check_vclock
        self.picks_used = 0
        self.segments_checked = 0
        self.edges_checked = 0
        self.allocs_checked = 0
        self._machine = None
        self._orig_on_alloc = None

    # -- wiring -----------------------------------------------------------

    def attach(self, machine, tool) -> None:
        self._machine = machine
        machine.scheduler.pick_override = self._pick
        tool.builder.graph.observer = self
        self._orig_on_alloc = machine.allocator.on_alloc
        machine.allocator.on_alloc = self._on_alloc

    # -- the pick tape ----------------------------------------------------

    def _pick(self, ready: List):
        idx = self.picks_used
        if idx >= len(self.doc.picks):
            self._diverged("pick", idx, "<end of tape>",
                           sorted(t.id for t in ready),
                           "the replayed run needs more scheduling "
                           "decisions than were recorded")
        want = self.doc.picks[idx]
        for t in ready:
            if t.id == want:
                self.picks_used += 1
                return t
        self._diverged("pick", idx, want, sorted(t.id for t in ready),
                       "recorded thread not ready in the replayed run")

    # -- graph cross-checks ------------------------------------------------

    def on_segment(self, seg) -> None:
        idx = self.segments_checked
        if idx >= len(self.doc.segments):
            self._diverged("segment", idx, "<end of recording>",
                           [seg.thread_id, seg.kind],
                           "replay created more segments than recorded")
        rec_thread, rec_kind, rec_virtual, rec_vclock = \
            self.doc.segments[idx]
        got = [seg.thread_id, seg.kind, bool(seg.virtual)]
        if got != [rec_thread, rec_kind, bool(rec_virtual)]:
            self._diverged("segment", idx,
                           [rec_thread, rec_kind, bool(rec_virtual)], got)
        if self.check_vclock:
            now = self._machine.cost.vtime_ops
            if now != rec_vclock:
                self._diverged("vclock", idx, rec_vclock, now,
                               f"at segment #{seg.id} boundary")
        self.segments_checked += 1

    def on_edge(self, src_id: int, dst_id: int) -> None:
        idx = self.edges_checked
        if idx >= len(self.doc.edges):
            self._diverged("edge", idx, "<end of recording>",
                           [src_id, dst_id],
                           "replay created more HB edges than recorded")
        if self.doc.edges[idx] != [src_id, dst_id]:
            self._diverged("edge", idx, list(self.doc.edges[idx]),
                           [src_id, dst_id])
        self.edges_checked += 1

    # -- allocator order ---------------------------------------------------

    def _on_alloc(self, block) -> None:
        idx = self.allocs_checked
        got = [block.seq, getattr(block, "alloc_thread", -1), block.size]
        if idx >= len(self.doc.allocs):
            self._diverged("alloc", idx, "<end of recording>", got,
                           "replay allocated more blocks than recorded")
        if self.doc.allocs[idx] != got:
            self._diverged("alloc", idx, list(self.doc.allocs[idx]), got)
        self.allocs_checked += 1
        if self._orig_on_alloc is not None:
            self._orig_on_alloc(block)

    # -- the closing proof -------------------------------------------------

    def verify_complete(self) -> None:
        """Assert the recording was consumed exactly, rng pattern included."""
        for what, used, total in (
                ("pick", self.picks_used, len(self.doc.picks)),
                ("segment", self.segments_checked, len(self.doc.segments)),
                ("edge", self.edges_checked, len(self.doc.edges)),
                ("alloc", self.allocs_checked, len(self.doc.allocs))):
            if used != total:
                self._diverged("count", used, total, used,
                               f"replay consumed {used}/{total} recorded "
                               f"{what}s")
        if self.check_vclock:
            now = self._machine.cost.vtime_ops
            if now != self.doc.final_vclock:
                self._diverged("vclock", self.segments_checked,
                               self.doc.final_vclock, now,
                               "final makespan mismatch")
        # the pinned scheduler never draws sched.*; every other stream
        # (work stealing, allocator noise, ...) must match exactly
        want = {k: v for k, v in self.doc.rng_draws.items()
                if not k.startswith("sched.")}
        got = {k: v for k, v in self._machine.rng.draws.items()
               if not k.startswith("sched.")}
        if want != got:
            diff = sorted(set(want) | set(got))
            first = next(k for k in diff if want.get(k) != got.get(k))
            self._diverged("rng", 0, {first: want.get(first, 0)},
                           {first: got.get(first, 0)},
                           "rng stream draw counts differ")
        reg = get_registry()
        reg.counter("replay.picks").inc(self.picks_used)
        reg.counter("replay.segments_checked").inc(self.segments_checked)
        reg.counter("replay.edges_checked").inc(self.edges_checked)
        reg.counter("replay.allocs_checked").inc(self.allocs_checked)

    def _diverged(self, what: str, index: int, expected, actual,
                  detail: str = "") -> None:
        get_registry().counter("replay.divergences").inc()
        raise ReplayDivergenceError(what, index, expected, actual, detail)


# ---------------------------------------------------------------------------
# high-level driver
# ---------------------------------------------------------------------------

def replay_bench(doc: ScheduleDoc, *, replay_filter=None,
                 options=None, check_vclock: bool = True):
    """Replay a bench-kind schedule with full instrumentation restored.

    Returns ``(RunResult, ReplaySession)``.  The run executes pinned to
    ``doc``'s pick tape; any departure raises
    :class:`~repro.errors.ReplayDivergenceError`.  ``replay_filter``
    narrows access recording to the requested scope (partial replay).
    """
    from repro.bench.runner import _find_program, run_benchmark
    from repro.core.tool import TaskgrindOptions
    from repro.errors import ScheduleFormatError

    ref = doc.program
    if ref.get("kind") != "bench":
        raise ScheduleFormatError(
            "<schedule>", f"cannot replay program kind "
                          f"{ref.get('kind')!r} here (expected 'bench')")
    program = _find_program(ref["name"])
    if program is None:
        raise ScheduleFormatError(
            "<schedule>", f"recorded program {ref['name']!r} is not in the "
                          "benchmark registry")
    opts = options or TaskgrindOptions()
    for key, value in ref.get("options", {}).items():
        setattr(opts, key, value)
    opts.record_mode = "full"
    opts.replay_filter = replay_filter
    session = ReplaySession(doc, check_vclock=check_vclock)
    reg = get_registry()
    with reg.phase("replay.execute"):
        result = run_benchmark(program, "taskgrind",
                               nthreads=ref["nthreads"], seed=ref["seed"],
                               taskgrind_options=opts,
                               on_machine=session.attach)
    with reg.phase("replay.verify"):
        session.verify_complete()
    return result, session
