"""The ``taskgrind-schedule/1`` document: a pinned schedule, nothing more.

Layout mirrors the ``taskgrind-trace/2`` chunk stream (one checksummed
JSON line per chunk, atomic tmp+rename save, the writer consults the fault
injector) but the *content* is orders of magnitude smaller: no access
trees, no byte ranges — only what is needed to re-execute the same
interleaving and prove it stayed the same.

Chunk kinds, in stream order::

    header    schema/version + element counts (the loader's ground truth)
    program   how to re-create the run (program ref, nthreads, seed, opts)
    picks     scheduler decisions, thread id per slice, chunked
    segments  [thread, kind, virtual, vclock] per segment in creation order
    edges     [src, dst] per HB edge in creation order
    allocs    [seq, thread, size] per heap allocation in event order
    rng       draw-call count per named rng stream
    end       footer: total chunk count

Loading is **strict only** — there is deliberately no salvage reader.  A
trace missing its tail still describes real prefix evidence; a schedule
missing its tail would pin a *different execution* and silently change
every downstream verdict.  Truncation, bad checksums, or count mismatches
raise the :mod:`repro.errors` schedule taxonomy instead.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.trace import _ChunkWriter, _payload_crc
from repro.errors import (ScheduleCorruptionError, ScheduleFormatError,
                          ScheduleVersionError)

SCHEDULE_SCHEMA = "taskgrind-schedule/1"
SCHEDULE_VERSION = 1

#: picks/edges/allocs per chunk (small ints), segments per chunk (wider rows)
CHUNK_PICKS = 4096
CHUNK_SEGMENTS = 1024


@dataclass
class ScheduleDoc:
    """One recorded schedule, in memory."""

    #: how to re-create the run: ``{"kind": "bench"|"fuzz", ...}`` — bench
    #: refs carry the program name, fuzz refs embed the generated spec
    program: Dict = field(default_factory=dict)
    #: thread id per scheduler decision, in decision order
    picks: List[int] = field(default_factory=list)
    #: ``[thread_id, kind, virtual, vclock_ops]`` per segment, id order ==
    #: creation order (segment ids are dense)
    segments: List[list] = field(default_factory=list)
    #: ``[src_id, dst_id]`` per HB edge, in creation order
    edges: List[list] = field(default_factory=list)
    #: ``[seq, thread_id, size]`` per heap allocation, in event order
    allocs: List[list] = field(default_factory=list)
    #: draw-call count per named rng stream at end of recording
    rng_draws: Dict[str, int] = field(default_factory=dict)
    #: cost-model makespan at end of recording (the final vclock checkpoint)
    final_vclock: float = 0.0

    def counts(self) -> Dict[str, int]:
        return {"picks": len(self.picks), "segments": len(self.segments),
                "edges": len(self.edges), "allocs": len(self.allocs),
                "rng_streams": len(self.rng_draws)}

    def summary(self) -> str:
        c = self.counts()
        ref = self.program.get("name") or self.program.get("kind", "?")
        return (f"{ref}: {c['picks']} picks, {c['segments']} segments, "
                f"{c['edges']} edges, {c['allocs']} allocs, "
                f"final vclock {self.final_vclock:.0f} ops")

    # -- plain-data round trip (the fuzz two-phase oracle uses this to
    # prove the on-disk format loses nothing) -----------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEDULE_SCHEMA, "version": SCHEDULE_VERSION,
            "program": self.program, "picks": list(self.picks),
            "segments": [list(s) for s in self.segments],
            "edges": [list(e) for e in self.edges],
            "allocs": [list(a) for a in self.allocs],
            "rng_draws": dict(self.rng_draws),
            "final_vclock": self.final_vclock,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ScheduleDoc":
        if doc.get("schema") != SCHEDULE_SCHEMA:
            raise ScheduleFormatError(
                "<dict>", f"schema {doc.get('schema')!r}")
        return cls(program=doc["program"], picks=list(doc["picks"]),
                   segments=[list(s) for s in doc["segments"]],
                   edges=[list(e) for e in doc["edges"]],
                   allocs=[list(a) for a in doc["allocs"]],
                   rng_draws=dict(doc["rng_draws"]),
                   final_vclock=doc["final_vclock"])


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------

def save_schedule(doc: ScheduleDoc, path: str) -> None:
    """Write ``doc`` atomically as a chunked ``taskgrind-schedule/1`` stream.

    Reuses the trace chunk writer, so armed fault plans (trace-truncate /
    trace-corrupt points) damage schedule saves exactly like trace saves —
    which the strict loader must then refuse, never half-replay.
    """
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            writer = _ChunkWriter(fh, vtime=doc.final_vclock)
            writer.emit("header", {
                "schema": SCHEDULE_SCHEMA, "version": SCHEDULE_VERSION,
                "counts": doc.counts(),
                "final_vclock": doc.final_vclock})
            writer.emit("program", doc.program)
            for base in range(0, len(doc.picks), CHUNK_PICKS):
                writer.emit("picks", {
                    "start": base,
                    "picks": doc.picks[base:base + CHUNK_PICKS]})
            for base in range(0, len(doc.segments), CHUNK_SEGMENTS):
                writer.emit("segments", {
                    "start": base,
                    "segments": doc.segments[base:base + CHUNK_SEGMENTS]})
            for base in range(0, len(doc.edges), CHUNK_PICKS):
                writer.emit("edges", {
                    "start": base,
                    "edges": doc.edges[base:base + CHUNK_PICKS]})
            for base in range(0, len(doc.allocs), CHUNK_PICKS):
                writer.emit("allocs", {
                    "start": base,
                    "allocs": doc.allocs[base:base + CHUNK_PICKS]})
            writer.emit("rng", {"draws": doc.rng_draws})
            writer.emit("end", {"chunks": writer.chunks + 1})
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# strict load
# ---------------------------------------------------------------------------

def load_schedule(path: str) -> ScheduleDoc:
    """Parse a schedule document, failing fast on any damage.

    Raises :class:`ScheduleFormatError` when the file is not a schedule,
    :class:`ScheduleVersionError` on a version this replayer does not
    speak, and :class:`ScheduleCorruptionError` on checksum failures,
    truncation, out-of-order chunks, or count mismatches.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError as exc:
        raise ScheduleFormatError(path, str(exc)) from exc
    if not data.strip():
        raise ScheduleFormatError(path, "empty file")

    doc = ScheduleDoc()
    counts: Optional[Dict[str, int]] = None
    saw_end = False
    expected_seq = 0
    offset = 0
    for raw in data.split(b"\n"):
        line = raw.strip()
        line_offset = offset
        offset += len(raw) + 1
        if not line:
            continue
        if saw_end:
            raise ScheduleCorruptionError(
                path, byte_offset=line_offset, chunk_seq=expected_seq,
                reason="data after the end chunk")
        try:
            chunk = json.loads(line)
        except ValueError as exc:
            if expected_seq == 0:
                raise ScheduleFormatError(
                    path, f"first line is not JSON: {exc}") from exc
            raise ScheduleCorruptionError(
                path, byte_offset=line_offset, chunk_seq=expected_seq,
                reason=f"unparseable chunk line: {exc}") from exc
        if not isinstance(chunk, dict) or "payload" not in chunk \
                or "crc" not in chunk or "kind" not in chunk:
            if expected_seq == 0:
                raise ScheduleFormatError(
                    path, "first line lacks the chunk envelope "
                          "(seq/kind/crc/payload)")
            raise ScheduleCorruptionError(
                path, byte_offset=line_offset, chunk_seq=expected_seq,
                reason="chunk line lacks the envelope keys")
        payload = chunk["payload"]
        if chunk.get("seq") != expected_seq:
            raise ScheduleCorruptionError(
                path, byte_offset=line_offset, chunk_seq=expected_seq,
                reason=f"chunk sequence {chunk.get('seq')!r}, expected "
                       f"{expected_seq} (reordered or spliced stream)")
        if _payload_crc(payload) != chunk["crc"]:
            raise ScheduleCorruptionError(
                path, byte_offset=line_offset, chunk_seq=expected_seq,
                reason=f"checksum mismatch (stored {chunk['crc']}, "
                       f"computed {_payload_crc(payload)})")
        kind = chunk["kind"]
        if expected_seq == 0:
            if kind != "header":
                raise ScheduleFormatError(
                    path, f"first chunk is {kind!r}, expected the schedule "
                          "header")
            schema = payload.get("schema")
            version = payload.get("version")
            if schema != SCHEDULE_SCHEMA or version != SCHEDULE_VERSION:
                raise ScheduleVersionError(
                    path, schema if schema != SCHEDULE_SCHEMA else version,
                    f"{SCHEDULE_SCHEMA} v{SCHEDULE_VERSION}")
            counts = dict(payload["counts"])
            doc.final_vclock = payload["final_vclock"]
        elif kind == "program":
            doc.program = payload
        elif kind == "picks":
            _append_at(path, line_offset, doc.picks,
                       payload["start"], payload["picks"])
        elif kind == "segments":
            _append_at(path, line_offset, doc.segments,
                       payload["start"], payload["segments"])
        elif kind == "edges":
            _append_at(path, line_offset, doc.edges,
                       payload["start"], payload["edges"])
        elif kind == "allocs":
            _append_at(path, line_offset, doc.allocs,
                       payload["start"], payload["allocs"])
        elif kind == "rng":
            doc.rng_draws = dict(payload["draws"])
        elif kind == "end":
            saw_end = True
        else:
            raise ScheduleCorruptionError(
                path, byte_offset=line_offset, chunk_seq=expected_seq,
                reason=f"unknown chunk kind {kind!r}")
        expected_seq += 1

    if counts is None:
        raise ScheduleFormatError(path, "no schedule header chunk")
    if not saw_end:
        raise ScheduleCorruptionError(
            path, byte_offset=len(data), chunk_seq=expected_seq,
            reason="truncated: no end chunk")
    got = doc.counts()
    if got != counts:
        raise ScheduleCorruptionError(
            path, byte_offset=len(data), chunk_seq=expected_seq,
            reason=f"element counts {got} do not match the header "
                   f"{counts}")
    return doc


def _append_at(path: str, byte_offset: int, target: list,
               start: int, items: list) -> None:
    """Chunks must arrive in order and dovetail exactly."""
    if start != len(target):
        raise ScheduleCorruptionError(
            path, byte_offset=byte_offset, chunk_seq=None,
            reason=f"chunk starts at element {start}, expected "
                   f"{len(target)} (missing or duplicated chunk)")
    target.extend(items)
