"""Runtime observability: metrics registry, timeline tracer, stats assembly.

See :mod:`repro.obs.metrics` for the registry design,
:mod:`repro.obs.tracer` for the execution timeline tracer and
``docs/INTERNALS.md`` §6–§7 for the phase/counter taxonomy and the
timeline event model.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_registry)
from repro.obs.tracer import TimelineTracer, get_tracer

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "TimelineTracer", "get_registry", "get_tracer"]
