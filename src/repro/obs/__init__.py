"""Runtime observability: the metrics registry and stats assembly.

See :mod:`repro.obs.metrics` for the registry design and
``docs/INTERNALS.md`` §6 for the phase/counter taxonomy.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               get_registry)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "get_registry"]
