"""Validator for exported timeline traces (Chrome trace-event JSON).

Checks the invariants the tracer guarantees (and CI relies on):

* every event carries the required keys — ``ph``, ``ts``, ``pid``, ``tid``,
  ``name`` — with a non-negative numeric ``ts``;
* the ``ts`` sequence is monotone non-decreasing in file order (the tracer
  sorts on export);
* ``B``/``E`` span events pair up per ``(pid, tid)`` with LIFO nesting;
* every flow ``s`` has a matching ``f`` with the same ``id`` (and vice
  versa), and the finish is not earlier than the start;
* ``ph`` codes are from the supported set.

Unmatched span/flow events are tolerated **only** when ``otherData.dropped``
reports ring-buffer truncation — a wrapped buffer may have lost one side of
a pair.

The checker also understands ``taskgrind-profile/1`` documents (the
attribution profiler's chunked JSONL format): the file type is sniffed from
the first line, and profile validation — required keys, per-chunk CRC,
monotone ``seq``, non-negative op counts, matching ``end`` chunk — is
delegated to :func:`repro.obs.profdoc.validate_profile_doc`.

CLI: ``python -m repro.obs.tracecheck TRACE.json [--require-flows N]
[--require-segments]`` — exit 0 when valid, 1 with a finding list otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")
KNOWN_PHASES = {"B", "E", "X", "i", "s", "f", "t", "M", "C"}


def validate_events(events: List[dict], *,
                    dropped: int = 0) -> List[str]:
    """Return a list of violation strings (empty when the trace is valid)."""
    errors: List[str] = []
    last_ts: Optional[float] = None
    span_stacks: Dict[Tuple[int, int], List[str]] = {}
    flow_start: Dict[object, float] = {}
    flow_finish: Dict[object, float] = {}
    for i, ev in enumerate(events):
        for key in REQUIRED_KEYS:
            if key not in ev:
                errors.append(f"event {i}: missing required key {key!r}")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"event {i}: unknown ph {ph!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i}: ts {ts!r} not a non-negative number")
            continue
        if ph != "M":                      # metadata is pinned at ts 0
            if last_ts is not None and ts < last_ts:
                errors.append(f"event {i}: ts {ts} < previous {last_ts} "
                              "(not monotone)")
            last_ts = ts
        lane = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            span_stacks.setdefault(lane, []).append(ev.get("name"))
        elif ph == "E":
            stack = span_stacks.get(lane)
            if not stack:
                if not dropped:
                    errors.append(f"event {i}: E {ev.get('name')!r} on "
                                  f"{lane} without open B")
            elif stack[-1] != ev.get("name"):
                errors.append(f"event {i}: E {ev.get('name')!r} closes "
                              f"{stack[-1]!r} (bad nesting on {lane})")
                stack.pop()
            else:
                stack.pop()
        elif ph == "s":
            flow_start[ev.get("id")] = ts
        elif ph == "f":
            flow_finish[ev.get("id")] = ts
    for lane, stack in span_stacks.items():
        if stack:
            errors.append(f"unclosed span(s) {stack!r} on {lane}")
    for fid, ts in flow_start.items():
        if fid not in flow_finish:
            if not dropped:
                errors.append(f"flow {fid!r}: 's' without matching 'f'")
        elif flow_finish[fid] < ts:
            errors.append(f"flow {fid!r}: finish ts {flow_finish[fid]} "
                          f"before start ts {ts}")
    for fid in flow_finish:
        if fid not in flow_start and not dropped:
            errors.append(f"flow {fid!r}: 'f' without matching 's'")
    return errors


def validate(doc: dict, *, require_flows: int = 0,
             require_segments: bool = False) -> List[str]:
    """Validate a full exported trace document."""
    if "traceEvents" not in doc:
        return ["document has no traceEvents key"]
    dropped = doc.get("otherData", {}).get("dropped", 0)
    events = doc["traceEvents"]
    errors = validate_events(events, dropped=dropped)
    if require_segments and not any(
            ev.get("cat") == "segment" and ev.get("ph") == "B"
            for ev in events):
        errors.append("no segment spans in trace")
    if require_flows:
        n = sum(1 for ev in events if ev.get("ph") == "s")
        if n < require_flows:
            errors.append(f"only {n} flow event(s), required "
                          f">= {require_flows}")
    return errors


def _is_profile_doc(path: str) -> bool:
    """Sniff the file type: a profile is JSONL whose first line is a chunk
    object with a ``kind`` key; a timeline is one JSON object with
    ``traceEvents``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
        chunk = json.loads(first)
    except (OSError, ValueError):
        return False
    return isinstance(chunk, dict) and "kind" in chunk \
        and "traceEvents" not in chunk


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="timeline JSON from --trace-timeline "
                                      "or a taskgrind-profile/1 document")
    parser.add_argument("--require-flows", type=int, default=0, metavar="N",
                        help="fail unless >= N flow events are present "
                             "(timelines only)")
    parser.add_argument("--require-segments", action="store_true",
                        help="fail unless segment spans are present "
                             "(timelines only)")
    args = parser.parse_args(argv)
    if _is_profile_doc(args.trace):
        from repro.obs.profdoc import validate_profile_doc
        errors = validate_profile_doc(args.trace)
        if errors:
            for err in errors:
                print(f"tracecheck: {err}", file=sys.stderr)
            return 1
        print("tracecheck: ok (taskgrind-profile/1 document)")
        return 0
    with open(args.trace, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    errors = validate(doc, require_flows=args.require_flows,
                      require_segments=args.require_segments)
    if errors:
        for err in errors:
            print(f"tracecheck: {err}", file=sys.stderr)
        return 1
    n = len(doc["traceEvents"])
    print(f"tracecheck: ok ({n} events, "
          f"{doc.get('otherData', {}).get('dropped', 0)} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
