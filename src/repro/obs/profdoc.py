"""``taskgrind-profile/1`` documents: save/load, folded export, diffing.

The profiler core (:mod:`repro.obs.prof`) is stdlib-only and hot-path
friendly; this module is the cold document layer:

* **Format.**  A profile is a JSONL stream of checksummed chunks using the
  same framing as v2 traces (:class:`repro.core.trace._ChunkWriter`): each
  line carries ``seq``/``kind``/``crc``/``payload``, with the CRC-32 taken
  over the canonical (sorted, compact) payload JSON.  Chunk kinds, in
  order: one ``header`` (schema + version), zero or more ``vtime`` chunks
  (virtual-time buckets ``[tid, klass, frame, ops]``), zero or more
  ``counts`` chunks (count-axis buckets ``[klass, frame, n]``), an
  optional ``phases`` chunk (analyze-side phase timers from the metrics
  registry), one ``meta`` chunk, and a final ``end`` chunk naming the
  chunk count.
* **Strictness.**  Profiles follow the schedule documents' philosophy,
  not the traces': there is **no salvage mode**.  A profile with a bad
  checksum or a missing ``end`` would silently misattribute ops, so
  :func:`load_profile` fails fast with :class:`ProfileFormatError` /
  :class:`ProfileCorruptionError`.  :func:`validate_profile_doc` is the
  non-raising variant used by ``repro.obs.tracecheck``.
* **Diffing.**  :func:`diff_profiles` aggregates the virtual-time axis by
  ``(klass, frame)`` (summed over threads), computes per-bucket deltas
  and names the top regressing bucket — the primitive the perf gate uses
  to say *why* a phase regressed, not just that it did.

CLI (``python -m repro profile ...``)::

    repro profile run PROGRAM [--flame out.folded] [--out prof.json]
    repro profile diff A.json B.json [--top 5] [--json]
    repro profile show PROF.json [--flame out.folded] [--json]
    repro profile check PROF.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.core.trace import _ChunkWriter, _payload_crc
from repro.errors import ProfileCorruptionError, ProfileFormatError
from repro.obs.prof import PROFILE_SCHEMA, Profiler, format_ops

PROFILE_VERSION = 1

#: virtual-time / count buckets per chunk line (keeps lines greppable and
#: bounds the blast radius of a torn write to one chunk)
CELLS_PER_CHUNK = 256


# ---------------------------------------------------------------------------
# save
# ---------------------------------------------------------------------------

def save_profile(path: str, prof: Profiler, *,
                 phases: Optional[dict] = None) -> None:
    """Serialize ``prof`` as a ``taskgrind-profile/1`` document — atomically.

    Same tmp+rename discipline as trace/schedule saves: an interrupted
    write never leaves a half-written ``path`` behind.
    """
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            writer = _ChunkWriter(fh)
            writer.emit("header", {"schema": PROFILE_SCHEMA,
                                   "version": PROFILE_VERSION})
            vtime = [list(row) for row in prof.vtime_cells()]
            for i in range(0, len(vtime), CELLS_PER_CHUNK):
                writer.emit("vtime",
                            {"cells": vtime[i:i + CELLS_PER_CHUNK]})
            counts = [list(row) for row in prof.count_cells()]
            for i in range(0, len(counts), CELLS_PER_CHUNK):
                writer.emit("counts",
                            {"cells": counts[i:i + CELLS_PER_CHUNK]})
            if phases:
                # registry snapshots carry dict-shaped phase rows
                # ({count, wall_s, vtime_ops, vtime_s}); tuples from older
                # callers are normalized to lists
                writer.emit("phases",
                            {"phases": {name: (dict(vals)
                                               if isinstance(vals, dict)
                                               else list(vals))
                                        for name, vals
                                        in sorted(phases.items())}})
            writer.emit("meta", dict(prof.meta, total_ops=prof.total_ops))
            writer.emit("end", {"chunks": writer.chunks})
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# load / validate
# ---------------------------------------------------------------------------

#: problem categories: 'format' -> ProfileFormatError, anything else ->
#: ProfileCorruptionError (with the chunk seq when known)
_Problem = Tuple[str, Optional[int], str]


def _parse(path: str) -> Tuple[dict, List[_Problem]]:
    """Scan a profile stream; collect every problem instead of raising."""
    doc: dict = {"schema": None, "version": None, "vtime": [],
                 "counts": [], "phases": {}, "meta": {}}
    problems: List[_Problem] = []
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        return doc, [("format", None, f"cannot read: {exc}")]
    lines = [ln for ln in raw.decode("utf-8", "replace").splitlines()
             if ln.strip()]
    if not lines:
        return doc, [("format", None, "empty file")]
    saw_end = False
    for idx, line in enumerate(lines):
        if saw_end:
            problems.append(("corrupt", idx, "data after the end chunk"))
            break
        try:
            chunk = json.loads(line)
        except ValueError:
            problems.append(("corrupt", idx,
                             "line is not JSON (torn write?)"))
            break
        if not isinstance(chunk, dict):
            problems.append(("format", idx, "chunk is not an object"))
            break
        missing = [k for k in ("seq", "kind", "crc", "payload")
                   if k not in chunk]
        if missing:
            problems.append(("format", idx,
                             f"chunk missing keys {missing}"))
            break
        if chunk["seq"] != idx:
            problems.append(("corrupt", idx,
                             f"seq not monotone: expected {idx}, "
                             f"found {chunk['seq']}"))
            break
        payload = chunk["payload"]
        if chunk["crc"] != _payload_crc(payload):
            problems.append(("corrupt", idx, "payload checksum mismatch"))
            break
        kind = chunk["kind"]
        if idx == 0:
            if kind != "header":
                problems.append(("format", idx,
                                 f"first chunk is {kind!r}, not 'header'"))
                break
            if payload.get("schema") != PROFILE_SCHEMA:
                problems.append((
                    "format", idx,
                    f"schema {payload.get('schema')!r} is not "
                    f"{PROFILE_SCHEMA!r}"))
                break
            if payload.get("version") != PROFILE_VERSION:
                problems.append((
                    "format", idx,
                    f"unsupported version {payload.get('version')!r}"))
                break
            doc["schema"] = payload["schema"]
            doc["version"] = payload["version"]
        elif kind == "vtime":
            for cell in payload.get("cells", ()):
                if not (isinstance(cell, list) and len(cell) == 4):
                    problems.append(("format", idx,
                                     f"malformed vtime cell {cell!r}"))
                    continue
                if not isinstance(cell[3], (int, float)) or cell[3] < 0:
                    problems.append((
                        "corrupt", idx,
                        f"negative or non-numeric op count in {cell!r}"))
                    continue
                doc["vtime"].append(cell)
        elif kind == "counts":
            for cell in payload.get("cells", ()):
                if not (isinstance(cell, list) and len(cell) == 3):
                    problems.append(("format", idx,
                                     f"malformed count cell {cell!r}"))
                    continue
                if not isinstance(cell[2], int) or cell[2] < 0:
                    problems.append((
                        "corrupt", idx,
                        f"negative or non-integer count in {cell!r}"))
                    continue
                doc["counts"].append(cell)
        elif kind == "phases":
            doc["phases"] = payload.get("phases", {})
        elif kind == "meta":
            doc["meta"] = payload
        elif kind == "end":
            saw_end = True
            if payload.get("chunks") != idx:
                problems.append((
                    "corrupt", idx,
                    f"end chunk expects {payload.get('chunks')} prior "
                    f"chunks, found {idx}"))
        else:
            problems.append(("format", idx,
                             f"unknown chunk kind {kind!r}"))
    if not saw_end and not problems:
        problems.append(("corrupt", len(lines) - 1,
                         "missing end chunk (truncated stream)"))
    return doc, problems


def load_profile(path: str) -> dict:
    """Load a profile document; strict — raises on the first problem."""
    doc, problems = _parse(path)
    if problems:
        category, seq, reason = problems[0]
        if category == "format":
            raise ProfileFormatError(path, reason)
        raise ProfileCorruptionError(path, chunk_seq=seq, reason=reason)
    return doc


def validate_profile_doc(path: str) -> List[str]:
    """Every problem in the document, as printable strings (empty = valid).

    The non-raising twin of :func:`load_profile`, called by
    ``repro.obs.tracecheck`` so one checker validates both timeline and
    profile artifacts.
    """
    doc, problems = _parse(path)
    out = [f"chunk {seq}: {reason}" if seq is not None else reason
           for _cat, seq, reason in problems]
    if not problems:
        total = doc["meta"].get("total_ops")
        if total is not None:
            booked = sum(cell[3] for cell in doc["vtime"])
            if abs(booked - total) > max(1e-6, 1e-9 * abs(total)):
                out.append(f"bucket ops sum {booked!r} != meta total_ops "
                           f"{total!r}")
    return out


# ---------------------------------------------------------------------------
# views
# ---------------------------------------------------------------------------

def to_folded(doc: dict) -> str:
    """Collapsed-stack flamegraph text from a loaded document."""
    lines = [f"t{tid};{frame};{klass} {format_ops(ops)}"
             for tid, klass, frame, ops in doc["vtime"]]
    lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def class_totals(doc: dict) -> Dict[str, float]:
    """Virtual-time ops per instrumentation class (threads+frames summed)."""
    totals: Dict[str, float] = {}
    for _tid, klass, _frame, ops in doc["vtime"]:
        totals[klass] = totals.get(klass, 0.0) + ops
    return dict(sorted(totals.items()))


def _buckets(doc: dict) -> Dict[Tuple[str, str], float]:
    out: Dict[Tuple[str, str], float] = {}
    for _tid, klass, frame, ops in doc["vtime"]:
        key = (klass, frame)
        out[key] = out.get(key, 0.0) + ops
    return out


def diff_profiles(a: dict, b: dict) -> dict:
    """Per-bucket virtual-time deltas B − A, worst regression first.

    Buckets are ``(klass, frame)`` summed over threads; the *top
    regression* is the bucket with the largest positive delta (ops B
    charged that A did not) — ``None`` when B regressed nowhere.
    """
    ba, bb = _buckets(a), _buckets(b)
    rows = []
    for key in sorted(set(ba) | set(bb)):
        va, vb = ba.get(key, 0.0), bb.get(key, 0.0)
        if va == vb:
            continue
        rows.append({"klass": key[0], "frame": key[1],
                     "a": va, "b": vb, "delta": vb - va})
    rows.sort(key=lambda r: (-r["delta"], r["klass"], r["frame"]))
    a_total = sum(ba.values())
    b_total = sum(bb.values())
    top = rows[0] if rows and rows[0]["delta"] > 0 else None
    return {
        "schema": "taskgrind-profile-diff/1",
        "a_total": a_total,
        "b_total": b_total,
        "delta_total": b_total - a_total,
        "buckets": rows,
        "top_regression": top,
    }


def top_regressing_class(a_classes: Dict[str, float],
                         b_classes: Dict[str, float]
                         ) -> Optional[Tuple[str, float]]:
    """Largest positive per-class delta between two class-total maps.

    The perf gate stores class totals (not full documents) in
    ``BENCH_perf.json``; this names the responsible bucket on a breach.
    """
    best: Optional[Tuple[str, float]] = None
    for klass in sorted(set(a_classes) | set(b_classes)):
        delta = b_classes.get(klass, 0.0) - a_classes.get(klass, 0.0)
        if delta > 0 and (best is None or delta > best[1]):
            best = (klass, delta)
    return best


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _render_diff(diff: dict, top: int) -> str:
    lines = [f"A total: {format_ops(diff['a_total'])} ops",
             f"B total: {format_ops(diff['b_total'])} ops",
             f"delta:   {diff['delta_total']:+.0f} ops"]
    if diff["top_regression"] is not None:
        t = diff["top_regression"]
        lines.append(f"top regressing bucket: {t['klass']} @ {t['frame']} "
                     f"({t['delta']:+.0f} ops)")
    else:
        lines.append("top regressing bucket: none (B regressed nowhere)")
    shown = diff["buckets"][:top]
    if shown:
        lines.append("")
        lines.append(f"{'delta':>14}  {'class':<28} frame")
        for row in shown:
            lines.append(f"{row['delta']:>+14.0f}  {row['klass']:<28} "
                         f"{row['frame']}")
    if len(diff["buckets"]) > top:
        lines.append(f"... {len(diff['buckets']) - top} more buckets "
                     "(use --top)")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.bench.runner import _find_program, run_benchmark
    from repro.core.tool import TaskgrindOptions
    from repro.obs.prof import get_profiler
    program = _find_program(args.program)
    if program is None:
        print(f"unknown program {args.program!r} "
              "(see python -m repro run --list)", file=sys.stderr)
        return 2
    options = TaskgrindOptions(record_mode=args.record,
                               elide_sites=not args.no_elide)
    prof = get_profiler()
    prof.enable()
    prof.meta.update({
        "program": program.name, "tool": "taskgrind",
        "nthreads": args.threads, "seed": args.seed,
        "record_mode": args.record, "elide_sites": not args.no_elide,
    })
    try:
        result = run_benchmark(program, "taskgrind",
                               nthreads=args.threads, seed=args.seed,
                               taskgrind_options=options)
        phases = ((result.stats or {}).get("registry") or {}).get("phases")
        if args.out is not None:
            save_profile(args.out, prof, phases=phases)
            print(f"wrote profile to {args.out} ({len(prof)} buckets, "
                  f"{prof.total_ops:.0f} attributed ops)")
        if args.flame is not None:
            with open(args.flame, "w", encoding="utf-8") as fh:
                fh.write(prof.folded())
            print(f"wrote flamegraph input to {args.flame}")
        if args.json:
            print(json.dumps(prof.snapshot(), indent=2, sort_keys=True))
        elif args.out is None and args.flame is None:
            sys.stdout.write(prof.folded())
        print(f"# {result.program}: {result.cell()}, "
              f"{format_ops(prof.total_ops)} ops attributed over "
              f"{len(prof)} buckets", file=sys.stderr)
    finally:
        prof.disable()
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.errors import ProfileError
    try:
        a = load_profile(args.a)
        b = load_profile(args.b)
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_profiles(a, b)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(_render_diff(diff, args.top))
    return 1 if diff["top_regression"] is not None and args.fail_on_regression \
        else 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.errors import ProfileError
    try:
        doc = load_profile(args.profile)
    except ProfileError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.flame is not None:
        with open(args.flame, "w", encoding="utf-8") as fh:
            fh.write(to_folded(doc))
        print(f"wrote flamegraph input to {args.flame}")
        return 0
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    meta = doc["meta"]
    print(f"profile of {meta.get('program', '?')} "
          f"(seed {meta.get('seed', '?')}, "
          f"record_mode {meta.get('record_mode', '?')}): "
          f"{format_ops(meta.get('total_ops', 0))} ops")
    print(f"{'ops':>16}  class")
    for klass, ops in sorted(class_totals(doc).items(),
                             key=lambda kv: -kv[1]):
        print(f"{format_ops(ops):>16}  {klass}")
    if doc["counts"]:
        print(f"\n{'count':>16}  event")
        agg: Dict[str, int] = {}
        for klass, _frame, n in doc["counts"]:
            agg[klass] = agg.get(klass, 0) + n
        for klass, n in sorted(agg.items(), key=lambda kv: -kv[1]):
            print(f"{n:>16}  {klass}")
    if doc["phases"]:
        print("\nphases:")
        for name, vals in sorted(doc["phases"].items()):
            if isinstance(vals, dict):
                print(f"  {name}: x{vals.get('count', '?')} "
                      f"wall {vals.get('wall_s', 0.0):.4f}s "
                      f"vtime {format_ops(vals.get('vtime_ops', 0.0))} ops")
            else:
                print(f"  {name}: {vals}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    problems = validate_profile_doc(args.profile)
    for problem in problems:
        print(f"{args.profile}: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"{args.profile}: OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="deterministic overhead-attribution profiles: record, "
                    "inspect and diff taskgrind-profile/1 documents")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="profile one benchmark program")
    p_run.add_argument("program", help="a DRB/TMB/synthetic program name")
    p_run.add_argument("--threads", type=int, default=4)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--record", default="full", choices=["full", "sync"])
    p_run.add_argument("--no-elide", action="store_true",
                       help="disable static access elision (for "
                            "before/after elision diffs)")
    p_run.add_argument("--out", metavar="OUT.json", default=None,
                       help="write the taskgrind-profile/1 document here")
    p_run.add_argument("--flame", metavar="OUT.folded", default=None,
                       help="write collapsed-stack flamegraph text here")
    p_run.add_argument("--json", action="store_true",
                       help="print the profile snapshot as JSON")
    p_run.set_defaults(fn=_cmd_run)

    p_diff = sub.add_parser("diff",
                            help="per-bucket deltas between two profiles")
    p_diff.add_argument("a", help="baseline profile (A)")
    p_diff.add_argument("b", help="candidate profile (B)")
    p_diff.add_argument("--top", type=int, default=10,
                        help="buckets to print (default 10)")
    p_diff.add_argument("--json", action="store_true")
    p_diff.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when any bucket regressed (CI gate)")
    p_diff.set_defaults(fn=_cmd_diff)

    p_show = sub.add_parser("show", help="inspect one profile document")
    p_show.add_argument("profile")
    p_show.add_argument("--flame", metavar="OUT.folded", default=None)
    p_show.add_argument("--json", action="store_true")
    p_show.set_defaults(fn=_cmd_show)

    p_check = sub.add_parser(
        "check", help="validate a profile document (exit 1 on problems)")
    p_check.add_argument("profile")
    p_check.set_defaults(fn=_cmd_check)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
