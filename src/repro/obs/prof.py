"""Deterministic exact-charge overhead-attribution profiler.

Taskgrind's value proposition is a *known, bounded* heavyweight overhead;
this module attributes every virtual-time op the cost model charges to a
two-axis key:

* **instrumentation class** — which part of the tool paid (raw access
  recording, write-combining hit/spill/flush, HB query tier, suppression
  class, elided no-op, translation, scheduling, sync, alloc, ...);
* **guest attribution frame** — where the guest was when it paid: the
  shadow call stack joined with ``;`` (vex SuperBlock symbols included,
  because :meth:`GuestVM.run` executes inside a shadow frame), falling
  back to the task ancestry label from the segment builder, falling back
  to ``t{tid}``.

Two accumulation axes:

* the **virtual-time axis** mirrors every ``Clock.charge`` call made by
  ``CostModel.charge_*`` — per simulated thread, so bucket totals sum to
  ``CostModel.vtime_ops`` exactly under Taskgrind's serialized clock and
  profiles are bit-identical across runs with the same scheduler seed
  (virtual time has no wall-clock jitter);
* the **count axis** books deterministic event counts that carry no ops
  of their own (write-combining hits booked at drain time, HB query
  tiers, suppression verdicts, per-site elision counts).

Zero-overhead-when-disabled contract: every hook site in the hot paths
is guarded by a single attribute check (``if _PROF.enabled:`` on the
tool side, ``if self._prof is not None:`` inside the cost model), the
same pattern the tracer and metrics registry already use.  This module
must stay stdlib-only at module level — it is imported by the cost
model, the recorder, the suppression engine and the elider; the heavy
document/CLI layer lives in :mod:`repro.obs.profdoc`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

#: schema tag of the on-disk document built from a snapshot (the writer
#: itself lives in :mod:`repro.obs.profdoc`)
PROFILE_SCHEMA = "taskgrind-profile/1"

#: frame used for count-axis events that have no meaningful guest frame
NO_FRAME = "-"

FrameProvider = Callable[[int], Optional[str]]


def format_ops(ops: float) -> str:
    """Deterministic, shortest-roundtrip rendering of an op count.

    Integral values (the overwhelmingly common case: every cost-model
    parameter is integral) print without a decimal point so folded
    output matches classic ``flamegraph.pl`` expectations.
    """
    if ops == int(ops):
        return str(int(ops))
    return repr(ops)


class Profiler:
    """Singleton accumulator for both attribution axes.

    Not thread-safe by design: the simulator is single-threaded (guest
    threads are green threads under one scheduler), matching the rest of
    the observability layer.
    """

    def __init__(self) -> None:
        self.enabled = False
        #: virtual-time axis: (tid, klass, frame) -> ops
        self._vtime: Dict[Tuple[int, str, str], float] = {}
        #: count axis: (klass, frame) -> event count
        self._counts: Dict[Tuple[str, str], int] = {}
        #: per-(tid, klass) running totals for cheap timeline sampling
        self._tclass: Dict[Tuple[int, str], float] = {}
        #: total ops mirrored in *charge order* — bit-identical to the
        #: serialized clock's ``global_ops`` because both start at zero
        #: and perform the same float additions in the same order
        self.total_ops = 0.0
        self._access_hint: Optional[str] = None
        self._frame_provider: Optional[FrameProvider] = None
        self._ancestry_provider: Optional[FrameProvider] = None
        self._join_cache: Dict[Tuple[str, ...], str] = {}
        #: free-form run metadata stamped into the exported document
        self.meta: Dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        """Arm the profiler and drop all prior state."""
        self.reset()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._vtime.clear()
        self._counts.clear()
        self._tclass.clear()
        self.total_ops = 0.0
        self._access_hint = None
        self._frame_provider = None
        self._ancestry_provider = None
        self._join_cache.clear()
        self.meta = {}

    # -- attribution frames --------------------------------------------

    def bind_frame_provider(self, fn: FrameProvider) -> None:
        """Primary frame source: the machine's shadow call stacks."""
        self._frame_provider = fn

    def bind_ancestry_provider(self, fn: FrameProvider) -> None:
        """Fallback frame source: task ancestry from the recorder."""
        self._ancestry_provider = fn

    def join_frames(self, names: Tuple[str, ...]) -> str:
        """Memoized ``;``-join of a shadow-stack name tuple."""
        frame = self._join_cache.get(names)
        if frame is None:
            frame = ";".join(names)
            self._join_cache[names] = frame
        return frame

    def frame_for(self, tid: int) -> str:
        for provider in (self._frame_provider, self._ancestry_provider):
            if provider is not None:
                frame = provider(tid)
                if frame:
                    return frame
        return f"t{tid}"

    # -- access subclassification hints --------------------------------

    def hint_access(self, klass: str) -> None:
        """Set the class of the *next* ``charge_access``.

        The access hub dispatches to the tool *before* charging, so the
        tool records which branch it took (recorded / symbol-filtered /
        elided no-op / sync-skipped / replay-clipped) and the cost model
        consumes the hint when the charge lands.
        """
        self._access_hint = klass

    def take_access_hint(self, default: str) -> str:
        hint = self._access_hint
        if hint is None:
            return default
        self._access_hint = None
        return hint

    # -- the two axes --------------------------------------------------

    def charge(self, tid: int, klass: str, ops: float,
               frame: Optional[str] = None) -> None:
        """Mirror one ``Clock.charge`` onto the virtual-time axis."""
        if frame is None:
            frame = self.frame_for(tid)
        key = (tid, klass, frame)
        self._vtime[key] = self._vtime.get(key, 0.0) + ops
        tkey = (tid, klass)
        self._tclass[tkey] = self._tclass.get(tkey, 0.0) + ops
        self.total_ops += ops

    def count(self, klass: str, frame: str = NO_FRAME, n: int = 1) -> None:
        """Book ``n`` deterministic events on the count axis."""
        key = (klass, frame)
        self._counts[key] = self._counts.get(key, 0) + n

    # -- views ----------------------------------------------------------

    def vtime_cells(self) -> List[Tuple[int, str, str, float]]:
        """Sorted (tid, klass, frame, ops) rows — the canonical order."""
        return sorted((tid, klass, frame, ops)
                      for (tid, klass, frame), ops in self._vtime.items())

    def count_cells(self) -> List[Tuple[str, str, int]]:
        return sorted((klass, frame, n)
                      for (klass, frame), n in self._counts.items())

    def class_totals(self) -> Dict[str, float]:
        """Virtual-time ops aggregated over threads and frames."""
        totals: Dict[str, float] = {}
        for (_tid, klass), ops in self._tclass.items():
            totals[klass] = totals.get(klass, 0.0) + ops
        return dict(sorted(totals.items()))

    def thread_class_totals(self, tid: int) -> Dict[str, float]:
        return {klass: ops for (t, klass), ops in sorted(self._tclass.items())
                if t == tid}

    def folded(self) -> str:
        """Collapsed-stack flamegraph text (``flamegraph.pl`` input).

        One line per virtual-time bucket, ``t{tid};frame;klass ops``,
        lexicographically sorted so equal profiles are byte-identical.
        """
        lines = [f"t{tid};{frame};{klass} {format_ops(ops)}"
                 for tid, klass, frame, ops in self.vtime_cells()]
        lines.sort()
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, object]:
        """In-memory form of the profile; profdoc serializes this."""
        return {
            "schema": PROFILE_SCHEMA,
            "vtime": [list(row) for row in self.vtime_cells()],
            "counts": [list(row) for row in self.count_cells()],
            "meta": dict(self.meta, total_ops=self.total_ops),
        }

    # -- timeline merge -------------------------------------------------

    def sample_timeline(self, tracer, tid: int) -> None:
        """Emit one Chrome counter event with this thread's cumulative
        per-class ops onto the tracer's timeline lanes.

        Called from cold recorder paths (segment close) and only when
        both the profiler and the tracer are enabled, so counters ride
        the same virtual-time axis as the PR 3 lanes.
        """
        args = self.thread_class_totals(tid)
        if args:
            tracer.counter("prof.ops", args, tid=tid)

    def __len__(self) -> int:
        return len(self._vtime) + len(self._counts)


_PROFILER = Profiler()


def get_profiler() -> Profiler:
    """Return the process-wide profiler singleton."""
    return _PROFILER
