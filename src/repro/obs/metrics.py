"""Process-wide metrics registry: counters, gauges, histograms, phase timers.

The pipeline is instrumented at every major stage (VEX translation, the
access-recording hub, segment-graph construction, the happens-before query
mix, suppression, each analysis mode) through one
:class:`MetricsRegistry`.  The registry is deliberately minimal:

* **Counters** — monotonically increasing event counts.  Hot paths keep
  plain Python ints on their own objects and *publish* them into the
  registry at snapshot time; only cold paths (flushes, translations)
  increment registry counters live.
* **Gauges** — last-write-wins values (graph sizes, exactness flags).
* **Histograms** — count/sum/min/max plus power-of-two bucket counts, for
  size distributions (flush batch sizes, candidate chunk lengths).
* **Phase timers** — ``with registry.phase("analysis"): ...`` accumulates
  wall-clock seconds *and* cost-model virtual time (simulated ops) per
  named phase.  Phases may nest (each records independently) and are
  re-entrant: a phase already active on the same thread counts the entry
  but does not double-book its elapsed time.  Exceptions propagate but the
  elapsed time is still recorded.

Virtual time comes from a pluggable ``vclock`` (see
:meth:`MetricsRegistry.set_vclock`) — the machine binds it to the cost
model's clock, so a phase wrapping the instrumented run reports how much
*simulated* time it covered next to how much real time it burned.

Key names are part of the CI contract (the perf-regression gate and the
offline smoke test parse them); see ``docs/INTERNALS.md`` §6 for the
taxonomy.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.obs.tracer import get_tracer

_TRACER = get_tracer()


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """count/sum/min/max plus power-of-two buckets of observed values.

    Bucket ``k`` counts observations ``v`` with ``2**(k-1) < v <= 2**k``
    (bucket 0 counts ``v <= 1``), which is enough resolution for batch-size
    and work-distribution questions without storing samples.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        k = 0 if value <= 1 else max(0, int(value - 1).bit_length())
        self.buckets[k] = self.buckets.get(k, 0) + 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from the power-of-two buckets.

        Walks the cumulative bucket counts and interpolates linearly inside
        the bucket the quantile lands in (bucket ``k`` spans
        ``(2**(k-1), 2**k]``; bucket 0 spans ``(0, 1]``), clamped to the
        observed min/max.  Accurate to within one bucket's width — enough
        for the batch-size questions the histograms answer.
        """
        if not self.count:
            return None
        target = q * self.count
        cum = 0
        for k in sorted(self.buckets):
            c = self.buckets[k]
            if cum + c >= target:
                lo = 0.0 if k == 0 else float(1 << (k - 1))
                hi = float(1 << k)
                est = lo + (target - cum) / c * (hi - lo)
                if self.min is not None:
                    est = max(est, self.min)
                if self.max is not None:
                    est = min(est, self.max)
                return est
            cum += c
        return self.max

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = self.max = None
        self.buckets = {}

    def as_dict(self) -> dict:
        return {"count": self.count, "sum": self.sum, "min": self.min,
                "max": self.max, "mean": self.mean,
                "p50": self.percentile(0.50),
                "p95": self.percentile(0.95),
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


class _Phase:
    """Accumulated totals for one named phase."""

    __slots__ = ("name", "count", "wall_s", "vtime_ops")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_s = 0.0
        self.vtime_ops = 0.0

    def reset(self) -> None:
        self.count = 0
        self.wall_s = 0.0
        self.vtime_ops = 0.0


class _PhaseCtx:
    """Context manager produced by :meth:`MetricsRegistry.phase`."""

    __slots__ = ("_reg", "_phase", "_t0", "_v0", "_reentrant")

    def __init__(self, reg: "MetricsRegistry", phase: _Phase) -> None:
        self._reg = reg
        self._phase = phase
        self._t0 = 0.0
        self._v0 = 0.0
        self._reentrant = False

    def __enter__(self) -> "_PhaseCtx":
        reg = self._reg
        stack = reg._active_stack()
        self._reentrant = self._phase.name in stack
        stack.append(self._phase.name)
        self._phase.count += 1
        if not self._reentrant:
            self._t0 = reg._wallclock()
            self._v0 = reg._vtime_now()
            if _TRACER.enabled:
                _TRACER.begin_span(self._phase.name, _TRACER.phase_lane())
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        reg = self._reg
        stack = reg._active_stack()
        if stack and stack[-1] == self._phase.name:
            stack.pop()
        if not self._reentrant:
            self._phase.wall_s += reg._wallclock() - self._t0
            self._phase.vtime_ops += reg._vtime_now() - self._v0
            if _TRACER.enabled:
                _TRACER.end_span(self._phase.name, _TRACER.phase_lane())


class MetricsRegistry:
    """Namespace of counters/gauges/histograms/phases + the vclock binding."""

    def __init__(self, *,
                 wallclock: Callable[[], float] = time.perf_counter) -> None:
        self._wallclock = wallclock
        self._vclock: Optional[Callable[[], float]] = None
        self._ops_per_second: float = 0.0
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._phases: Dict[str, _Phase] = {}
        self._docs: Dict[str, dict] = {}
        self._local = threading.local()

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def phase(self, name: str) -> _PhaseCtx:
        p = self._phases.get(name)
        if p is None:
            p = self._phases[name] = _Phase(name)
        return _PhaseCtx(self, p)

    # -- virtual time ------------------------------------------------------

    def set_vclock(self, fn: Optional[Callable[[], float]],
                   ops_per_second: float = 0.0) -> None:
        """Bind the cost-model clock phases read their virtual time from.

        ``fn`` returns the current simulated op count (makespan);
        ``ops_per_second`` converts ops to simulated seconds in snapshots.
        ``None`` unbinds (phases then report 0 virtual time).
        """
        self._vclock = fn
        self._ops_per_second = ops_per_second

    def _vtime_now(self) -> float:
        fn = self._vclock
        return fn() if fn is not None else 0.0

    def _active_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- published documents ----------------------------------------------

    def publish(self, name: str, doc: dict) -> None:
        """Attach a component-assembled stats document (e.g. the tool's)."""
        self._docs[name] = doc

    def published(self, name: str) -> Optional[dict]:
        return self._docs.get(name)

    # -- output ------------------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as plain data (the ``--stats`` document)."""
        phases = {}
        for name, p in sorted(self._phases.items()):
            phases[name] = {
                "count": p.count, "wall_s": p.wall_s,
                "vtime_ops": p.vtime_ops,
                "vtime_s": (p.vtime_ops / self._ops_per_second
                            if self._ops_per_second else 0.0),
            }
        return {
            "counters": {n: c.value
                         for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
            "phases": phases,
            "tools": dict(self._docs),
        }

    # -- per-run scoping ---------------------------------------------------

    def mark(self) -> dict:
        """A raw-value baseline for :meth:`delta_since`.

        The process-wide registry is a true singleton (hot paths prebind its
        instruments at import time), so back-to-back runs in one process
        accumulate into the same counters.  Callers that need a *per-run*
        document take a mark before the run and subtract it afterwards —
        each ``taskgrind-stats/1`` / ``taskgrind-offline-stats/1`` document
        then reflects exactly one run.
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "histograms": {
                n: (h.count, h.sum, dict(h.buckets))
                for n, h in self._histograms.items()},
            "phases": {n: (p.count, p.wall_s, p.vtime_ops)
                       for n, p in self._phases.items()},
        }

    def delta_since(self, baseline: dict) -> dict:
        """A snapshot-shaped document of activity since ``baseline``.

        Counters, histogram counts/sums/buckets and phase totals are
        baseline-subtracted; gauges are last-write-wins and reported as-is,
        and histogram min/max are lifetime values (a bounded-memory sketch
        cannot un-observe extrema) — both documented caveats.
        """
        base_c = baseline.get("counters", {})
        base_h = baseline.get("histograms", {})
        base_p = baseline.get("phases", {})
        counters = {}
        for n, c in sorted(self._counters.items()):
            v = c.value - base_c.get(n, 0)
            if v:
                counters[n] = v
        histograms = {}
        for n, h in sorted(self._histograms.items()):
            b_count, b_sum, b_buckets = base_h.get(n, (0, 0.0, {}))
            if h.count == b_count:
                continue
            buckets = {}
            for k, v in sorted(h.buckets.items()):
                dv = v - b_buckets.get(k, 0)
                if dv:
                    buckets[str(k)] = dv
            histograms[n] = {"count": h.count - b_count,
                             "sum": h.sum - b_sum,
                             "min": h.min, "max": h.max,
                             "buckets": buckets}
        phases = {}
        for n, p in sorted(self._phases.items()):
            b_count, b_wall, b_vtime = base_p.get(n, (0, 0.0, 0.0))
            if p.count == b_count:
                continue
            vtime_ops = p.vtime_ops - b_vtime
            phases[n] = {
                "count": p.count - b_count,
                "wall_s": p.wall_s - b_wall,
                "vtime_ops": vtime_ops,
                "vtime_s": (vtime_ops / self._ops_per_second
                            if self._ops_per_second else 0.0),
            }
        return {
            "counters": counters,
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": histograms,
            "phases": phases,
        }

    def render(self) -> str:
        """Human-readable snapshot (the ``--stats=pretty`` output)."""
        snap = self.snapshot()
        lines = ["== stats =="]
        if snap["phases"]:
            lines.append("phase                          count      wall_s"
                         "     vtime_s")
            for name, p in snap["phases"].items():
                lines.append(f"{name:<30} {p['count']:>6} {p['wall_s']:11.6f}"
                             f" {p['vtime_s']:11.6f}")
        if snap["counters"]:
            lines.append("counters:")
            for name, v in snap["counters"].items():
                lines.append(f"  {name:<34} {v}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, v in snap["gauges"].items():
                lines.append(f"  {name:<34} {v}")
        if snap["histograms"]:
            lines.append("histograms:                          count"
                         "       mean        p50        p95")
            for name, h in snap["histograms"].items():
                if not h["count"]:
                    continue
                p50 = h["p50"] if h["p50"] is not None else 0.0
                p95 = h["p95"] if h["p95"] is not None else 0.0
                lines.append(f"  {name:<34} {h['count']:>6} "
                             f"{h['mean']:>10.2f} {p50:>10.2f} {p95:>10.2f}")
        for tool, doc in snap["tools"].items():
            lines.append(f"tool document: {tool} "
                         f"({len(doc)} top-level sections)")
        return "\n".join(lines)

    def render_prom(self) -> str:
        """Prometheus text exposition format (the ``--stats=prom`` output).

        Conventions:

        * every metric is prefixed ``taskgrind_`` and name-sanitized
          (``[^a-zA-Z0-9_]`` becomes ``_``);
        * counters export as ``<name>_total`` (``# TYPE ... counter``);
        * numeric gauges export directly; non-numeric gauges export as
          ``<name>_info{value="..."} 1``;
        * histograms export cumulative ``_bucket{le="2^k"}`` series derived
          from the power-of-two buckets, plus ``_count`` / ``_sum``;
        * phases export ``taskgrind_phase_runs_total``,
          ``taskgrind_phase_wall_seconds_total`` and
          ``taskgrind_phase_vtime_ops_total``, labeled by phase name.

        A future ``repro.serve`` scrape endpoint can return this string
        verbatim.
        """
        def sanitize(name: str) -> str:
            return "".join(c if c.isalnum() or c == "_" else "_"
                           for c in name)

        def esc(value: str) -> str:
            return value.replace("\\", "\\\\").replace('"', '\\"')

        lines: List[str] = []
        for name, c in sorted(self._counters.items()):
            metric = f"taskgrind_{sanitize(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {c.value}")
        for name, g in sorted(self._gauges.items()):
            metric = f"taskgrind_{sanitize(name)}"
            if isinstance(g.value, (int, float)) \
                    and not isinstance(g.value, bool):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {g.value}")
            else:
                lines.append(f"# TYPE {metric}_info gauge")
                lines.append(f'{metric}_info{{value="{esc(str(g.value))}"}}'
                             " 1")
        for name, h in sorted(self._histograms.items()):
            metric = f"taskgrind_{sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cum = 0
            for k in sorted(h.buckets):
                cum += h.buckets[k]
                lines.append(f'{metric}_bucket{{le="{float(1 << k)}"}} '
                             f"{cum}")
            lines.append(f'{metric}_bucket{{le="+Inf"}} {h.count}')
            lines.append(f"{metric}_count {h.count}")
            lines.append(f"{metric}_sum {h.sum}")
        if self._phases:
            lines.append("# TYPE taskgrind_phase_runs_total counter")
            lines.append("# TYPE taskgrind_phase_wall_seconds_total counter")
            lines.append("# TYPE taskgrind_phase_vtime_ops_total counter")
            for name, p in sorted(self._phases.items()):
                label = f'{{phase="{esc(name)}"}}'
                lines.append(
                    f"taskgrind_phase_runs_total{label} {p.count}")
                lines.append(
                    f"taskgrind_phase_wall_seconds_total{label} {p.wall_s}")
                lines.append(
                    f"taskgrind_phase_vtime_ops_total{label} {p.vtime_ops}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every instrument (objects stay valid, prebinding survives)."""
        for group in (self._counters, self._gauges, self._histograms,
                      self._phases):
            for item in group.values():
                item.reset()
        self._docs.clear()


#: The process-wide registry.  Pipeline code prebinds instruments from it at
#: import time, so it is a true singleton — callers needing isolation
#: instantiate their own :class:`MetricsRegistry` instead of swapping it.
_PROCESS_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every pipeline stage reports through."""
    return _PROCESS_REGISTRY
