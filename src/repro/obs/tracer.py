"""Execution timeline tracer: Chrome trace-event export on the virtual-time axis.

The segment graph is the paper's core artifact, but until now it was only
visible as aggregate counters (``--stats``) or the final race report.  This
module records the *simulated execution itself* — segment begin/end spans per
simulated thread, task/sync/allocator instants, happens-before edges and
race-provenance links as flow events — and exports them as Chrome
trace-event JSON loadable in Perfetto or ``chrome://tracing``.

Design constraints:

* **Virtual-time axis.**  Event timestamps come from the cost model's
  virtual clock (simulated ops converted to microseconds), so a span's width
  is the *simulated* duration the cost model charged, not the Python
  harness's wall clock.  Wall time is carried as a secondary ``wall_s``
  field in each event's ``args``.  Phases that run outside an instrumented
  machine (offline analysis) fall back to wall-clock microseconds; the
  virtual clock is re-based on bind so the axis stays monotone.
* **Zero overhead when disabled.**  The tracer is a process-wide singleton
  prebound at import time by every hook site; a disabled tracer costs one
  attribute check (``if _TRACER.enabled``) per *cold* event — no hooks exist
  on the per-access hot path at all.
* **Bounded.**  Events land in a ring buffer (``max_events``); when it
  wraps, the oldest events are dropped and the drop count is exported in
  ``otherData`` so downstream checkers can distinguish a truncated trace
  from a malformed one.

Event model (Chrome trace-event ``ph`` codes):

======  ======================================================================
``B/E`` span begin/end — segments (per simulated thread), analysis phases
``i``   instant — task create/complete, sync points, alloc/free,
        suppression drops, shim forwards
``s/f`` flow start/finish — cross-thread happens-before edges
        (cat ``hb``) and race-provenance links between the two racing
        segment spans (cat ``race``)
``M``   metadata — process/thread names
======  ======================================================================

See ``docs/INTERNALS.md`` §7 for the full event taxonomy and
:mod:`repro.obs.tracecheck` for the schema validator CI runs on exported
timelines.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

#: pid of every event (one simulated process per trace)
TRACE_PID = 1
#: tid used for virtual join segments (their builder thread_id is -1)
JOIN_TID = 999
#: tid used for analysis/tool phase spans (no simulated thread runs them)
PHASE_TID = 1000


class TimelineTracer:
    """Bounded ring-buffer recorder of Chrome trace events.

    All emit methods are no-ops unless :meth:`enable` was called; hook sites
    must guard with ``if tracer.enabled`` so the disabled path costs one
    attribute read.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._events: Deque[dict] = deque()
        self._max_events = 0
        self.dropped = 0
        #: total events ever pushed since enable (ring evictions included);
        #: the basis of the mark()/delta_since() per-run scope
        self._total_emitted = 0
        self._wall0 = 0.0
        self._vclock: Optional[Callable[[], float]] = None
        self._ops_per_second = 0.0
        #: virtual-time offset (us) applied so re-basing the clock on a
        #: machine bind never moves the axis backwards
        self._vbase_us = 0.0
        self._flow_seq = 0
        #: seg id -> (tid, ts_begin); completed spans move to seg_spans
        self._open_segs: Dict[int, Tuple[int, float]] = {}
        #: seg id -> (tid, ts_begin, ts_end) for post-hoc flow anchoring
        self.seg_spans: Dict[int, Tuple[int, float, float]] = {}
        #: open phase spans per name (stack of begin ts), for close_all
        self._open_spans: List[Tuple[str, int, float]] = []
        #: per-OS-thread phase lane allocation (worker pools run phases
        #: concurrently; each real thread gets its own B/E nesting lane)
        self._lane_local = threading.local()
        self._lane_lock = threading.Lock()
        self._lane_count = 0

    # -- lifecycle ---------------------------------------------------------

    def enable(self, *, max_events: int = 200_000) -> None:
        """Start recording (resets any previous buffer)."""
        self.reset()
        self._max_events = max_events
        self._events = deque()
        self._wall0 = time.perf_counter()
        self.enabled = True
        self._meta("process_name", TRACE_PID, 0, {"name": "taskgrind-sim"})
        self._meta("thread_name", TRACE_PID, JOIN_TID, {"name": "join-nodes"})
        self._meta("thread_name", TRACE_PID, PHASE_TID, {"name": "phases"})

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.enabled = False
        self._events = deque()
        self.dropped = 0
        self._total_emitted = 0
        self._vclock = None
        self._ops_per_second = 0.0
        self._vbase_us = 0.0
        self._flow_seq = 0
        self._open_segs = {}
        self.seg_spans = {}
        self._open_spans = []

    def set_vclock(self, fn: Optional[Callable[[], float]],
                   ops_per_second: float) -> None:
        """Bind the cost-model clock; timestamps become virtual time.

        Re-basing: the current wall-derived timestamp becomes the virtual
        origin, so a machine constructed after :meth:`enable` does not send
        the axis backwards.
        """
        if fn is not None and ops_per_second > 0:
            self._vbase_us = self._wall_us()
        self._vclock = fn
        self._ops_per_second = ops_per_second

    # -- clocks ------------------------------------------------------------

    def _wall_us(self) -> float:
        return (time.perf_counter() - self._wall0) * 1e6

    def now_us(self) -> float:
        """Current timestamp on the trace axis (virtual when bound)."""
        fn = self._vclock
        if fn is not None and self._ops_per_second > 0:
            return self._vbase_us + fn() / self._ops_per_second * 1e6
        return self._wall_us()

    # -- low-level emit ----------------------------------------------------

    def _push(self, ev: dict) -> None:
        if self._max_events and len(self._events) >= self._max_events:
            self._events.popleft()
            self.dropped += 1
        self._events.append(ev)
        self._total_emitted += 1

    # -- per-run scope -----------------------------------------------------

    def mark(self) -> int:
        """Opaque baseline for :meth:`delta_since` (mirrors the metrics
        registry's mark/delta pair): the total-emitted watermark."""
        return self._total_emitted

    def delta_since(self, baseline: int) -> List[dict]:
        """Events pushed since ``baseline`` that are still in the ring.

        Events evicted by the ring since the mark are gone — callers can
        detect that by comparing ``len(result)`` with
        ``self._total_emitted - baseline``.
        """
        n = self._total_emitted - baseline
        if n <= 0:
            return []
        events = list(self._events)
        return events[-n:] if n < len(events) else events

    def new_run(self) -> int:
        """Open a fresh per-run scope without dropping the recorded buffer.

        Clears the cross-run *anchoring* state — open-segment and completed
        span tables keyed by segment id — because segment ids restart at 0
        each run: without this, a race flow in run 2 could anchor into run
        1's spans.  Returns :meth:`mark` for the new scope.
        """
        self._open_segs = {}
        self.seg_spans = {}
        return self.mark()

    def _meta(self, name: str, pid: int, tid: int, args: dict) -> None:
        self._push({"ph": "M", "name": name, "pid": pid, "tid": tid,
                    "ts": 0, "args": args})

    def _args(self, extra: Optional[dict]) -> dict:
        args = {"wall_s": time.perf_counter() - self._wall0}
        if extra:
            args.update(extra)
        return args

    # -- spans -------------------------------------------------------------

    def begin_span(self, name: str, tid: int, *, cat: str = "phase",
                   args: Optional[dict] = None) -> float:
        ts = self.now_us()
        self._push({"ph": "B", "name": name, "cat": cat, "pid": TRACE_PID,
                    "tid": tid, "ts": ts, "args": self._args(args)})
        self._open_spans.append((name, tid, ts))
        return ts

    def end_span(self, name: str, tid: int, *, cat: str = "phase",
                 args: Optional[dict] = None) -> float:
        ts = self.now_us()
        self._push({"ph": "E", "name": name, "cat": cat, "pid": TRACE_PID,
                    "tid": tid, "ts": ts, "args": self._args(args)})
        for i in range(len(self._open_spans) - 1, -1, -1):
            if self._open_spans[i][0] == name and \
                    self._open_spans[i][1] == tid:
                del self._open_spans[i]
                break
        return ts

    def phase_lane(self) -> int:
        """The calling OS thread's phase-span tid (stable per thread)."""
        tid = getattr(self._lane_local, "tid", None)
        if tid is None:
            with self._lane_lock:
                tid = PHASE_TID + self._lane_count
                self._lane_count += 1
            self._lane_local.tid = tid
        return tid

    # -- segments (span + remembered anchor for flow events) ---------------

    @staticmethod
    def seg_tid(thread_id: int) -> int:
        return JOIN_TID if thread_id < 0 else thread_id

    def segment_begin(self, seg_id: int, thread_id: int, kind: str,
                      label: str) -> None:
        tid = self.seg_tid(thread_id)
        ts = self.begin_span(f"seg#{seg_id}", tid, cat="segment",
                             args={"kind": kind, "label": label})
        self._open_segs[seg_id] = (tid, ts)

    def segment_end(self, seg_id: int, *, args: Optional[dict] = None) -> None:
        opened = self._open_segs.pop(seg_id, None)
        if opened is None:
            return
        tid, ts0 = opened
        ts = self.end_span(f"seg#{seg_id}", tid, cat="segment", args=args)
        self.seg_spans[seg_id] = (tid, ts0, ts)

    # -- instants ----------------------------------------------------------

    def instant(self, name: str, thread_id: int = PHASE_TID, *,
                cat: str = "event", args: Optional[dict] = None) -> None:
        self._push({"ph": "i", "name": name, "cat": cat, "pid": TRACE_PID,
                    "tid": self.seg_tid(thread_id), "ts": self.now_us(),
                    "s": "t", "args": self._args(args)})

    # -- counters ----------------------------------------------------------

    def counter(self, name: str, values: Dict[str, float], *,
                tid: int = PHASE_TID, cat: str = "counter") -> None:
        """One Chrome counter sample (``ph: "C"``): stacked series per key.

        Used by the attribution profiler to merge cumulative per-class op
        totals onto the timeline lanes; ``values`` maps series name to the
        sample value at the current timestamp.
        """
        self._push({"ph": "C", "name": name, "cat": cat, "pid": TRACE_PID,
                    "tid": self.seg_tid(tid), "ts": self.now_us(),
                    "args": dict(values)})

    # -- flows -------------------------------------------------------------

    def flow(self, name: str, *, cat: str, src_tid: int, src_ts: float,
             dst_tid: int, dst_ts: float,
             args: Optional[dict] = None) -> int:
        """One flow arrow (``s`` then ``f``) between two points."""
        self._flow_seq += 1
        fid = self._flow_seq
        base = {"name": name, "cat": cat, "pid": TRACE_PID, "id": fid,
                "args": self._args(args)}
        self._push(dict(base, ph="s", tid=self.seg_tid(src_tid), ts=src_ts))
        self._push(dict(base, ph="f", bp="e", tid=self.seg_tid(dst_tid),
                        ts=max(dst_ts, src_ts)))
        return fid

    def edge_flow(self, name: str, src_tid: int, dst_tid: int,
                  args: Optional[dict] = None) -> None:
        """A happens-before edge observed *now* (both ends at current ts)."""
        ts = self.now_us()
        self.flow(name, cat="hb", src_tid=src_tid, src_ts=ts,
                  dst_tid=dst_tid, dst_ts=ts, args=args)

    def race_flow(self, s1_id: int, s2_id: int, *,
                  t1: Optional[int] = None, t2: Optional[int] = None,
                  args: Optional[dict] = None) -> bool:
        """Link the two racing segments' spans (mid-span anchors).

        When either segment has no recorded span (offline analysis loads the
        graph without replaying spans), falls back to a now-anchored flow on
        the segments' thread lanes when ``t1``/``t2`` are given, else
        returns False.
        """
        a = self.seg_spans.get(s1_id)
        b = self.seg_spans.get(s2_id)
        if a is None or b is None:
            if t1 is None or t2 is None:
                return False
            ts = self.now_us()
            self.flow(f"race seg#{s1_id}->seg#{s2_id}", cat="race",
                      src_tid=t1, src_ts=ts, dst_tid=t2, dst_ts=ts,
                      args=args)
            return True
        if a[1] > b[1]:                 # flow arrows point forward in time
            a, b = b, a
            s1_id, s2_id = s2_id, s1_id
        self.flow(f"race seg#{s1_id}->seg#{s2_id}", cat="race",
                  src_tid=a[0], src_ts=(a[1] + a[2]) / 2,
                  dst_tid=b[0], dst_ts=(b[1] + b[2]) / 2, args=args)
        return True

    # -- export ------------------------------------------------------------

    def close_all(self) -> None:
        """Emit ``E`` events for spans still open (end-of-run segments)."""
        for seg_id in reversed(list(self._open_segs)):
            self.segment_end(seg_id, args={"unterminated": True})
        for name, tid, _ts in reversed(list(self._open_spans)):
            self.end_span(name, tid, args={"unterminated": True})

    def to_dict(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Events are sorted by timestamp (stable, so same-ts begin/end pairs
        keep their emission order and back-dated flow anchors land inside
        the spans they reference) — the exported ``ts`` sequence is
        monotone non-negative.
        """
        self.close_all()
        events = sorted(self._events, key=lambda e: e["ts"])
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "taskgrind",
                "axis": ("virtual" if self._vclock is not None else "wall"),
                "dropped": self.dropped,
                "flow_count": self._flow_seq,
            },
        }

    def export(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh)

    def __len__(self) -> int:
        return len(self._events)


#: The process-wide tracer.  Hook sites prebind it at import time and guard
#: every emission with ``if _TRACER.enabled`` — the disabled cost is one
#: attribute check on cold paths only.
_TRACER = TimelineTracer()


def get_tracer() -> TimelineTracer:
    """The process-wide timeline tracer."""
    return _TRACER
