"""The fuzz program spec: a runtime-neutral task-program AST.

A :class:`FuzzProgram` is a small, fully declarative parallel program that
the executors (:mod:`repro.fuzz.executors`) can *render* onto any of the
simulated runtimes and the oracles (:mod:`repro.fuzz.truth`,
:mod:`repro.fuzz.oracles`) can *interpret* symbolically.  Everything is
plain JSON-able data so programs round-trip byte-identically — the property
the seed-replay tests and the corpus regression runner depend on.

Five program families, one per synchronisation idiom:

``sp``
    Series-parallel nested tasks (spawn + taskwait only).  Every body that
    creates tasks ends with a ``wait``, so the OpenMP rendering (taskwait)
    and the Cilk rendering (implicit sync at frame end) describe the same
    happens-before relation — the precondition for the SP-bags oracle.
``tasks``
    Unrestricted nested tasks: taskwaits anywhere, taskgroups, children
    that outlive their parent.  OpenMP-only.
``deps``
    A flat sibling task set with ``in``/``out`` dependence tokens (the
    OpenMP sibling-scoped dependence rule).
``feb``
    Qthreads: forked qtasks synchronised by single-producer/single-consumer
    full/empty-bit transfers.
``barrier``
    An OpenMP parallel region: per-thread access rounds separated by team
    barriers.

Ops are plain lists (JSON arrays).  The shared race surface is a heap arena
of 8-byte slots; ``tls``/``stack``/``scratch`` ops are *noise* that every
detector must stay silent about (they exercise the Section IV suppression
classes):

====================  =====================================================
op                    meaning
====================  =====================================================
``["r", i]``          read shared arena slot ``i``
``["w", i]``          write shared arena slot ``i``
``["tls", k]``        write thread-local variable ``k`` (IV-C surface)
``["stack"]``         write+read a stack local of this frame (IV-D surface)
``["scratch"]``       malloc 16 B, write, free (IV-B recycling surface)
``["task", [...]]``   spawn a child task with the given body (sp/tasks)
``["wait"]``          taskwait — join direct children created so far
``["group", [...]]``  taskgroup around the body ops (tasks family only)
``["writeEF", w]``    FEB fill of word ``w`` (feb family only)
``["readFE", w]``     FEB consume of word ``w`` (feb family only)
====================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

SCHEMA = "taskgrind-fuzz-program/1"

FAMILIES = ("sp", "tasks", "deps", "feb", "barrier")

#: ops legal inside a task body, per family
ACCESS_OPS = ("r", "w")
NOISE_OPS = ("tls", "stack", "scratch")
STRUCT_OPS = ("task", "wait", "group")
FEB_OPS = ("writeEF", "readFE")


@dataclass
class FuzzProgram:
    """One generated (or minimized) fuzz program."""

    family: str
    seed: int                 # generator seed; -1 for hand-built programs
    nthreads: int
    slots: int                # shared arena slots (the race surface)
    #: family-specific payload (see module docstring)
    body: list = field(default_factory=list)

    # -- serialization (byte-stable: the determinism contract) ---------------

    def to_json(self) -> str:
        doc = {"schema": SCHEMA, "family": self.family, "seed": self.seed,
               "nthreads": self.nthreads, "slots": self.slots,
               "body": self.body}
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FuzzProgram":
        doc = json.loads(text)
        if doc.get("schema") != SCHEMA:
            raise ValueError(f"not a {SCHEMA} document")
        return cls(family=doc["family"], seed=doc["seed"],
                   nthreads=doc["nthreads"], slots=doc["slots"],
                   body=doc["body"])

    def clone(self) -> "FuzzProgram":
        return FuzzProgram.from_json(self.to_json())

    def digest(self) -> str:
        import hashlib
        return hashlib.sha256(self.to_json().encode()).hexdigest()[:12]

    # -- structure helpers ----------------------------------------------------

    def task_count(self) -> int:
        """Number of explicit tasks (qtasks / dep tasks / spawned tasks)."""
        if self.family in ("deps", "feb"):
            return len(self.body)
        if self.family == "barrier":
            return 0
        return sum(1 for body in iter_bodies(self.body)
                   for op in body if op[0] == "task")

    def op_count(self) -> int:
        if self.family == "barrier":
            return sum(len(r) for rounds in self.body for r in rounds)
        if self.family in ("deps", "feb"):
            return sum(len(t["ops"]) for t in self.body)
        return sum(len(b) for b in iter_bodies(self.body))


def iter_bodies(root_body: list) -> Iterator[list]:
    """Yield the root body and every nested task/group body (pre-order)."""
    stack = [root_body]
    while stack:
        body = stack.pop()
        yield body
        for op in reversed(body):
            if op and op[0] in ("task", "group"):
                stack.append(op[1])


def dep_predecessors(tasks: Sequence[dict]) -> List[List[int]]:
    """OpenMP sibling dependence rule: predecessors per task index.

    ``out`` depends on the previous writer *and* the readers since it;
    ``in`` depends on the previous writers.  (Both oracles and ground truth
    share this rule — it is the spec's semantics, not an implementation.)
    """
    preds: List[List[int]] = [[] for _ in tasks]
    last_writers: dict = {}
    readers_since: dict = {}
    for i, task in enumerate(tasks):
        mine: List[int] = []
        for tok in task.get("in", ()):  # reads wait for the last writers
            mine.extend(w for w in last_writers.get(tok, ()))
            readers_since.setdefault(tok, []).append(i)
        for tok in task.get("out", ()):
            mine.extend(w for w in last_writers.get(tok, ()))
            mine.extend(r for r in readers_since.get(tok, ()))
            last_writers[tok] = [i]
            readers_since[tok] = []
        preds[i] = sorted(set(p for p in mine if p != i))
    return preds


def feb_word_sites(tasks: Sequence[dict]
                   ) -> Tuple[dict, dict]:
    """Map each FEB word to its (task, op) fill and consume positions."""
    fills: dict = {}
    consumes: dict = {}
    for ti, task in enumerate(tasks):
        for oi, op in enumerate(task["ops"]):
            if op[0] == "writeEF":
                fills.setdefault(op[1], []).append((ti, oi))
            elif op[0] == "readFE":
                consumes.setdefault(op[1], []).append((ti, oi))
    return fills, consumes


def validate(program: FuzzProgram) -> Optional[str]:
    """Structural validity; returns a reason string when invalid.

    The shrinker uses this to discard candidate reductions that would not
    even execute (e.g. a FEB consume whose producer was deleted — a
    guaranteed simulated deadlock, not a divergence).
    """
    p = program
    if p.family not in FAMILIES:
        return f"unknown family {p.family!r}"
    if p.nthreads < 1 or p.slots < 1:
        return "nthreads and slots must be >= 1"

    def check_ops(ops: list, allowed: tuple) -> Optional[str]:
        for op in ops:
            if not op or op[0] not in allowed:
                return f"op {op!r} not allowed here"
            if op[0] in ("r", "w") and not (0 <= op[1] < p.slots):
                return f"slot {op[1]} out of range"
        return None

    if p.family in ("sp", "tasks"):
        allowed = ACCESS_OPS + NOISE_OPS + STRUCT_OPS
        for body in iter_bodies(p.body):
            err = check_ops(body, allowed)
            if err:
                return err
            if p.family == "sp":
                if any(op[0] == "group" for op in body):
                    return "sp family forbids taskgroup"
                # strictness: a body that spawns must end with a wait, so
                # the Cilk rendering (implicit sync) is HB-equivalent
                if any(op[0] == "task" for op in body) and \
                        (not body or body[-1][0] != "wait"):
                    return "sp body with tasks must end with wait"
    elif p.family == "deps":
        for task in p.body:
            err = check_ops(task.get("ops", []), ACCESS_OPS + NOISE_OPS)
            if err:
                return err
            if set(task.get("in", ())) & set(task.get("out", ())):
                return "token both in and out of one task"
    elif p.family == "feb":
        for task in p.body:
            err = check_ops(task["ops"], ACCESS_OPS + NOISE_OPS + FEB_OPS)
            if err:
                return err
        fills, consumes = feb_word_sites(p.body)
        for w, sites in consumes.items():
            if len(sites) > 1:
                return f"word {w} consumed more than once"
            if w not in fills:
                return f"word {w} consumed but never filled"
            (fti, foi), (cti, coi) = fills[w][0], sites[0]
            # deadlock-freedom: fill strictly before consume in fork order
            # (or earlier op of the same qtask)
            if (fti, foi) >= (cti, coi):
                return f"word {w} filled after its consume"
        for w, sites in fills.items():
            if len(sites) > 1:
                return f"word {w} filled more than once"
    elif p.family == "barrier":
        if len(p.body) != p.nthreads:
            return "barrier body must have one round-list per thread"
        rounds = {len(thread) for thread in p.body}
        if len(rounds) > 1:
            return "all threads must have the same number of rounds"
        for thread in p.body:
            for r in thread:
                err = check_ops(r, ACCESS_OPS + NOISE_OPS)
                if err:
                    return err
    return None
