"""Baseline oracles for the differential harness.

Two independent detectors, both driven from the *spec* (not from an
execution), so their verdicts cannot depend on a schedule:

* :func:`vclock_slots` — a task-centric FastTrack detector built on the
  ``repro.baselines`` vector-clock machinery (:class:`TsanCore` +
  :class:`VectorClock`/:class:`SyncVar`).  Unlike Archer, clocks are keyed
  by *logical task id*, not OS thread, so the verdict describes the logical
  program — the same relation Taskgrind's segment graph encodes, derived by
  a completely different mechanism.  The spec is interpreted serially in a
  topological order; by transitivity of happens-before, FastTrack's
  last-epoch shadow cells cannot miss a racy *slot* under such an order
  (they can miss individual racy pairs, which is why the comparison is at
  slot granularity).
* :func:`spbags_verdict` — the Nondeterminator's SP-bags
  (:class:`repro.baselines.spbags.SpBagsTool`) run for real over the
  serial-elision Cilk rendering of an ``sp``-family program.  SP-bags
  guarantees *a* race is flagged iff one exists, but not one per racy
  location, so its verdict is binary.

Normalization rules (shared with the executors): only shared-arena slots
(``s<i>``) count as the race surface; SP-bags sees no noise ops (its shadow
has no free-interceptor, so recycled scratch blocks would be false
positives *of the oracle*, not of the tool under test).
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.baselines.tsan import TsanCore
from repro.fuzz.spec import FuzzProgram, dep_predecessors

#: synthetic address base of shared slot ``i`` in the symbolic interpreters
SLOT_BASE = 0x10000
SLOT_BYTES = 8


def _slot_addr(slot: int) -> int:
    return SLOT_BASE + slot * SLOT_BYTES


def _slot_of(lo: int) -> str:
    return f"s{(lo - SLOT_BASE) // SLOT_BYTES}"


class _VClockInterp:
    """Serial spec interpreter feeding a task-centric TsanCore."""

    def __init__(self) -> None:
        self.core = TsanCore()
        self._next_id = 0

    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id - 1

    def acc(self, tid: int, slot: int, is_write: bool) -> None:
        lo = _slot_addr(slot)
        if is_write:
            self.core.on_write(tid, lo, lo + SLOT_BYTES, None)
        else:
            self.core.on_read(tid, lo, lo + SLOT_BYTES, None)

    def racy_slots(self) -> FrozenSet[str]:
        return frozenset(_slot_of(lo) for lo, _hi in self.core.racy_ranges())

    # -- family interpreters -------------------------------------------------

    def run_task_tree(self, body: list) -> FrozenSet[str]:
        root = self.new_id()
        self._tree_body(body, root, [])
        return self.racy_slots()

    def _tree_body(self, body: list, me: int,
                   open_groups: List[List[int]],
                   children: List[int] = None) -> None:
        core = self.core
        children = [] if children is None else children
        for op in body:
            kind = op[0]
            if kind in ("r", "w"):
                self.acc(me, op[1], kind == "w")
            elif kind == "task":
                cid = self.new_id()
                children.append(cid)
                for grp in open_groups:
                    grp.append(cid)
                core.release(me, ("spawn", cid))
                core.acquire(cid, ("spawn", cid))
                self._tree_body(op[1], cid, open_groups)
                core.release(cid, ("done", cid))
            elif kind == "wait":
                for c in children:
                    core.acquire(me, ("done", c))
            elif kind == "group":
                members: List[int] = []
                open_groups.append(members)
                # group body ops run in ``me``; its tasks are also direct
                # children of ``me`` (visible to a later taskwait)
                self._tree_body(op[1], me, open_groups, children)
                open_groups.pop()
                for m in members:
                    core.acquire(me, ("done", m))

    def run_deps(self, tasks: list) -> FrozenSet[str]:
        core = self.core
        root = self.new_id()
        ids = [self.new_id() for _ in tasks]
        preds = dep_predecessors(tasks)
        for i in range(len(tasks)):
            core.release(root, ("create", i))
        for i, task in enumerate(tasks):
            tid = ids[i]
            core.acquire(tid, ("create", i))
            for p in preds[i]:
                core.acquire(tid, ("done", p))
            for op in task.get("ops", ()):
                if op[0] in ("r", "w"):
                    self.acc(tid, op[1], op[0] == "w")
            core.release(tid, ("done", i))
        return self.racy_slots()

    def run_feb(self, tasks: list) -> FrozenSet[str]:
        core = self.core
        main = self.new_id()
        ids = [self.new_id() for _ in tasks]
        for i in range(len(tasks)):
            core.release(main, ("fork", i))
        # fork order is a topological order of the single-producer /
        # single-consumer transfer graph (spec validity guarantees it)
        for i, task in enumerate(tasks):
            tid = ids[i]
            core.acquire(tid, ("fork", i))
            for op in task["ops"]:
                kind = op[0]
                if kind in ("r", "w"):
                    self.acc(tid, op[1], kind == "w")
                elif kind == "writeEF":
                    core.release(tid, ("feb", op[1]))
                elif kind == "readFE":
                    core.acquire(tid, ("feb", op[1]))
        return self.racy_slots()

    def run_barrier(self, threads: list) -> FrozenSet[str]:
        core = self.core
        ids = [self.new_id() for _ in threads]
        n_rounds = len(threads[0]) if threads else 0
        for r in range(n_rounds):
            for t, thread in enumerate(threads):
                for op in thread[r]:
                    if op[0] in ("r", "w"):
                        self.acc(ids[t], op[1], op[0] == "w")
            for t in range(len(threads)):
                core.release(ids[t], ("bar", r))
            for t in range(len(threads)):
                core.acquire(ids[t], ("bar", r))
        return self.racy_slots()


def vclock_slots(program: FuzzProgram) -> FrozenSet[str]:
    """Racy shared slots per the task-centric vector-clock oracle."""
    interp = _VClockInterp()
    if program.family in ("sp", "tasks"):
        return interp.run_task_tree(program.body)
    if program.family == "deps":
        return interp.run_deps(program.body)
    if program.family == "feb":
        return interp.run_feb(program.body)
    if program.family == "barrier":
        return interp.run_barrier(program.body)
    raise ValueError(f"unknown family {program.family!r}")


def spbags_verdict(program: FuzzProgram) -> bool:
    """SP-bags over the serial-elision Cilk rendering (``sp`` family only).

    Returns the binary racy-or-not verdict of the real
    :class:`~repro.baselines.spbags.SpBagsTool` run through the full
    machine stack.
    """
    if program.family != "sp":
        raise ValueError("SP-bags applies to the sp family only")
    from repro.baselines.spbags import SpBagsTool
    from repro.cilk.runtime import make_cilk_env
    from repro.machine.machine import Machine

    machine = Machine(seed=0)
    tool = SpBagsTool()
    machine.add_tool(tool)
    env = make_cilk_env(machine, nworkers=1, serial_elision=True,
                        source_file="fuzz.cilk")
    tool.attach_cilk(env)
    ctx = env.ctx

    def cilk_ops(frame, body: list) -> None:
        for op in body:
            kind = op[0]
            if kind in ("r", "w"):
                if kind == "w":
                    arena_box[0].write(op[1])
                else:
                    arena_box[0].read(op[1])
            elif kind == "task":
                env.spawn(frame, cilk_ops, op[1])
            elif kind == "wait":
                env.sync(frame)
            # noise ops are not rendered: SP-bags has no free interceptor,
            # so scratch recycling would false-positive the *oracle*

    arena_box: list = [None]

    def main():
        with ctx.function("main", line=1):
            arena_box[0] = ctx.malloc(SLOT_BYTES * program.slots,
                                      elem=SLOT_BYTES, name="arena")

            def root(frame):
                cilk_ops(frame, program.body)
            env.run(root)

    machine.run(main)
    return bool(tool.finalize())
