"""Render a fuzz program onto the simulated runtimes and run Taskgrind.

One executor per family group:

* ``sp``/``tasks``/``deps``/``barrier`` → the OpenMP runtime (tasks through
  ``env.task`` with the deferrable annotation, dependences through the
  ``depend`` clause, barriers through a real parallel region);
* ``feb`` → the Qthreads runtime (forked qtasks + full/empty-bit words).

The executor owns the address map: it remembers where the shared arena and
the FEB words landed so :func:`normalize` can fold a tool's byte-range
reports back into logical slot names (``s3``, ``feb1``) — the common
currency of the differential oracle.  Ranges that map to nothing on the
shared surface (TLS blocks, stack frames, recycled scratch allocations,
runtime internals) are *noise*: a correctly suppressing Taskgrind never
reports them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.errors import GuestCrash, OutOfMemory, SimDeadlock
from repro.fuzz.spec import FuzzProgram
from repro.machine.machine import Machine

SLOT_BYTES = 8
SCRATCH_BYTES = 16


def fuzz_options(**overrides) -> TaskgrindOptions:
    """Taskgrind options for fuzzing: the real analysis, not the modeled
    Table II lock-up artifact (which is a reproduction fidelity feature,
    not behaviour under test)."""
    opts = TaskgrindOptions(model_multithread_lockup=False)
    supp = opts.suppression
    for key, value in overrides.items():
        if hasattr(supp, key):
            setattr(supp, key, value)
        else:
            setattr(opts, key, value)
    return opts


@dataclass
class RunOutcome:
    """One (program, schedule seed) Taskgrind run, normalized."""

    schedule_seed: int
    slots: frozenset = frozenset()        # racy shared objects ("s3", "feb1")
    noise: Tuple[str, ...] = ()           # report ranges off the shared surface
    report_count: int = 0
    crashed: str = ""                     # exception class name when nonempty

    @property
    def ok(self) -> bool:
        return not self.crashed

    def signature(self) -> Tuple:
        """What cross-schedule determinism is judged on.

        Noise is excluded: off-surface report *addresses* legitimately vary
        with allocation order across schedules, and their presence is
        already flagged by the ``suppression`` divergence class.
        """
        return (self.crashed, self.slots)


@dataclass
class _AddrMap:
    """Logical-object layout of one run."""

    ranges: List[Tuple[int, int, str]] = field(default_factory=list)

    def add(self, lo: int, hi: int, key: str) -> None:
        self.ranges.append((lo, hi, key))

    def add_buffer(self, buf, key_prefix: str, count: int) -> None:
        for i in range(count):
            lo = buf.addr + i * SLOT_BYTES
            self.add(lo, lo + SLOT_BYTES, f"{key_prefix}{i}")


def normalize(reports, addr_map: _AddrMap) -> Tuple[frozenset, Tuple[str, ...]]:
    """Fold byte-range reports into (racy objects, off-surface noise)."""
    keys = set()
    noise = []
    for report in reports:
        for lo, hi in report.ranges.pairs():
            matched = False
            for mlo, mhi, key in addr_map.ranges:
                if lo < mhi and hi > mlo:
                    keys.add(key)
                    matched = True
            if not matched:
                noise.append(f"{lo:#x}+{hi - lo}")
    return frozenset(keys), tuple(sorted(set(noise)))


def run_taskgrind(program: FuzzProgram, *, schedule_seed: int,
                  options: Optional[TaskgrindOptions] = None) -> RunOutcome:
    """Execute ``program`` under Taskgrind with one scheduler seed."""
    options = options if options is not None else fuzz_options()
    try:
        if program.family == "feb":
            reports, addr_map = _run_qthreads(program, schedule_seed, options)
        else:
            reports, addr_map = _run_openmp(program, schedule_seed, options)
    except (SimDeadlock, GuestCrash, OutOfMemory) as exc:
        return RunOutcome(schedule_seed, crashed=type(exc).__name__)
    slots, noise = normalize(reports, addr_map)
    return RunOutcome(schedule_seed, slots=slots, noise=noise,
                      report_count=len(reports))


def run_taskgrind_two_phase(program: FuzzProgram, *, schedule_seed: int,
                            options: Optional[TaskgrindOptions] = None
                            ) -> Tuple[RunOutcome, str]:
    """The full two-phase pipeline: sync-record, then pinned replay.

    Phase one executes with ``record_mode="sync"`` (access recording off)
    while a :class:`~repro.replay.record.ScheduleRecorder` captures the
    schedule; the document is round-tripped through its serialized form to
    prove the on-disk format loses nothing.  Phase two re-executes with
    full instrumentation pinned to the recording and finalizes normally.

    Returns ``(outcome, divergence)`` — ``divergence`` is a non-empty
    description when the replay departed from the recording (the outcome
    is then marked crashed), and ``""`` when the schedule held.
    """
    import dataclasses

    from repro.errors import ReplayDivergenceError
    from repro.replay.record import ScheduleRecorder
    from repro.replay.replay import ReplaySession
    from repro.replay.schedule import ScheduleDoc

    base = options if options is not None else fuzz_options()
    exec_fn = _exec_qthreads if program.family == "feb" else _exec_openmp

    sync_opts = dataclasses.replace(base, record_mode="sync")
    machine, tool, _amap, entry = exec_fn(program, schedule_seed, sync_opts)
    recorder = ScheduleRecorder({
        "kind": "fuzz", "seed": schedule_seed,
        "nthreads": program.nthreads,
        "spec_digest": program.digest()})
    recorder.attach(machine, tool)
    try:
        machine.run(entry)
    except (SimDeadlock, GuestCrash, OutOfMemory) as exc:
        return (RunOutcome(schedule_seed,
                           crashed=f"sync:{type(exc).__name__}"), "")
    tool.finalize()
    doc = ScheduleDoc.from_dict(recorder.finish().to_dict())

    full_opts = dataclasses.replace(base, record_mode="full")
    machine2, tool2, addr_map, entry2 = exec_fn(program, schedule_seed,
                                                full_opts)
    session = ReplaySession(doc)
    session.attach(machine2, tool2)
    try:
        machine2.run(entry2)
        reports = tool2.finalize()
        session.verify_complete()
    except ReplayDivergenceError as exc:
        return (RunOutcome(schedule_seed, crashed="ReplayDivergenceError"),
                str(exc))
    except (SimDeadlock, GuestCrash, OutOfMemory) as exc:
        return (RunOutcome(schedule_seed,
                           crashed=f"replay:{type(exc).__name__}"), "")
    slots, noise = normalize(reports, addr_map)
    return (RunOutcome(schedule_seed, slots=slots, noise=noise,
                       report_count=len(reports)), "")


def fault_fuzz_options() -> TaskgrindOptions:
    """Fuzz options for fault campaigns: supervised parallel analysis with a
    short per-chunk deadline so planted hangs quarantine instead of
    stalling a nightly run."""
    opts = fuzz_options()
    opts.analysis = "parallel"
    opts.analysis_workers = 2
    opts.analysis_deadline_s = 0.1
    opts.analysis_max_retries = 1
    return opts


def run_taskgrind_salvaged(program: FuzzProgram, *, schedule_seed: int,
                           plan, options: Optional[TaskgrindOptions] = None
                           ) -> Tuple[RunOutcome, dict]:
    """The full resilient pipeline under an armed fault plan.

    Run (crashes salvage the recorded prefix) → trace save (tolerating
    planted truncation/corruption/writer death) → salvage load + supervised
    analysis.  ``outcome.slots`` is the union of everything either pass
    still reported; ``outcome.crashed`` is set ONLY when an exception
    *escapes* the pipeline — a planned crash that was salvaged is recorded
    in ``info["crashed_run"]`` and is not a failure.
    """
    import os
    import tempfile

    from repro.core.trace import analyze_trace_with_stats, save_trace
    from repro.errors import InjectedFault
    from repro.faults.inject import inject_plan

    options = options if options is not None else fault_fuzz_options()
    info = {"plan": plan.name, "crashed_run": "", "trace_written": False,
            "coverage_complete": None, "fired": {}}
    try:
        if program.family == "feb":
            machine, tool, addr_map, entry = _exec_qthreads(
                program, schedule_seed, options)
        else:
            machine, tool, addr_map, entry = _exec_openmp(
                program, schedule_seed, options)
        with inject_plan(plan):
            try:
                machine.run(entry)
            except (SimDeadlock, GuestCrash, OutOfMemory) as exc:
                info["crashed_run"] = type(exc).__name__
            reports = tool.finalize()
        slots, noise = normalize(reports, addr_map)
        slots, noise = set(slots), list(noise)
        info["fired"] = dict(plan.fired_summary())

        tmpdir = tempfile.mkdtemp(prefix="taskgrind-fuzz-faults-")
        trace_path = os.path.join(tmpdir, "salvage.trace.json")
        try:
            try:
                with inject_plan(plan):
                    save_trace(tool, machine, trace_path)
            except InjectedFault:
                pass        # the writer died; target must be untouched
            for name, count in plan.fired_summary().items():
                info["fired"][name] = info["fired"].get(name, 0) + count
            if os.path.exists(trace_path):
                info["trace_written"] = True
                offline, stats = analyze_trace_with_stats(
                    trace_path, mode="parallel", workers=2)
                info["coverage_complete"] = stats["coverage"]["complete"]
                oslots, onoise = normalize(offline, addr_map)
                slots |= set(oslots)
                noise.extend(onoise)
        finally:
            for name in os.listdir(tmpdir):
                os.unlink(os.path.join(tmpdir, name))
            os.rmdir(tmpdir)
    except Exception as exc:    # noqa: BLE001 - an escape IS the finding
        return (RunOutcome(schedule_seed, crashed=repr(exc)), info)
    return (RunOutcome(schedule_seed, slots=frozenset(slots),
                       noise=tuple(sorted(set(noise))),
                       report_count=len(reports)), info)


# ---------------------------------------------------------------------------
# OpenMP families
# ---------------------------------------------------------------------------

def _run_openmp(program: FuzzProgram, seed: int,
                options: TaskgrindOptions):
    machine, tool, addr_map, entry = _exec_openmp(program, seed, options)
    machine.run(entry)
    return tool.finalize(), addr_map


def _exec_openmp(program: FuzzProgram, seed: int,
                 options: TaskgrindOptions):
    """Build the run but don't start it: (machine, tool, addr_map, entry)."""
    from repro.openmp.api import make_env

    machine = Machine(seed=seed)
    tool = TaskgrindTool(options)
    machine.add_tool(tool)
    env = make_env(machine, nthreads=program.nthreads, source_file="fuzz.c")
    env.rt.ompt.register(tool.make_ompt_shim())
    ctx = env.ctx
    addr_map = _AddrMap()
    line_counter = [10]

    def next_line() -> int:
        line_counter[0] += 1
        return line_counter[0]

    def do_noise(op, k: int) -> None:
        # noise vars are private by construction (never escape their task),
        # so they carry the compiler's private=True assertion — the elision
        # pre-pass may compile their instrumentation away entirely
        kind = op[0]
        if kind == "tls":
            tls = ctx.tls_var(f"fuzz_tls{op[1]}", SLOT_BYTES,
                              elem=SLOT_BYTES, private=True)
            tls.write(0, line=next_line())
        elif kind == "stack":
            local = ctx.stack_var(f"fuzz_local{k}", SLOT_BYTES,
                                  elem=SLOT_BYTES, private=True)
            local.write(0, line=next_line())
            local.read(0)
        elif kind == "scratch":
            scratch = ctx.malloc(SCRATCH_BYTES, elem=SLOT_BYTES,
                                 name="scratch", line=next_line(),
                                 private=True)
            scratch.write(0)
            scratch.write(1)
            ctx.free(scratch)

    def run_ops(arena, body: list) -> None:
        for k, op in enumerate(body):
            kind = op[0]
            if kind == "r":
                arena.read(op[1], line=next_line())
            elif kind == "w":
                arena.write(op[1], line=next_line())
            elif kind == "task":
                ctx.line(next_line())
                env.task(lambda tv, b=op[1]: run_ops(arena, b),
                         name=f"fuzz_task_l{line_counter[0]}",
                         annotate_deferrable=True)
            elif kind == "wait":
                env.taskwait()
            elif kind == "group":
                env.taskgroup(lambda b=op[1]: run_ops(arena, b))
            else:
                do_noise(op, k)

    def main() -> None:
        with ctx.function("main", file="fuzz.c", line=1):
            arena = ctx.malloc(SLOT_BYTES * program.slots, elem=SLOT_BYTES,
                               name="arena")
            addr_map.add_buffer(arena, "s", program.slots)

            if program.family == "barrier":
                def region(tid: int) -> None:
                    rounds = program.body[tid]
                    for r_ops in rounds:
                        for k, op in enumerate(r_ops):
                            if op[0] == "r":
                                arena.read(op[1], line=next_line())
                            elif op[0] == "w":
                                arena.write(op[1], line=next_line())
                            else:
                                do_noise(op, k)
                        env.barrier()
                env.parallel(region, num_threads=program.nthreads)
                return

            if program.family == "deps":
                tokens = [ctx.malloc(SLOT_BYTES, name=f"tok{t}")
                          for t in range(_dep_token_count(program))]

                def create_all() -> None:
                    for idx, task in enumerate(program.body):
                        depend = {}
                        if task.get("out"):
                            depend["out"] = [tokens[t] for t in task["out"]]
                        if task.get("in"):
                            depend["in"] = [tokens[t] for t in task["in"]]
                        ctx.line(next_line())
                        env.task(lambda tv, b=task.get("ops", []):
                                 run_ops(arena, b),
                                 depend=depend or None,
                                 name=f"fuzz_dep{idx}",
                                 annotate_deferrable=True)
                    env.taskwait()
                env.parallel_single(create_all)
                return

            # sp / tasks: the root body runs in the single region
            env.parallel_single(lambda: run_ops(arena, program.body))

    return machine, tool, addr_map, main


def _dep_token_count(program: FuzzProgram) -> int:
    toks = [t for task in program.body
            for t in list(task.get("out", ())) + list(task.get("in", ()))]
    return max(toks) + 1 if toks else 0


# ---------------------------------------------------------------------------
# Qthreads (feb family)
# ---------------------------------------------------------------------------

def _run_qthreads(program: FuzzProgram, seed: int,
                  options: TaskgrindOptions):
    machine, tool, addr_map, entry = _exec_qthreads(program, seed, options)
    machine.run(entry)
    return tool.finalize(), addr_map


def _exec_qthreads(program: FuzzProgram, seed: int,
                   options: TaskgrindOptions):
    """Build the run but don't start it: (machine, tool, addr_map, entry)."""
    from repro.core.qthreads_shim import attach_qthreads
    from repro.fuzz.spec import feb_word_sites
    from repro.qthreads.runtime import make_qthreads_env

    machine = Machine(seed=seed)
    tool = TaskgrindTool(options)
    machine.add_tool(tool)
    # one shepherd cannot drain forked qtasks while main blocks on them
    nworkers = max(2, program.nthreads)
    env = make_qthreads_env(machine, nworkers=nworkers,
                            source_file="fuzz_qt.c")
    attach_qthreads(tool, env)
    ctx = env.ctx
    addr_map = _AddrMap()
    fills, _ = feb_word_sites(program.body)
    n_words = max(fills.keys(), default=-1) + 1

    def main() -> None:
        with ctx.function("main", file="fuzz_qt.c", line=1):
            arena = ctx.malloc(SLOT_BYTES * program.slots, elem=SLOT_BYTES,
                               name="arena")
            addr_map.add_buffer(arena, "s", program.slots)
            words = ctx.malloc(SLOT_BYTES * max(1, n_words),
                               elem=SLOT_BYTES, name="febwords")
            addr_map.add_buffer(words, "feb", n_words)

            def qtask_body(body: list) -> None:
                for k, op in enumerate(body):
                    kind = op[0]
                    if kind == "r":
                        arena.read(op[1])
                    elif kind == "w":
                        arena.write(op[1])
                    elif kind == "writeEF":
                        env.writeEF(words.index_addr(op[1]), op[1])
                    elif kind == "readFE":
                        env.readFE(words.index_addr(op[1]))
                    elif kind == "tls":
                        tls = ctx.tls_var(f"fuzz_tls{op[1]}", SLOT_BYTES,
                                          elem=SLOT_BYTES, private=True)
                        tls.write(0)
                    elif kind == "stack":
                        local = ctx.stack_var(f"fuzz_local{k}", SLOT_BYTES,
                                              elem=SLOT_BYTES, private=True)
                        local.write(0)
                        local.read(0)
                    elif kind == "scratch":
                        scratch = ctx.malloc(SCRATCH_BYTES, elem=SLOT_BYTES,
                                             name="scratch", private=True)
                        scratch.write(0)
                        scratch.write(1)
                        ctx.free(scratch)

            def qmain(qt_env) -> None:
                for task in program.body:
                    env.fork(qtask_body, task["ops"])

            env.run(qmain, env)

    return machine, tool, addr_map, main
