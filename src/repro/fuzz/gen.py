"""Seeded random program generator.

``generate(seed)`` is a pure function of its seed: it builds one
:class:`~repro.fuzz.spec.FuzzProgram` from a private ``random.Random(seed)``
stream, picks the family round-robin-ish from the seed itself, and keeps
sizes small (≤8 tasks, depth ≤3, ≤6 ops per body) — small programs shrink
well and still cover every synchronisation idiom.  The same seed always
yields a byte-identical ``to_json()`` — the contract the determinism tests
pin down.

``ensure_race=True/False`` post-filters against the structural ground truth
(:func:`repro.fuzz.truth.ground_truth`): when the freshly generated program
does not match, a deterministic *racy mutation* (append an unsynchronised
write of the same slot to two parallel branches) or a regenerate-with-
derived-seed loop fixes it up, still deterministically.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fuzz.spec import FAMILIES, FuzzProgram, validate
from repro.fuzz.truth import ground_truth

MAX_DEPTH = 3
MAX_TASKS = 8
MAX_BODY_OPS = 6
MAX_SLOTS = 6


def generate(seed: int, *, family: Optional[str] = None,
             ensure_race: Optional[bool] = None) -> FuzzProgram:
    """Deterministically generate one valid fuzz program from ``seed``."""
    for attempt in range(64):
        derived = seed + attempt * 0x9E3779B1
        rng = random.Random(derived)
        fam = family or FAMILIES[derived % len(FAMILIES)]
        program = _GENERATORS[fam](rng, seed)
        err = validate(program)
        if err is not None:  # pragma: no cover - generator invariant
            continue
        if ensure_race is None:
            return program
        racy = bool(ground_truth(program))
        if racy == ensure_race:
            return program
        if ensure_race and program.family in ("sp", "tasks"):
            mutated = _plant_race(program)
            if validate(mutated) is None and ground_truth(mutated):
                return mutated
    raise RuntimeError(
        f"seed {seed} could not produce ensure_race={ensure_race}")


def _plant_race(program: FuzzProgram) -> FuzzProgram:
    """Append an intended race: a deferred task writing slot 0 next to a
    same-slot write in the parent, with no wait between them."""
    p = program.clone()
    tail: List[list] = [["task", [["w", 0]]], ["w", 0]]
    if p.family == "sp":
        tail.append(["wait"])
    p.body.extend(tail)
    return p


# ---------------------------------------------------------------------------
# per-family generators
# ---------------------------------------------------------------------------

def _noise_op(rng: random.Random) -> list:
    kind = rng.choice(("tls", "stack", "scratch"))
    if kind == "tls":
        return ["tls", rng.randrange(2)]
    return [kind]


def _access_op(rng: random.Random, slots: int) -> list:
    return [rng.choice(("r", "w")), rng.randrange(slots)]


def _gen_tree_body(rng: random.Random, slots: int, depth: int,
                   tasks_left: List[int], *, strict_sp: bool,
                   allow_group: bool) -> list:
    body: List[list] = []
    n_ops = rng.randint(1, MAX_BODY_OPS)
    spawned = False
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.45:
            body.append(_access_op(rng, slots))
        elif roll < 0.60:
            body.append(_noise_op(rng))
        elif roll < 0.85 and depth < MAX_DEPTH and tasks_left[0] > 0:
            tasks_left[0] -= 1
            child = _gen_tree_body(rng, slots, depth + 1, tasks_left,
                                   strict_sp=strict_sp,
                                   allow_group=allow_group)
            body.append(["task", child])
            spawned = True
        elif allow_group and depth < MAX_DEPTH and tasks_left[0] > 0 \
                and rng.random() < 0.5:
            tasks_left[0] -= 1
            inner = [["task", _gen_tree_body(rng, slots, depth + 1,
                                             tasks_left, strict_sp=False,
                                             allow_group=False)],
                     _access_op(rng, slots)]
            body.append(["group", inner])
        elif spawned and not strict_sp:
            body.append(["wait"])
        else:
            body.append(_access_op(rng, slots))
    if strict_sp and any(op[0] == "task" for op in body):
        if not body or body[-1][0] != "wait":
            body.append(["wait"])
    return body


def _gen_sp(rng: random.Random, seed: int) -> FuzzProgram:
    slots = rng.randint(2, MAX_SLOTS)
    tasks_left = [rng.randint(2, MAX_TASKS)]
    body = _gen_tree_body(rng, slots, 0, tasks_left, strict_sp=True,
                          allow_group=False)
    return FuzzProgram(family="sp", seed=seed,
                       nthreads=rng.choice((2, 4)), slots=slots, body=body)


def _gen_tasks(rng: random.Random, seed: int) -> FuzzProgram:
    slots = rng.randint(2, MAX_SLOTS)
    tasks_left = [rng.randint(2, MAX_TASKS)]
    body = _gen_tree_body(rng, slots, 0, tasks_left, strict_sp=False,
                          allow_group=True)
    return FuzzProgram(family="tasks", seed=seed,
                       nthreads=rng.choice((2, 4)), slots=slots, body=body)


def _gen_deps(rng: random.Random, seed: int) -> FuzzProgram:
    slots = rng.randint(2, MAX_SLOTS)
    n_tasks = rng.randint(2, MAX_TASKS)
    n_tokens = rng.randint(1, 3)
    tasks = []
    for _ in range(n_tasks):
        ops = [_access_op(rng, slots) if rng.random() < 0.75
               else _noise_op(rng)
               for _ in range(rng.randint(1, 4))]
        ins = sorted(set(rng.randrange(n_tokens)
                         for _ in range(rng.randint(0, 2))))
        outs = sorted(set(rng.randrange(n_tokens)
                          for _ in range(rng.randint(0, 1))) - set(ins))
        tasks.append({"ops": ops, "in": ins, "out": outs})
    return FuzzProgram(family="deps", seed=seed,
                       nthreads=rng.choice((2, 4)), slots=slots, body=tasks)


def _gen_feb(rng: random.Random, seed: int) -> FuzzProgram:
    slots = rng.randint(2, MAX_SLOTS)
    n_tasks = rng.randint(2, min(6, MAX_TASKS))
    tasks = [{"ops": [_access_op(rng, slots) if rng.random() < 0.8
                      else _noise_op(rng)
                      for _ in range(rng.randint(1, 4))]}
             for _ in range(n_tasks)]
    # wire single-producer/single-consumer transfers, fill strictly before
    # consume in (task, op) order so the FIFO execution cannot deadlock
    for word in range(rng.randint(0, n_tasks - 1)):
        src = rng.randrange(n_tasks - 1)
        dst = rng.randrange(src + 1, n_tasks)
        tasks[src]["ops"].append(["writeEF", word])
        tasks[dst]["ops"].insert(0, ["readFE", word])
    return FuzzProgram(family="feb", seed=seed,
                       nthreads=rng.choice((2, 4)), slots=slots, body=tasks)


def _gen_barrier(rng: random.Random, seed: int) -> FuzzProgram:
    slots = rng.randint(2, MAX_SLOTS)
    nthreads = rng.choice((2, 4))
    n_rounds = rng.randint(1, 3)
    body = []
    for _ in range(nthreads):
        rounds = []
        for _ in range(n_rounds):
            rounds.append([_access_op(rng, slots) if rng.random() < 0.8
                           else _noise_op(rng)
                           for _ in range(rng.randint(1, 3))])
        body.append(rounds)
    return FuzzProgram(family="barrier", seed=seed, nthreads=nthreads,
                       slots=slots, body=body)


_GENERATORS = {
    "sp": _gen_sp,
    "tasks": _gen_tasks,
    "deps": _gen_deps,
    "feb": _gen_feb,
    "barrier": _gen_barrier,
}
