"""Ground truth for fuzz programs: an explicit event graph + reachability.

This is the *generator-side* oracle: it derives the intended races of a
:class:`repro.fuzz.spec.FuzzProgram` directly from the spec's structural
happens-before rules, using an implementation that shares nothing with
``repro.core`` (no segments, no interval trees, no order-maintenance index)
*or* with the vector-clock oracle in :mod:`repro.fuzz.oracles` — three
independent derivations of the same relation is what makes the differential
harness meaningful.

Construction: every access op becomes an event node; edges encode the
family's sequencing rules (program order, spawn, taskwait/taskgroup joins,
dependences, FEB transfers, team barriers).  Reachability is a bitset DP
over a topological order; a shared-arena slot is *racy* iff it carries two
unordered events of which at least one is a write.

Only shared-arena accesses are events.  ``tls``/``stack``/``scratch`` noise
ops and the FEB words themselves are excluded by construction — they must
never be reported by any detector, which the differential oracle checks
separately (the ``suppression`` divergence class).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from repro.fuzz.spec import FuzzProgram, dep_predecessors


@dataclass
class _EventGraph:
    """Events + edges, built in (a) topological construction order."""

    edges: List[Tuple[int, int]] = field(default_factory=list)
    #: node -> (slot, is_write) for access events only
    accesses: Dict[int, Tuple[int, bool]] = field(default_factory=dict)
    n: int = 0

    def node(self) -> int:
        self.n += 1
        return self.n - 1

    def access(self, after: int, slot: int, is_write: bool) -> int:
        node = self.node()
        self.edge(after, node)
        self.accesses[node] = (slot, is_write)
        return node

    def edge(self, a: int, b: int) -> None:
        self.edges.append((a, b))

    # -- reachability -------------------------------------------------------

    def racy_slots(self) -> FrozenSet[str]:
        succs: List[List[int]] = [[] for _ in range(self.n)]
        indeg = [0] * self.n
        for a, b in self.edges:
            succs[a].append(b)
            indeg[b] += 1
        # Kahn topo order (construction order is already topological, but
        # recompute rather than rely on it)
        order: List[int] = [v for v in range(self.n) if indeg[v] == 0]
        for v in order:
            for s in succs[v]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    order.append(s)
        assert len(order) == self.n, "event graph has a cycle"
        reach = [0] * self.n
        for v in reversed(order):
            mask = 1 << v
            for s in succs[v]:
                mask |= reach[s]
            reach[v] = mask
        racy = set()
        per_slot: Dict[int, List[Tuple[int, bool]]] = {}
        for node, (slot, is_write) in self.accesses.items():
            per_slot.setdefault(slot, []).append((node, is_write))
        for slot, events in per_slot.items():
            if f"s{slot}" in racy:
                continue
            for i in range(len(events)):
                a, aw = events[i]
                for j in range(i + 1, len(events)):
                    b, bw = events[j]
                    if not (aw or bw):
                        continue
                    if reach[a] >> b & 1 or reach[b] >> a & 1:
                        continue
                    racy.add(f"s{slot}")
                    break
                else:
                    continue
                break
        return frozenset(racy)


def _walk_task_tree(g: _EventGraph, body: list, entry: int,
                    open_groups: List[List[int]]) -> int:
    """Interpret one task body; returns the task's exit node.

    ``open_groups`` collects every task (by exit node) created during an
    enclosing taskgroup's dynamic extent, including nested descendants —
    the OpenMP taskgroup joins all of them.
    """
    cur = entry
    children_exits: List[int] = []
    for op in body:
        kind = op[0]
        if kind in ("r", "w"):
            cur = g.access(cur, op[1], kind == "w")
        elif kind == "task":
            child_entry = g.node()
            g.edge(cur, child_entry)
            child_exit = _walk_task_tree(g, op[1], child_entry, open_groups)
            children_exits.append(child_exit)
            for grp in open_groups:
                grp.append(child_exit)
        elif kind == "wait":
            node = g.node()
            g.edge(cur, node)
            for ce in children_exits:
                g.edge(ce, node)
            cur = node
        elif kind == "group":
            members: List[int] = []
            open_groups.append(members)
            # the group body runs in the encountering task (cur advances);
            # tasks created inside land in ``members``
            saved_children = children_exits
            cur = _walk_group_body(g, op[1], cur, open_groups,
                                   saved_children)
            open_groups.pop()
            node = g.node()
            g.edge(cur, node)
            for me in members:
                g.edge(me, node)
            cur = node
        # tls/stack/scratch: noise, no event
    exit_node = g.node()
    g.edge(cur, exit_node)
    return exit_node


def _walk_group_body(g: _EventGraph, body: list, cur: int,
                     open_groups: List[List[int]],
                     children_exits: List[int]) -> int:
    """Taskgroup region ops run in the encountering task's own thread of
    control; children created here are also the encountering task's direct
    children (a later taskwait joins them too)."""
    for op in body:
        kind = op[0]
        if kind in ("r", "w"):
            cur = g.access(cur, op[1], kind == "w")
        elif kind == "task":
            child_entry = g.node()
            g.edge(cur, child_entry)
            child_exit = _walk_task_tree(g, op[1], child_entry, open_groups)
            children_exits.append(child_exit)
            for grp in open_groups:
                grp.append(child_exit)
        elif kind == "wait":
            node = g.node()
            g.edge(cur, node)
            for ce in children_exits:
                g.edge(ce, node)
            cur = node
        elif kind == "group":
            members: List[int] = []
            open_groups.append(members)
            cur = _walk_group_body(g, op[1], cur, open_groups,
                                   children_exits)
            open_groups.pop()
            node = g.node()
            g.edge(cur, node)
            for me in members:
                g.edge(me, node)
            cur = node
    return cur


def _build_task_tree(program: FuzzProgram) -> _EventGraph:
    g = _EventGraph()
    root_entry = g.node()
    _walk_task_tree(g, program.body, root_entry, [])
    return g


def _build_deps(program: FuzzProgram) -> _EventGraph:
    g = _EventGraph()
    preds = dep_predecessors(program.body)
    create = g.node()                      # the creating task's program order
    entries: List[int] = []
    exits: List[int] = []
    for i, task in enumerate(program.body):
        nxt = g.node()
        g.edge(create, nxt)
        create = nxt
        entry = g.node()
        g.edge(create, entry)
        cur = entry
        for op in task.get("ops", ()):
            if op[0] in ("r", "w"):
                cur = g.access(cur, op[1], op[0] == "w")
        exit_node = g.node()
        g.edge(cur, exit_node)
        entries.append(entry)
        exits.append(exit_node)
        for p in preds[i]:
            g.edge(exits[p], entry)
    return g


def _build_feb(program: FuzzProgram) -> _EventGraph:
    g = _EventGraph()
    fork = g.node()
    entries: List[int] = []
    for _ in program.body:
        nxt = g.node()
        g.edge(fork, nxt)
        fork = nxt
        entry = g.node()
        g.edge(fork, entry)
        entries.append(entry)
    fill_nodes: Dict[int, int] = {}
    # walk qtask bodies in fork order: validity guarantees every consume's
    # fill node exists by the time the consume is reached
    pending_consumes: Dict[int, int] = {}
    for ti, task in enumerate(program.body):
        cur = entries[ti]
        for op in task["ops"]:
            kind = op[0]
            if kind in ("r", "w"):
                cur = g.access(cur, op[1], kind == "w")
            elif kind == "writeEF":
                node = g.node()
                g.edge(cur, node)
                cur = node
                fill_nodes[op[1]] = node
            elif kind == "readFE":
                node = g.node()
                g.edge(cur, node)
                cur = node
                pending_consumes[op[1]] = node
    for w, consume_node in pending_consumes.items():
        g.edge(fill_nodes[w], consume_node)
    return g


def _build_barrier(program: FuzzProgram) -> _EventGraph:
    g = _EventGraph()
    n_rounds = len(program.body[0]) if program.body else 0
    cursors = [g.node() for _ in program.body]
    start = g.node()
    for c in cursors:
        g.edge(start, c)
    for r in range(n_rounds):
        for t, thread in enumerate(program.body):
            cur = cursors[t]
            for op in thread[r]:
                if op[0] in ("r", "w"):
                    cur = g.access(cur, op[1], op[0] == "w")
            cursors[t] = cur
        bar = g.node()
        for t in range(len(program.body)):
            g.edge(cursors[t], bar)
        for t in range(len(program.body)):
            nxt = g.node()
            g.edge(bar, nxt)
            cursors[t] = nxt
    return g


_BUILDERS = {
    "sp": _build_task_tree,
    "tasks": _build_task_tree,
    "deps": _build_deps,
    "feb": _build_feb,
    "barrier": _build_barrier,
}


def ground_truth(program: FuzzProgram) -> FrozenSet[str]:
    """The program's intended racy shared slots (``{"s3", ...}``)."""
    return _BUILDERS[program.family](program).racy_slots()
