"""``python -m repro.fuzz`` — drive the differential fuzz campaign.

Exit status 0 when every program agrees across all oracles and schedules;
1 when any divergence survived (after shrinking); 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.fuzz.diff import (DiffResult, run_differential,
                             run_fault_differential,
                             run_two_phase_differential)
from repro.fuzz.executors import fuzz_options
from repro.fuzz.gen import generate
from repro.fuzz.shrink import load_reproducer, shrink, write_reproducer
from repro.fuzz.spec import FAMILIES
from repro.obs.metrics import get_registry

DEFAULT_CORPUS = "tests/fuzz/corpus"

#: suppression classes the CLI can intentionally break (the harness
#: self-test: each must make the oracle diverge, not stay silent)
BREAKABLE = {
    "recycling": {"suppress_recycling": False},
    "stack": {"suppress_stack": False},
    "tls": {"suppress_tls": False},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential schedule-fuzzing of Taskgrind vs the "
                    "baseline detectors")
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of generator seeds (default 25)")
    parser.add_argument("--schedules", type=int, default=4,
                        help="scheduler seeds per program (default 4)")
    parser.add_argument("--budget", type=float, default=0,
                        help="wall-clock budget in seconds; 0 = run all "
                             "seeds (the seed count is the budget)")
    parser.add_argument("--base-seed", type=int, default=1,
                        help="first generator seed (default 1)")
    parser.add_argument("--families", default=",".join(FAMILIES),
                        help="comma list of families to draw from")
    parser.add_argument("--corpus-dir", default=DEFAULT_CORPUS,
                        help="where minimized reproducers are written")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write a machine-readable campaign report here")
    parser.add_argument("--profile", metavar="OUT.json", default=None,
                        help="enable the attribution profiler for the whole "
                             "campaign and write one aggregated "
                             "taskgrind-profile/1 document")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report divergences without minimizing them")
    parser.add_argument("--analysis-kernel", default="auto",
                        choices=["auto", "numpy", "python"],
                        help="conflict kernel for Taskgrind's pair sweep "
                             "(the baselines always use the python oracle, "
                             "so 'numpy' differentially tests the kernel)")
    parser.add_argument("--break-suppression", choices=sorted(BREAKABLE),
                        default=None,
                        help="intentionally disable one suppression class "
                             "(harness self-test: must produce divergences)")
    parser.add_argument("--faults", action="store_true",
                        help="fault-injection campaign: drive each program "
                             "through the resilient pipeline under every "
                             "builtin fault plan and assert the salvaged "
                             "report set is a subset of the fault-free "
                             "run's (no shrinking in this mode)")
    parser.add_argument("--two-phase", action="store_true",
                        help="two-phase campaign: for each schedule seed, "
                             "record sync-only, round-trip the schedule "
                             "document, replay with full instrumentation, "
                             "and assert the replayed verdict equals the "
                             "single-pass verdict (no shrinking)")
    parser.add_argument("--reproducer", default=None, metavar="FILE",
                        help="run one corpus reproducer instead of "
                             "generating seeds (combines with --two-phase "
                             "to replay-check a pinned program)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.faults and args.two_phase:
        print("--faults and --two-phase are separate campaigns; pick one",
              file=sys.stderr)
        return 2
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    unknown = [f for f in families if f not in FAMILIES]
    if unknown:
        print(f"unknown families: {unknown} (choose from {FAMILIES})",
              file=sys.stderr)
        return 2

    overrides = dict(BREAKABLE[args.break_suppression]) \
        if args.break_suppression else {}
    if args.analysis_kernel != "auto":
        overrides["analysis_kernel"] = args.analysis_kernel

    pinned = None
    if args.reproducer is not None:
        try:
            pinned, _expect, repro_options, note = \
                load_reproducer(args.reproducer)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load reproducer: {exc}", file=sys.stderr)
            return 2
        overrides.update(repro_options)
        print(f"reproducer {args.reproducer}: {pinned.family} "
              f"seed={pinned.seed} ({note or 'no note'})")
    options = fuzz_options(**overrides)
    registry = get_registry()
    prof = None
    reg_baseline = None
    if args.profile is not None:
        from repro.obs.prof import get_profiler
        prof = get_profiler()
        prof.enable()
        campaign_mode = ("fault" if args.faults
                         else "two-phase" if args.two_phase else "fuzz")
        prof.meta.update({"campaign": campaign_mode,
                          "seeds": args.seeds,
                          "schedules": args.schedules,
                          "base_seed": args.base_seed})
        reg_baseline = registry.mark()
    deadline = time.monotonic() + args.budget if args.budget > 0 else None

    divergent: List[DiffResult] = []
    schema = ("taskgrind-fault-campaign/1" if args.faults
              else "taskgrind-two-phase-campaign/1" if args.two_phase
              else "taskgrind-fuzz-campaign/1")
    report = {"schema": schema,
              "seeds": [], "divergent": [], "config": {
                  "schedules": args.schedules, "families": families,
                  "base_seed": args.base_seed,
                  "analysis_kernel": args.analysis_kernel,
                  "break_suppression": args.break_suppression,
                  "faults": args.faults, "two_phase": args.two_phase,
                  "reproducer": args.reproducer}}
    ran = 0
    stopped_early = False
    total = 1 if pinned is not None else args.seeds
    with registry.phase("fuzz.campaign"):
        for i in range(total):
            if deadline is not None and time.monotonic() > deadline:
                stopped_early = True
                break
            if pinned is not None:
                seed, program = pinned.seed, pinned
            else:
                seed = args.base_seed + i
                family = families[seed % len(families)]
                program = generate(seed, family=family)
            if args.faults:
                result = run_fault_differential(program,
                                                schedules=args.schedules)
            elif args.two_phase:
                result = run_two_phase_differential(
                    program, schedules=args.schedules,
                    taskgrind_options=options)
            else:
                result = run_differential(program, schedules=args.schedules,
                                          taskgrind_options=options)
            ran += 1
            report["seeds"].append({
                "seed": seed, "family": program.family,
                "digest": program.digest(),
                "truth": sorted(result.truth), "kinds": result.kinds()})
            if result.ok:
                continue
            divergent.append(result)
            print(f"DIVERGENCE {result.summary()}")
            for d in result.divergences:
                print(f"  {d}")
            entry = {"seed": seed, "family": program.family,
                     "kinds": result.kinds(),
                     "divergences": [str(d) for d in result.divergences],
                     "program": json.loads(program.to_json())}
            if not args.no_shrink and not args.faults \
                    and not args.two_phase and pinned is None:
                kinds = set(result.kinds())

                def still_fails(candidate) -> bool:
                    r = run_differential(candidate,
                                         schedules=args.schedules,
                                         taskgrind_options=options)
                    # any surviving original divergence kind keeps the
                    # candidate (incidental kinds may drop during shrinking)
                    return bool(kinds & set(r.kinds()))

                with registry.phase("fuzz.shrink"):
                    small, spent = shrink(program, still_fails)
                final = run_differential(small, schedules=args.schedules,
                                         taskgrind_options=options)
                path = write_reproducer(
                    small, args.corpus_dir, kinds=final.kinds(),
                    options=overrides,
                    note=f"shrunk from seed {seed} in {spent} candidates"
                         + (f" (break={args.break_suppression})"
                            if args.break_suppression else ""))
                print(f"  shrunk {program.op_count()} -> "
                      f"{small.op_count()} ops; reproducer: {path}")
                entry["reproducer"] = path
                entry["shrunk_program"] = json.loads(small.to_json())
            report["divergent"].append(entry)

    if prof is not None:
        from repro.obs.profdoc import save_profile
        phases = registry.delta_since(reg_baseline).get("phases")
        save_profile(args.profile, prof, phases=phases)
        prof.disable()
        print(f"wrote campaign profile to {args.profile} "
              f"({len(prof)} buckets)")

    status = "FAIL" if divergent else "ok"
    if stopped_early:
        print(f"budget exhausted after {ran}/{total} seeds")
    mode = ("fault" if args.faults else "two-phase" if args.two_phase
            else "fuzz")
    print(f"{mode} campaign: {ran} programs x {args.schedules} schedules, "
          f"{len(divergent)} divergent -> {status}")
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.json_out}")
    return 1 if divergent else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
