"""The differential oracle: Taskgrind × schedules × baseline detectors.

For one program the oracle computes four verdicts:

* ``truth`` — the structural event-graph ground truth (what the generator
  intended);
* ``vclock`` — the task-centric FastTrack interpretation over the
  ``repro.baselines`` vector-clock machinery;
* ``spbags`` — the real SP-bags run over the serial-elision Cilk rendering
  (``sp`` family only, binary verdict);
* one Taskgrind :class:`~repro.fuzz.executors.RunOutcome` per schedule seed.

and flags every way they can disagree:

==========================  ================================================
kind                        meaning
==========================  ================================================
``missed-race``             truth says racy slots Taskgrind never reported
``spurious-race``           Taskgrind reported slots truth says are ordered
``schedule-nondeterminism``  Taskgrind's verdict differs across seeds
``suppression``             Taskgrind reported ranges off the shared
                            surface (TLS / stack / recycled heap noise)
``vclock-disagreement``     vector-clock oracle ≠ ground truth (oracle bug
                            or spec-semantics bug — both are findings)
``spbags-disagreement``     SP-bags binary verdict ≠ ground truth
``crash``                   an execution raised (deadlock, guest crash)
==========================  ================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.tool import TaskgrindOptions
from repro.fuzz.executors import RunOutcome, fuzz_options, run_taskgrind
from repro.fuzz.oracles import spbags_verdict, vclock_slots
from repro.fuzz.spec import FuzzProgram
from repro.fuzz.truth import ground_truth
from repro.obs.metrics import get_registry

DIVERGENCE_KINDS = (
    "missed-race", "spurious-race", "schedule-nondeterminism",
    "suppression", "vclock-disagreement", "spbags-disagreement", "crash",
    "replay-divergence", "two-phase-mismatch",
)


@dataclass
class Divergence:
    kind: str
    detail: str
    schedule_seed: Optional[int] = None

    def __str__(self) -> str:
        where = f" @schedule={self.schedule_seed}" \
            if self.schedule_seed is not None else ""
        return f"[{self.kind}]{where} {self.detail}"


@dataclass
class DiffResult:
    """All verdicts + divergences for one program."""

    program: FuzzProgram
    truth: frozenset = frozenset()
    vclock: frozenset = frozenset()
    spbags: Optional[bool] = None          # None when not applicable
    outcomes: List[RunOutcome] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def kinds(self) -> List[str]:
        return sorted({d.kind for d in self.divergences})

    def summary(self) -> str:
        status = "ok" if self.ok else ",".join(self.kinds())
        return (f"{self.program.family} seed={self.program.seed} "
                f"digest={self.program.digest()} truth={sorted(self.truth)} "
                f"-> {status}")


def run_differential(program: FuzzProgram, *, schedules: int = 4,
                     taskgrind_options: Optional[TaskgrindOptions] = None,
                     ) -> DiffResult:
    """Run the full differential check on one program."""
    registry = get_registry()
    result = DiffResult(program=program)
    div = result.divergences.append
    registry.counter("fuzz.programs").inc()

    with registry.phase("fuzz.oracles"):
        result.truth = ground_truth(program)
        try:
            result.vclock = vclock_slots(program)
        except Exception as exc:  # oracle crash is a finding, not an abort
            div(Divergence("crash", f"vclock oracle raised {exc!r}"))
            result.vclock = result.truth
        if result.vclock != result.truth:
            div(Divergence(
                "vclock-disagreement",
                f"vclock={sorted(result.vclock)} truth={sorted(result.truth)}"))
        if program.family == "sp":
            try:
                result.spbags = spbags_verdict(program)
            except Exception as exc:
                div(Divergence("crash", f"spbags oracle raised {exc!r}"))
            if result.spbags is not None and \
                    result.spbags != bool(result.truth):
                div(Divergence(
                    "spbags-disagreement",
                    f"spbags={result.spbags} truth={sorted(result.truth)}"))

    with registry.phase("fuzz.taskgrind"):
        for k in range(schedules):
            schedule_seed = program.seed * 1000 + k
            outcome = run_taskgrind(
                program, schedule_seed=schedule_seed,
                options=taskgrind_options if taskgrind_options is not None
                else fuzz_options())
            result.outcomes.append(outcome)
            registry.counter("fuzz.schedule_runs").inc()

    for outcome in result.outcomes:
        if outcome.crashed:
            div(Divergence("crash", f"execution raised {outcome.crashed}",
                           outcome.schedule_seed))
    clean = [o for o in result.outcomes if o.ok]
    if clean:
        signatures = {o.signature() for o in clean}
        if len(signatures) > 1:
            div(Divergence(
                "schedule-nondeterminism",
                "verdicts differ across schedule seeds: " + "; ".join(
                    f"seed={o.schedule_seed}:{sorted(o.slots)}"
                    for o in clean)))
        # judge report content against truth on every clean schedule —
        # Taskgrind's claim is schedule-independence of the verdict
        for outcome in clean:
            missed = result.truth - outcome.slots
            spurious = outcome.slots - result.truth
            # feb words are legitimate sync objects, not arena slots; a
            # report on one is spurious only if truth has no race there
            spurious = frozenset(s for s in spurious
                                 if not s.startswith("feb"))
            if missed:
                div(Divergence("missed-race",
                               f"never reported {sorted(missed)}",
                               outcome.schedule_seed))
            if spurious:
                div(Divergence("spurious-race",
                               f"reported ordered slots {sorted(spurious)}",
                               outcome.schedule_seed))
            if outcome.noise:
                div(Divergence(
                    "suppression",
                    "reported off-surface ranges "
                    f"{list(outcome.noise)[:4]}", outcome.schedule_seed))

    _dedup(result)
    if not result.ok:
        registry.counter("fuzz.divergences").inc()
        for kind in result.kinds():
            registry.counter(f"fuzz.divergence.{kind}").inc()
    return result


def run_two_phase_differential(program: FuzzProgram, *, schedules: int = 4,
                               taskgrind_options: Optional[TaskgrindOptions]
                               = None) -> DiffResult:
    """Two-phase oracle: record-then-replay must equal single-pass.

    For each schedule seed the program runs twice through Taskgrind — the
    classic single-pass full recording, and the two-phase pipeline
    (sync-only record → schedule document round-trip → pinned replay with
    full instrumentation).  Divergence kinds on top of the base taxonomy:

    * ``replay-divergence`` — the pinned re-execution departed from the
      recorded schedule (determinism broke);
    * ``two-phase-mismatch`` — the replayed verdict differs from the
      single-pass verdict for the *same* seed (the two pipelines saw the
      same interleaving, so any report delta is a soundness bug).

    The replayed outcomes are also judged against ground truth, keeping
    the missed/spurious backstop on the two-phase path itself.
    """
    from repro.fuzz.executors import run_taskgrind_two_phase
    registry = get_registry()
    result = DiffResult(program=program)
    div = result.divergences.append
    options = taskgrind_options if taskgrind_options is not None \
        else fuzz_options()
    registry.counter("fuzz.two_phase_programs").inc()

    with registry.phase("fuzz.two_phase"):
        result.truth = ground_truth(program)
        for k in range(schedules):
            schedule_seed = program.seed * 1000 + k
            single = run_taskgrind(program, schedule_seed=schedule_seed,
                                   options=options)
            two, divergence = run_taskgrind_two_phase(
                program, schedule_seed=schedule_seed, options=options)
            result.outcomes.append(two)
            registry.counter("fuzz.schedule_runs").inc(2)
            if two.crashed == "ReplayDivergenceError":
                div(Divergence("replay-divergence", divergence,
                               schedule_seed))
                continue
            if single.crashed or two.crashed:
                # both pipelines must crash identically or not at all —
                # e.g. a sync-pass deadlock must reproduce single-pass
                if single.crashed != two.crashed.split(":")[-1]:
                    div(Divergence(
                        "two-phase-mismatch",
                        f"single-pass crashed={single.crashed!r} but "
                        f"two-phase crashed={two.crashed!r}",
                        schedule_seed))
                continue
            if single.slots != two.slots or single.noise != two.noise \
                    or single.report_count != two.report_count:
                div(Divergence(
                    "two-phase-mismatch",
                    f"single-pass {sorted(single.slots)} "
                    f"({single.report_count} reports, noise "
                    f"{list(single.noise)[:3]}) vs replayed "
                    f"{sorted(two.slots)} ({two.report_count} reports, "
                    f"noise {list(two.noise)[:3]})", schedule_seed))
            missed = result.truth - two.slots
            spurious = frozenset(s for s in two.slots - result.truth
                                 if not s.startswith("feb"))
            if missed:
                div(Divergence("missed-race",
                               f"two-phase never reported {sorted(missed)}",
                               schedule_seed))
            if spurious:
                div(Divergence("spurious-race",
                               f"two-phase reported ordered slots "
                               f"{sorted(spurious)}", schedule_seed))

    _dedup(result)
    if not result.ok:
        registry.counter("fuzz.divergences").inc()
        for kind in result.kinds():
            registry.counter(f"fuzz.divergence.{kind}").inc()
    return result


def run_fault_differential(program: FuzzProgram, *, schedules: int = 2,
                           plans=None,
                           taskgrind_options: Optional[TaskgrindOptions]
                           = None) -> DiffResult:
    """Fault-campaign oracle: salvage must never *invent* evidence.

    For each schedule seed, one fault-free run fixes the full report set;
    then each fault plan drives the resilient pipeline (salvaged run →
    damaged trace → salvage load → supervised analysis) and two invariants
    are checked, reusing the differential divergence taxonomy:

    * ``crash`` — an exception escaped the resilient pipeline (the whole
      point of the resilience layer is that nothing does);
    * ``spurious-race`` — the salvaged report set is not a subset of the
      fault-free run's (degradation may lose races, never add them).

    Whether each plan actually fired is recorded per outcome in the
    campaign report; trigger indices are program-shape-dependent, so a
    non-firing point is campaign telemetry, not a divergence.
    """
    from repro.faults.plan import builtin_matrix
    from repro.fuzz.executors import fault_fuzz_options, run_taskgrind_salvaged
    registry = get_registry()
    result = DiffResult(program=program)
    div = result.divergences.append
    plans = plans if plans is not None else builtin_matrix()
    options = taskgrind_options if taskgrind_options is not None \
        else fault_fuzz_options()
    registry.counter("fuzz.fault_programs").inc()

    with registry.phase("fuzz.faults"):
        result.truth = ground_truth(program)
        for k in range(schedules):
            schedule_seed = program.seed * 1000 + k
            full = run_taskgrind(program, schedule_seed=schedule_seed,
                                 options=options)
            result.outcomes.append(full)
            registry.counter("fuzz.schedule_runs").inc()
            if full.crashed:
                div(Divergence("crash",
                               f"fault-free run raised {full.crashed}",
                               schedule_seed))
                continue
            for plan in plans:
                outcome, info = run_taskgrind_salvaged(
                    program, schedule_seed=schedule_seed, plan=plan,
                    options=options)
                registry.counter("fuzz.fault_runs").inc()
                if outcome.crashed:
                    div(Divergence(
                        "crash",
                        f"[{plan.name}] escaped the resilient pipeline: "
                        f"{outcome.crashed}", schedule_seed))
                    continue
                extra = outcome.slots - full.slots
                if extra:
                    div(Divergence(
                        "spurious-race",
                        f"[{plan.name}] salvage invented {sorted(extra)} "
                        f"(full run reported {sorted(full.slots)})",
                        schedule_seed))

    _dedup(result)
    if not result.ok:
        registry.counter("fuzz.divergences").inc()
        for kind in result.kinds():
            registry.counter(f"fuzz.divergence.{kind}").inc()
    return result


def _dedup(result: DiffResult) -> None:
    """Collapse per-schedule repeats of the same (kind, detail)."""
    seen = set()
    unique: List[Divergence] = []
    for d in result.divergences:
        key = (d.kind, d.detail)
        if key in seen:
            continue
        seen.add(key)
        unique.append(d)
    result.divergences[:] = unique
