"""Delta-debugging shrinker: minimize a divergent program.

Classic greedy ddmin specialised to the program families: propose
structure-preserving reductions (delete an op, inline a task's body at its
spawn point, drop a dependence token, remove a FEB transfer pair, drop a
barrier round or a whole thread), keep a candidate iff it still *validates*
and still *diverges with the same kind set*, and iterate to a fixpoint.
Every candidate costs a full differential run, so the search is budgeted by
candidate count, not wall clock.

Minimized reproducers serialize into ``tests/fuzz/corpus/`` as
``taskgrind-fuzz-repro/1`` documents; ``tests/fuzz/test_corpus.py`` replays
them forever after.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Iterator, List, Optional, Tuple

from repro.fuzz.spec import FuzzProgram, validate

REPRO_SCHEMA = "taskgrind-fuzz-repro/1"

#: max differential runs one shrink is allowed to spend
DEFAULT_CANDIDATE_BUDGET = 200


def shrink(program: FuzzProgram,
           still_fails: Callable[[FuzzProgram], bool], *,
           budget: int = DEFAULT_CANDIDATE_BUDGET,
           ) -> Tuple[FuzzProgram, int]:
    """Greedy ddmin; returns (minimized program, candidates spent).

    ``still_fails(candidate)`` must re-run the oracle and answer whether the
    candidate reproduces the original failure.  The input program is assumed
    failing; the result is 1-minimal w.r.t. the reduction operators (or the
    best found when the budget runs out).
    """
    current = program.clone()
    spent = 0
    progress = True
    while progress and spent < budget:
        progress = False
        for candidate in _reductions(current):
            if spent >= budget:
                break
            if validate(candidate) is not None:
                continue
            spent += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break   # restart the operator scan from the smaller program
    return current, spent


# ---------------------------------------------------------------------------
# reduction operators (ordered biggest-bite-first)
# ---------------------------------------------------------------------------

def _reductions(program: FuzzProgram) -> Iterator[FuzzProgram]:
    if program.family in ("sp", "tasks"):
        yield from _tree_reductions(program)
    elif program.family in ("deps", "feb"):
        yield from _tasklist_reductions(program)
    elif program.family == "barrier":
        yield from _barrier_reductions(program)


def _clone_with_body(program: FuzzProgram, body: list) -> FuzzProgram:
    p = program.clone()
    p.body = body
    return p


def _body_paths(body: list, prefix: Tuple[int, ...] = ()
                ) -> Iterator[Tuple[Tuple[int, ...], list]]:
    """Yield (path, body) for the root body and every nested body."""
    yield prefix, body
    for i, op in enumerate(body):
        if op and op[0] in ("task", "group"):
            yield from _body_paths(op[1], prefix + (i,))


def _edit_at(root: list, path: Tuple[int, ...],
             fn: Callable[[list], Optional[list]]) -> Optional[list]:
    """Deep-copy ``root`` and replace the body at ``path`` with ``fn(body)``."""
    root = json.loads(json.dumps(root))
    body = root
    for i in path:
        body = body[i][1]
    new = fn(body)
    if new is None:
        return None
    body[:] = new
    return root


def _tree_reductions(program: FuzzProgram) -> Iterator[FuzzProgram]:
    paths = list(_body_paths(program.body))
    # 1. delete whole ops (tasks first: biggest bite)
    for path, body in paths:
        order = sorted(range(len(body)),
                       key=lambda i: 0 if body[i][0] in ("task", "group")
                       else 1)
        for i in order:
            new = _edit_at(program.body, path,
                           lambda b, i=i: b[:i] + b[i + 1:])
            if new is not None:
                yield _clone_with_body(program, new)
    # 2. inline a task/group body at its spawn point (keeps the accesses,
    #    removes the concurrency — great at isolating which spawn matters)
    for path, body in paths:
        for i, op in enumerate(body):
            if op[0] in ("task", "group"):
                new = _edit_at(program.body, path,
                               lambda b, i=i: b[:i] + b[i][1] + b[i + 1:])
                if new is not None:
                    yield _clone_with_body(program, new)
    # 3. shrink the arena
    if program.slots > 1:
        p = program.clone()
        p.slots -= 1
        yield p


def _tasklist_reductions(program: FuzzProgram) -> Iterator[FuzzProgram]:
    tasks = program.body
    # 1. drop whole tasks
    for i in range(len(tasks)):
        if len(tasks) > 1:
            yield _clone_with_body(program, tasks[:i] + tasks[i + 1:])
    # 2. drop single ops
    for ti, task in enumerate(tasks):
        for oi in range(len(task.get("ops", []))):
            p = program.clone()
            p.body[ti]["ops"] = (task["ops"][:oi] + task["ops"][oi + 1:])
            yield p
    # 3. drop dependence tokens (deps only)
    if program.family == "deps":
        for ti, task in enumerate(tasks):
            for key in ("in", "out"):
                for tok in task.get(key, ()):
                    p = program.clone()
                    p.body[ti][key] = [t for t in task[key] if t != tok]
                    yield p
    # 4. remove a FEB transfer pair (feb only) — both ends at once so the
    #    candidate still validates
    if program.family == "feb":
        words = {op[1] for task in tasks for op in task["ops"]
                 if op[0] in ("writeEF", "readFE")}
        for w in sorted(words):
            p = program.clone()
            for task in p.body:
                task["ops"] = [op for op in task["ops"]
                               if not (op[0] in ("writeEF", "readFE")
                                       and op[1] == w)]
            yield p
    if program.slots > 1:
        p = program.clone()
        p.slots -= 1
        yield p


def _barrier_reductions(program: FuzzProgram) -> Iterator[FuzzProgram]:
    threads = program.body
    n_rounds = len(threads[0]) if threads else 0
    # 1. drop a whole round (from every thread, to keep shapes uniform)
    for r in range(n_rounds):
        if n_rounds > 1:
            p = program.clone()
            p.body = [t[:r] + t[r + 1:] for t in threads]
            yield p
    # 2. drop a whole thread
    for t in range(len(threads)):
        if len(threads) > 2:
            p = program.clone()
            p.body = threads[:t] + threads[t + 1:]
            p.nthreads -= 1
            yield p
    # 3. drop single ops
    for t, thread in enumerate(threads):
        for r, round_ops in enumerate(thread):
            for i in range(len(round_ops)):
                p = program.clone()
                p.body[t][r] = round_ops[:i] + round_ops[i + 1:]
                yield p
    if program.slots > 1:
        p = program.clone()
        p.slots -= 1
        yield p


# ---------------------------------------------------------------------------
# corpus I/O
# ---------------------------------------------------------------------------

def reproducer_doc(program: FuzzProgram, *, kinds: List[str],
                   options: Optional[dict] = None, note: str = "") -> dict:
    """The ``taskgrind-fuzz-repro/1`` document for one corpus entry.

    ``kinds`` is the expected divergence-kind set — the empty list means
    the program must run *clean* (a regression pin on a past fix).
    ``options`` holds non-default TaskgrindOptions/suppression overrides to
    replay with (e.g. ``{"suppress_recycling": false}``).
    """
    return {
        "schema": REPRO_SCHEMA,
        "program": json.loads(program.to_json()),
        "expect": sorted(kinds),
        "options": options or {},
        "note": note,
    }


def write_reproducer(program: FuzzProgram, corpus_dir: str, *,
                     kinds: List[str], options: Optional[dict] = None,
                     note: str = "") -> str:
    """Write one corpus entry; returns its path."""
    os.makedirs(corpus_dir, exist_ok=True)
    doc = reproducer_doc(program, kinds=kinds, options=options, note=note)
    name = f"{program.family}-{program.digest()}.json"
    path = os.path.join(corpus_dir, name)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_reproducer(path: str) -> Tuple[FuzzProgram, List[str], dict, str]:
    """Read one corpus entry → (program, expected kinds, options, note)."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != REPRO_SCHEMA:
        raise ValueError(f"{path}: not a {REPRO_SCHEMA} document")
    program = FuzzProgram.from_json(json.dumps(doc["program"]))
    return program, list(doc.get("expect", [])), dict(doc.get("options", {})), \
        str(doc.get("note", ""))
