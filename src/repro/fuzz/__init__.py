"""Differential schedule-fuzzing harness.

Generate random task programs with known intended races, replay them under
many scheduler seeds, and cross-check Taskgrind against the structural
ground truth and the ``repro.baselines`` detectors.  See
``docs/INTERNALS.md`` §8 and ``python -m repro.fuzz --help``.
"""

from repro.fuzz.diff import DiffResult, Divergence, run_differential
from repro.fuzz.executors import RunOutcome, fuzz_options, run_taskgrind
from repro.fuzz.gen import generate
from repro.fuzz.oracles import spbags_verdict, vclock_slots
from repro.fuzz.shrink import load_reproducer, shrink, write_reproducer
from repro.fuzz.spec import FAMILIES, FuzzProgram, validate
from repro.fuzz.truth import ground_truth

__all__ = [
    "DiffResult", "Divergence", "run_differential",
    "RunOutcome", "fuzz_options", "run_taskgrind",
    "generate", "spbags_verdict", "vclock_slots",
    "load_reproducer", "shrink", "write_reproducer",
    "FAMILIES", "FuzzProgram", "validate", "ground_truth",
]
