"""Self-balancing (AVL) interval tree with dense-access coalescing.

This is the reproduction of the per-segment access structure from the paper's
Section III-B: *"Two interval trees are attached to each segment to record
read and write access ... Such structure allows compactly accumulated dense
memory accesses and a light O(log n) complexity on most tree operations"*.

Design
------
* Nodes hold half-open ranges ``[lo, hi)`` keyed by ``lo`` and carry the AVL
  augmentation ``max_hi`` (maximum ``hi`` in the subtree) so overlap queries
  prune correctly.
* :meth:`IntervalTree.insert` *coalesces*: an inserted range that overlaps or
  is adjacent to existing nodes replaces them with their hull, so a segment
  that sweeps a dense array ends up with a single node regardless of access
  order — exactly the compaction Fig. 3 of the paper illustrates.
* Intersection between two trees (the hot operation of Algorithm 1's
  ``s1.w ∩ (s2.r ∪ s2.w)`` test) walks the smaller tree and stabs the larger,
  giving :math:`O(m \\log n)` with early exit for the boolean variant.

A plain normalized list (:class:`repro.util.intervals.IntervalSet`) would give
the same asymptotics via ``bisect``; the tree is kept because it is the
paper's stated structure and because property-based tests in
``tests/util/test_itree.py`` use the flat set as an oracle against it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.util.intervals import Interval, IntervalSet


class _Node:
    __slots__ = ("lo", "hi", "left", "right", "height", "max_hi")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.height = 1
        self.max_hi = hi


def _h(n: Optional[_Node]) -> int:
    return n.height if n else 0


def _mx(n: Optional[_Node]) -> int:
    return n.max_hi if n else -1


def _update(n: _Node) -> None:
    n.height = 1 + max(_h(n.left), _h(n.right))
    n.max_hi = max(n.hi, _mx(n.left), _mx(n.right))


def _rot_right(y: _Node) -> _Node:
    x = y.left
    assert x is not None
    y.left = x.right
    x.right = y
    _update(y)
    _update(x)
    return x


def _rot_left(x: _Node) -> _Node:
    y = x.right
    assert y is not None
    x.right = y.left
    y.left = x
    _update(x)
    _update(y)
    return y


def _balance(n: _Node) -> _Node:
    _update(n)
    bf = _h(n.left) - _h(n.right)
    if bf > 1:
        assert n.left is not None
        if _h(n.left.left) < _h(n.left.right):
            n.left = _rot_left(n.left)
        return _rot_right(n)
    if bf < -1:
        assert n.right is not None
        if _h(n.right.right) < _h(n.right.left):
            n.right = _rot_right(n.right)
        return _rot_left(n)
    return n


class IntervalTree:
    """AVL interval tree over disjoint, coalesced half-open byte ranges."""

    __slots__ = ("_root", "_count", "_bytes")

    def __init__(self) -> None:
        self._root: Optional[_Node] = None
        self._count = 0
        self._bytes = 0

    # -- size accounting -----------------------------------------------------

    def __len__(self) -> int:
        """Number of (coalesced) interval nodes currently stored."""
        return self._count

    def __bool__(self) -> bool:
        return self._root is not None

    @property
    def total_bytes(self) -> int:
        """Total bytes covered (disjointness makes this exact)."""
        return self._bytes

    @property
    def height(self) -> int:
        return _h(self._root)

    # -- insertion -----------------------------------------------------------

    def insert(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi)``, coalescing with touching nodes.

        Overlapping or adjacent nodes are removed and replaced by the hull of
        everything touched, keeping the stored ranges disjoint and maximal.
        Amortized :math:`O(\\log n)` — each removed node was inserted once.
        """
        if lo >= hi:
            return
        # Absorb every node touching [lo, hi) (overlap OR adjacency).
        while True:
            node = self._find_touching(self._root, lo, hi)
            if node is None:
                break
            lo = min(lo, node.lo)
            hi = max(hi, node.hi)
            self._delete(node.lo)
        self._root = self._insert_node(self._root, lo, hi)
        self._count += 1
        self._bytes += hi - lo

    def insert_interval(self, iv: Interval) -> None:
        self.insert(iv.lo, iv.hi)

    # -- bulk construction (the access fast path) -----------------------------

    @classmethod
    def build_from_sorted(cls, pairs: Sequence[Tuple[int, int]]
                          ) -> "IntervalTree":
        """Build a perfectly balanced tree from sorted disjoint pairs in O(n).

        ``pairs`` must be sorted by ``lo``, pairwise disjoint and
        non-adjacent (i.e. already coalesced — what
        :func:`coalesce_sorted_pairs` or :class:`IntervalSet` produce).  This
        replaces n × :meth:`insert` when a segment closes: the
        write-combining recorder batches raw accesses and loads them here in
        one pass instead of paying the AVL rebalance/coalesce machinery per
        event.
        """
        tree = cls()
        n = len(pairs)
        if n == 0:
            return tree

        def build(lo_idx: int, hi_idx: int) -> Optional[_Node]:
            if lo_idx >= hi_idx:
                return None
            mid = (lo_idx + hi_idx) // 2
            lo, hi = pairs[mid]
            node = _Node(lo, hi)
            node.left = build(lo_idx, mid)
            node.right = build(mid + 1, hi_idx)
            _update(node)
            return node

        tree._root = build(0, n)
        tree._count = n
        tree._bytes = sum(hi - lo for lo, hi in pairs)
        return tree

    def bulk_merge(self, pairs: Sequence[Tuple[int, int]]) -> "IntervalTree":
        """Return a new tree holding this tree's ranges plus ``pairs``.

        ``pairs`` must be sorted and coalesced.  Linear merge of the two
        sorted sequences followed by :meth:`build_from_sorted` — O(n + m)
        instead of m × O(log n) inserts.
        """
        if not self._root:
            return IntervalTree.build_from_sorted(pairs)
        merged = coalesce_sorted_pairs(
            _merge_sorted(self.pairs(), pairs))
        return IntervalTree.build_from_sorted(merged)

    def _find_touching(self, n: Optional[_Node], lo: int, hi: int) -> Optional[_Node]:
        """Some node with ``node.lo <= hi and node.hi >= lo``, else ``None``."""
        while n is not None:
            if _mx(n.left) >= lo:
                n = n.left
                continue
            if n.lo <= hi and n.hi >= lo:
                return n
            if n.lo > hi:
                return None
            n = n.right
        return None

    def _insert_node(self, n: Optional[_Node], lo: int, hi: int) -> _Node:
        if n is None:
            return _Node(lo, hi)
        if lo < n.lo:
            n.left = self._insert_node(n.left, lo, hi)
        else:
            n.right = self._insert_node(n.right, lo, hi)
        return _balance(n)

    def _delete(self, lo: int) -> None:
        removed_bytes = [0]
        self._root = self._delete_node(self._root, lo, removed_bytes)
        self._count -= 1
        self._bytes -= removed_bytes[0]

    def _delete_node(self, n: Optional[_Node], lo: int,
                     removed: List[int]) -> Optional[_Node]:
        if n is None:  # pragma: no cover - internal invariant
            raise KeyError(lo)
        if lo < n.lo:
            n.left = self._delete_node(n.left, lo, removed)
        elif lo > n.lo:
            n.right = self._delete_node(n.right, lo, removed)
        else:
            removed[0] = n.hi - n.lo
            if n.left is None:
                return n.right
            if n.right is None:
                return n.left
            # Replace with in-order successor.
            succ = n.right
            while succ.left is not None:
                succ = succ.left
            s_lo, s_hi = succ.lo, succ.hi
            dummy = [0]
            n.right = self._delete_node(n.right, s_lo, dummy)
            n.lo, n.hi = s_lo, s_hi
        return _balance(n)

    # -- queries ---------------------------------------------------------------

    def overlaps(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi)`` shares a byte with some stored range."""
        if lo >= hi:
            return False
        n = self._root
        while n is not None:
            if n.lo < hi and lo < n.hi:
                return True
            if n.left is not None and n.left.max_hi > lo:
                n = n.left
            elif n.lo < hi:
                n = n.right
            else:
                return False
        return False

    def contains_point(self, addr: int) -> bool:
        return self.overlaps(addr, addr + 1)

    def covers(self, lo: int, hi: int) -> bool:
        """True when every byte of ``[lo, hi)`` is stored.

        Because stored ranges are coalesced and disjoint, full coverage means
        a single node covers the query.
        """
        if lo >= hi:
            return True
        n = self._root
        while n is not None:
            if n.lo <= lo and hi <= n.hi:
                return True
            if n.left is not None and n.left.max_hi > lo:
                n = n.left
            elif n.lo <= lo:
                n = n.right
            else:
                return False
        return False

    def stab(self, lo: int, hi: int) -> List[Interval]:
        """All stored ranges overlapping ``[lo, hi)`` in address order."""
        out: List[Interval] = []
        self._stab(self._root, lo, hi, out)
        return out

    def _stab(self, n: Optional[_Node], lo: int, hi: int,
              out: List[Interval]) -> None:
        if n is None or lo >= hi:
            return
        if n.left is not None and n.left.max_hi > lo:
            self._stab(n.left, lo, hi, out)
        if n.lo < hi and lo < n.hi:
            out.append(Interval(n.lo, n.hi))
        if n.lo < hi:
            self._stab(n.right, lo, hi, out)

    # -- iteration / conversion -------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        yield from self._inorder(self._root)

    def _inorder(self, n: Optional[_Node]) -> Iterator[Interval]:
        if n is None:
            return
        yield from self._inorder(n.left)
        yield Interval(n.lo, n.hi)
        yield from self._inorder(n.right)

    def pairs(self) -> List[Tuple[int, int]]:
        return [(iv.lo, iv.hi) for iv in self]

    def to_set(self) -> IntervalSet:
        """Flatten into a normalized :class:`IntervalSet` (already disjoint)."""
        s = IntervalSet()
        for iv in self:
            s.add(iv.lo, iv.hi)
        return s

    # -- tree-tree operations (Algorithm 1 hot path) ----------------------------

    def intersects_tree(self, other: "IntervalTree") -> bool:
        """True when the two trees share at least one byte.

        Walks the smaller tree, stabbing the larger: :math:`O(m \\log n)` with
        early exit on the first hit.
        """
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        for iv in small:
            if large.overlaps(iv.lo, iv.hi):
                return True
        return False

    def intersection_tree(self, other: "IntervalTree") -> IntervalSet:
        """All bytes present in both trees, as a normalized set."""
        out = IntervalSet()
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        for iv in small:
            for hit in large.stab(iv.lo, iv.hi):
                cut = iv.intersect(hit)
                if cut is not None:
                    out.add(cut.lo, cut.hi)
        return out

    # -- validation (used by property tests) -------------------------------------

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any structural violation."""
        prev_hi = [None]

        def walk(n: Optional[_Node]) -> Tuple[int, int]:
            if n is None:
                return 0, -1
            lh, lmax = walk(n.left)
            assert n.lo < n.hi, "empty node range"
            if prev_hi[0] is not None:
                assert n.lo > prev_hi[0], "nodes overlap or are adjacent"
            prev_hi[0] = n.hi
            rh, rmax = walk(n.right)
            assert abs(lh - rh) <= 1, "AVL balance violated"
            h = 1 + max(lh, rh)
            mx = max(n.hi, lmax, rmax)
            assert n.height == h, "stale height"
            assert n.max_hi == mx, "stale max_hi"
            return h, mx

        walk(self._root)


def coalesce_sorted_pairs(pairs: Iterable[Tuple[int, int]]
                          ) -> List[Tuple[int, int]]:
    """Coalesce a lo-sorted sequence of ``(lo, hi)`` pairs in one pass.

    Overlapping *and* adjacent pairs merge — the invariant
    :meth:`IntervalTree.build_from_sorted` requires.  Empty pairs are
    dropped.  O(n); the sort (if any) is the caller's.
    """
    out: List[Tuple[int, int]] = []
    cur_lo: Optional[int] = None
    cur_hi = 0
    for lo, hi in pairs:
        if lo >= hi:
            continue
        if cur_lo is None:
            cur_lo, cur_hi = lo, hi
        elif lo <= cur_hi:                      # overlap or adjacency
            if hi > cur_hi:
                cur_hi = hi
        else:
            out.append((cur_lo, cur_hi))
            cur_lo, cur_hi = lo, hi
    if cur_lo is not None:
        out.append((cur_lo, cur_hi))
    return out


def _merge_sorted(a: Sequence[Tuple[int, int]], b: Sequence[Tuple[int, int]]
                  ) -> Iterator[Tuple[int, int]]:
    """Merge two lo-sorted pair sequences into one lo-sorted stream."""
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i][0] <= b[j][0]:
            yield a[i]
            i += 1
        else:
            yield b[j]
            j += 1
    yield from a[i:]
    yield from b[j:]
