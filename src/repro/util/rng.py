"""Seeded, named random streams.

Every source of nondeterminism in the simulation (work-stealing victim
selection, task-queue pop order, allocator arena choice, ...) draws from a
named sub-stream of a single run seed.  Same seed => bit-identical schedule,
which is what lets the harness (a) make Table I deterministic and (b)
reproduce the *ranges* the paper reports for Archer on LULESH ("149 to 273"
reports) by sweeping seeds.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


class RngHub:
    """Factory of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        #: draw calls per stream — a cheap determinism fingerprint: two runs
        #: of the same schedule must consume every stream identically (the
        #: replayer cross-checks this, excluding the sched.* streams it
        #: deliberately does not draw)
        self.draws: Dict[str, int] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created deterministically on first use."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            gen = np.random.Generator(
                np.random.PCG64(int.from_bytes(digest[:8], "little"))
            )
            self._streams[name] = gen
        return gen

    def randint(self, name: str, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi)`` from the named stream."""
        self.draws[name] = self.draws.get(name, 0) + 1
        return int(self.stream(name).integers(lo, hi))

    def choice(self, name: str, n: int) -> int:
        return self.randint(name, 0, n)

    def shuffle(self, name: str, seq: list) -> None:
        """In-place Fisher-Yates shuffle driven by the named stream."""
        self.draws[name] = self.draws.get(name, 0) + 1
        gen = self.stream(name)
        for i in range(len(seq) - 1, 0, -1):
            j = int(gen.integers(0, i + 1))
            seq[i], seq[j] = seq[j], seq[i]
