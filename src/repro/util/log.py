"""Logging shim: one package-level logger with an opt-in verbose mode."""

from __future__ import annotations

import logging

LOGGER_NAME = "repro"


def get_logger(child: str | None = None) -> logging.Logger:
    """The package logger, or a named child of it."""
    name = LOGGER_NAME if child is None else f"{LOGGER_NAME}.{child}"
    return logging.getLogger(name)


def enable_verbose(level: int = logging.DEBUG) -> None:
    """Attach a stderr handler for interactive debugging (idempotent)."""
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
