"""Half-open integer interval algebra.

The whole reproduction reasons about memory in terms of *byte ranges*
``[lo, hi)`` over a simulated 64-bit address space.  This module provides the
two value types everything else builds on:

* :class:`Interval` — an immutable half-open range.
* :class:`IntervalSet` — a normalized (sorted, disjoint, coalesced) set of
  intervals with union / intersection / difference, backed by ``bisect`` for
  :math:`O(\\log n)` point and range queries.

The interval *tree* used by the access recorder lives in
:mod:`repro.util.itree`; :class:`IntervalSet` is used where a flat normalized
representation is more convenient (suppression masks, report formatting,
tests and property-based oracles).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[lo, hi)``.

    Invariant: ``lo < hi`` (empty intervals are never constructed; use
    :meth:`Interval.make` when the inputs may be degenerate).
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError(f"empty or inverted interval [{self.lo}, {self.hi})")

    @staticmethod
    def make(lo: int, hi: int) -> Optional["Interval"]:
        """Return ``Interval(lo, hi)`` or ``None`` if the range is empty."""
        if lo >= hi:
            return None
        return Interval(lo, hi)

    @property
    def size(self) -> int:
        """Number of bytes covered."""
        return self.hi - self.lo

    def overlaps(self, other: "Interval") -> bool:
        """True when the two half-open ranges share at least one byte."""
        return self.lo < other.hi and other.lo < self.hi

    def touches(self, other: "Interval") -> bool:
        """True when the ranges overlap *or* are adjacent (coalescable)."""
        return self.lo <= other.hi and other.lo <= self.hi

    def contains(self, addr: int) -> bool:
        return self.lo <= addr < self.hi

    def covers(self, other: "Interval") -> bool:
        """True when ``other`` lies entirely within ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersect(self, other: "Interval") -> Optional["Interval"]:
        """The overlapping sub-range, or ``None`` when disjoint."""
        return Interval.make(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval covering both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def subtract(self, other: "Interval") -> Tuple["Interval", ...]:
        """``self`` minus ``other`` as 0, 1 or 2 disjoint pieces."""
        if not self.overlaps(other):
            return (self,)
        pieces: List[Interval] = []
        left = Interval.make(self.lo, min(self.hi, other.lo))
        right = Interval.make(max(self.lo, other.hi), self.hi)
        if left is not None:
            pieces.append(left)
        if right is not None:
            pieces.append(right)
        return tuple(pieces)

    def shift(self, delta: int) -> "Interval":
        return Interval(self.lo + delta, self.hi + delta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:#x}, {self.hi:#x})"


class IntervalSet:
    """A normalized set of disjoint, coalesced, sorted intervals.

    All mutating operations keep the canonical form: intervals are sorted by
    ``lo``, pairwise disjoint, and never adjacent (adjacent inserts coalesce).
    Two :class:`IntervalSet` instances covering the same bytes therefore
    compare equal.
    """

    __slots__ = ("_los", "_his")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._los: List[int] = []
        self._his: List[int] = []
        for iv in intervals:
            self.add(iv.lo, iv.hi)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "IntervalSet":
        s = cls()
        for lo, hi in pairs:
            s.add(lo, hi)
        return s

    def copy(self) -> "IntervalSet":
        s = IntervalSet()
        s._los = list(self._los)
        s._his = list(self._his)
        return s

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._los)

    def __bool__(self) -> bool:
        return bool(self._los)

    def __iter__(self) -> Iterator[Interval]:
        for lo, hi in zip(self._los, self._his):
            yield Interval(lo, hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._los == other._los and self._his == other._his

    def __hash__(self) -> int:
        return hash((tuple(self._los), tuple(self._his)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(repr(iv) for iv in self)
        return f"IntervalSet({body})"

    def pairs(self) -> List[Tuple[int, int]]:
        return list(zip(self._los, self._his))

    @property
    def total_bytes(self) -> int:
        """Sum of the sizes of all member intervals."""
        return sum(h - l for l, h in zip(self._los, self._his))

    @property
    def span(self) -> Optional[Interval]:
        """Hull of the whole set, or ``None`` when empty."""
        if not self._los:
            return None
        return Interval(self._los[0], self._his[-1])

    # -- queries -----------------------------------------------------------

    def contains_point(self, addr: int) -> bool:
        """True when ``addr`` is covered by some member interval."""
        i = bisect_right(self._los, addr) - 1
        return i >= 0 and addr < self._his[i]

    def overlaps_range(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi)`` shares at least one byte with the set."""
        if lo >= hi or not self._los:
            return False
        i = bisect_right(self._los, lo) - 1
        if i >= 0 and lo < self._his[i]:
            return True
        j = i + 1
        return j < len(self._los) and self._los[j] < hi

    def covers_range(self, lo: int, hi: int) -> bool:
        """True when every byte of ``[lo, hi)`` is in the set."""
        if lo >= hi:
            return True
        i = bisect_right(self._los, lo) - 1
        return i >= 0 and hi <= self._his[i]

    def overlapping(self, lo: int, hi: int) -> List[Interval]:
        """All member intervals overlapping ``[lo, hi)``, in address order."""
        out: List[Interval] = []
        if lo >= hi:
            return out
        i = bisect_right(self._los, lo) - 1
        if i < 0:
            i = 0
        n = len(self._los)
        while i < n and self._los[i] < hi:
            if self._his[i] > lo:
                out.append(Interval(self._los[i], self._his[i]))
            i += 1
        return out

    # -- mutation ----------------------------------------------------------

    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi)``, coalescing with overlapping/adjacent members."""
        if lo >= hi:
            return
        # Find the window of members touching [lo, hi): those with
        # member.lo <= hi and member.hi >= lo.
        i = bisect_left(self._his, lo)          # first member with hi >= lo
        j = bisect_right(self._los, hi)         # first member with lo > hi
        if i < j:
            lo = min(lo, self._los[i])
            hi = max(hi, self._his[j - 1])
        self._los[i:j] = [lo]
        self._his[i:j] = [hi]

    def add_interval(self, iv: Interval) -> None:
        self.add(iv.lo, iv.hi)

    def remove(self, lo: int, hi: int) -> None:
        """Remove every byte of ``[lo, hi)`` from the set."""
        if lo >= hi or not self._los:
            return
        i = bisect_left(self._his, lo + 1)      # first member with hi > lo
        j = bisect_right(self._los, hi - 1)     # first member with lo >= hi
        if i >= j:
            return
        keep_los: List[int] = []
        keep_his: List[int] = []
        left = Interval.make(self._los[i], min(self._his[i], lo))
        right = Interval.make(max(self._los[j - 1], hi), self._his[j - 1])
        if left is not None:
            keep_los.append(left.lo)
            keep_his.append(left.hi)
        if right is not None:
            keep_los.append(right.lo)
            keep_his.append(right.hi)
        self._los[i:j] = keep_los
        self._his[i:j] = keep_his

    # -- set algebra -------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        out = self.copy()
        for lo, hi in zip(other._los, other._his):
            out.add(lo, hi)
        return out

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Linear-merge intersection of two normalized sets."""
        out = IntervalSet()
        a, b = 0, 0
        while a < len(self._los) and b < len(other._los):
            lo = max(self._los[a], other._los[b])
            hi = min(self._his[a], other._his[b])
            if lo < hi:
                out._los.append(lo)
                out._his.append(hi)
            if self._his[a] < other._his[b]:
                a += 1
            else:
                b += 1
        return out

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        out = self.copy()
        for lo, hi in zip(other._los, other._his):
            out.remove(lo, hi)
        return out

    def intersects(self, other: "IntervalSet") -> bool:
        """True when the two sets share at least one byte (no allocation)."""
        a, b = 0, 0
        while a < len(self._los) and b < len(other._los):
            if max(self._los[a], other._los[b]) < min(self._his[a], other._his[b]):
                return True
            if self._his[a] < other._his[b]:
                a += 1
            else:
                b += 1
        return False


def coalesce(pairs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Normalize an arbitrary list of ``(lo, hi)`` pairs (helper for tests)."""
    return IntervalSet.from_pairs(pairs).pairs()
