"""Shared low-level utilities for the Taskgrind reproduction.

Submodules
----------
intervals
    Half-open integer interval algebra (:class:`~repro.util.intervals.Interval`,
    :class:`~repro.util.intervals.IntervalSet`).
itree
    Self-balancing (AVL) interval tree used to record per-segment memory
    accesses, mirroring the paper's Section III-B data structure.
rng
    Seeded, named random streams so every simulated schedule is reproducible.
tables
    Plain-text table rendering for the benchmark harnesses.
log
    Small logging shim used across the package.
"""

from repro.util.intervals import Interval, IntervalSet
from repro.util.itree import IntervalTree

__all__ = ["Interval", "IntervalSet", "IntervalTree"]
