"""Order-maintenance list: O(1) amortized insert-after + O(1) order queries.

The classic building block of constant-time series-parallel happens-before
indexes (Bender et al., "Two simplified algorithms for maintaining order in
a list"; used the same way by DePa, arXiv:2204.14168, and by SP-order race
detectors).  Each element carries an integer label; ``a`` precedes ``b`` iff
``a.label < b.label``.  Inserts bisect the label gap; when a gap is
exhausted the whole list is relabeled with a fresh stride — O(n), amortized
away because each relabel doubles the usable label space consumed since the
last one.

The happens-before index (:mod:`repro.core.hbindex`) keeps two of these
("English" and "Hebrew" orders) and answers ordering queries by label
comparison in both.
"""

from __future__ import annotations

from typing import Iterator, Optional

#: Initial label stride: leaves ~60 bisections between fresh neighbours.
_STRIDE = 1 << 60


class OMNode:
    """One element of an :class:`OrderList` (opaque to callers)."""

    __slots__ = ("label", "prev", "next")

    def __init__(self, label: int) -> None:
        self.label = label
        self.prev: Optional["OMNode"] = None
        self.next: Optional["OMNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OMNode {self.label}>"


class OrderList:
    """Doubly-linked list over labeled nodes with midpoint insertion."""

    __slots__ = ("_head", "_tail", "_size", "relabel_count")

    def __init__(self) -> None:
        self._head: Optional[OMNode] = None
        self._tail: Optional[OMNode] = None
        self._size = 0
        self.relabel_count = 0        # observability: global renumber events

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[OMNode]:
        n = self._head
        while n is not None:
            yield n
            n = n.next

    # -- insertion -----------------------------------------------------------

    def insert_first(self) -> OMNode:
        """New node at the very front of the order."""
        if self._head is None:
            node = OMNode(0)
            self._head = self._tail = node
        else:
            node = OMNode(self._head.label - _STRIDE)
            node.next = self._head
            self._head.prev = node
            self._head = node
        self._size += 1
        return node

    def insert_last(self) -> OMNode:
        """New node at the very back of the order."""
        if self._tail is None:
            return self.insert_first()
        node = OMNode(self._tail.label + _STRIDE)
        node.prev = self._tail
        self._tail.next = node
        self._tail = node
        self._size += 1
        return node

    def insert_after(self, ref: OMNode) -> OMNode:
        """New node immediately after ``ref`` (before anything previously
        inserted after it — the 'stacking' discipline SP-order relies on)."""
        nxt = ref.next
        if nxt is None:
            return self.insert_last()
        if nxt.label - ref.label < 2:
            self._relabel()
            nxt = ref.next
            assert nxt is not None
        node = OMNode((ref.label + nxt.label) // 2)
        node.prev, node.next = ref, nxt
        ref.next = node
        nxt.prev = node
        self._size += 1
        return node

    def insert_before(self, ref: OMNode) -> OMNode:
        """New node immediately before ``ref`` (after anything previously
        inserted before it — the mirror of :meth:`insert_after`)."""
        prv = ref.prev
        if prv is None:
            if self._head is ref:
                node = OMNode(ref.label - _STRIDE)
                node.next = ref
                ref.prev = node
                self._head = node
                self._size += 1
                return node
            raise ValueError("reference node not in list")
        if ref.label - prv.label < 2:
            self._relabel()
            prv = ref.prev
            assert prv is not None
        node = OMNode((prv.label + ref.label) // 2)
        node.prev, node.next = prv, ref
        prv.next = node
        ref.prev = node
        self._size += 1
        return node

    # -- removal / repositioning ---------------------------------------------

    def remove(self, node: OMNode) -> None:
        """Unlink ``node``; it must not be used as a reference afterwards."""
        if node.prev is not None:
            node.prev.next = node.next
        else:
            self._head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        else:
            self._tail = node.prev
        node.prev = node.next = None
        self._size -= 1

    def move_after(self, node: OMNode, ref: OMNode) -> None:
        """Reposition ``node`` to immediately after ``ref`` in place.

        The node object keeps its identity (callers hold references to it);
        only its label and links change.
        """
        if ref is node or ref.next is node:
            return
        self.remove(node)
        nxt = ref.next
        if nxt is None:
            node.label = ref.label + _STRIDE
            node.prev = ref
            ref.next = node
            self._tail = node
        else:
            if nxt.label - ref.label < 2:
                self._relabel()
                nxt = ref.next
                assert nxt is not None
            node.label = (ref.label + nxt.label) // 2
            node.prev, node.next = ref, nxt
            ref.next = node
            nxt.prev = node
        self._size += 1

    # -- order query ---------------------------------------------------------

    @staticmethod
    def precedes(a: OMNode, b: OMNode) -> bool:
        return a.label < b.label

    # -- internals ------------------------------------------------------------

    def _relabel(self) -> None:
        """Renumber every node with a fresh stride (rare, O(n))."""
        self.relabel_count += 1
        label = 0
        n = self._head
        while n is not None:
            n.label = label
            label += _STRIDE
            n = n.next

    def check_invariants(self) -> None:
        """Raise on any broken link or non-monotone labeling (tests)."""
        seen = 0
        prev = None
        n = self._head
        while n is not None:
            assert n.prev is prev, "broken prev link"
            if prev is not None:
                assert prev.label < n.label, "labels not strictly increasing"
            prev = n
            n = n.next
            seen += 1
        assert prev is self._tail, "broken tail"
        assert seen == self._size, "size out of sync"
