"""Plain-text table rendering for the benchmark harnesses.

The harnesses (``repro.bench.table1`` etc.) print the same rows the paper's
tables report; this module renders them as aligned ASCII so the output can be
eyeballed against the paper and diffed between runs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:  # pragma: no cover - defensive
                widths.append(len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple], title: str | None = None) -> str:
    """Render key/value pairs as an aligned two-column block."""
    items = [(str(k), str(v)) for k, v in pairs]
    w = max((len(k) for k, _ in items), default=0)
    lines = []
    if title:
        lines.append(title)
    lines.extend(f"  {k.ljust(w)} : {v}" for k, v in items)
    return "\n".join(lines)
