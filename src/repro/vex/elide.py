"""Ahead-of-time access-site elision — Section IV decided before the run.

The runtime :class:`~repro.core.suppress.SuppressionEngine` pays per access
(record everything, filter conflicts post-mortem).  "Compiling Away the
Overhead of Race Detection"-style tools show most of that work is decidable
per *site*: an access whose target is provably private to its executing
context can get **no-op instrumentation** and never enter the interval trees
at all.  This module is that pre-pass, in two forms matching the two ways
guest code reaches the hub:

* **Declared sites** (the source-level API): ``stack_var``/``tls_var``/
  ``malloc`` called with ``private=True`` assert the compiler proved the
  address never escapes its frame/thread/allocation scope.  The declaration
  flows to the tool as a ``tg_static_site`` client request; the tool answers
  with a :class:`StaticSite` token only when the corresponding *runtime*
  suppression class is active, and every subsequent access through that
  handle is counted and dropped before recording.
* **Static IR classification** (the binary path): :class:`StaticElider`
  abstract-interprets a translated :class:`~repro.vex.ir.SuperBlock`,
  tracking provably-constant registers/temporaries, and classifies each
  ``Load``/``Store`` whose address is a compile-time constant inside a
  declared private range.  :func:`repro.vex.translate.instrument_block`
  then emits a counting no-op ``Dirty`` for those sites instead of the
  tracking hook.

Soundness contract
------------------
Elision must be a *subset* of what the runtime engine would have
suppressed — never elide an access the runtime path would have kept:

* every class is gated on its runtime toggle
  (:meth:`ElisionPlan.site_elidable`), so a ``--break-suppression`` run
  disables the matching elisions too and the harness self-test still
  diverges;
* undeclared / unprovable sites stay :data:`UNKNOWN` and are recorded
  exactly as before — the runtime path remains the fallback;
* a site observed reaching addresses outside every declared private range
  joins to :data:`SHARED` and is never elided.

The per-site decisions are serialized into ``taskgrind-stats/1`` (under
``suppress.elision``) so any verdict disagreement found by the differential
fuzz harness is attributable to one specific site.

Site-classification lattice::

              SHARED           (proven escaping -- never elide)
            /    |    \\
    STACK_LOCAL TLS_LOCAL ALLOC_LOCAL   (elidable, gated per class)
            \\    |    /
              UNKNOWN          (unclassified -- never elide)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.prof import get_profiler
from repro.vex.ir import (Binop, Const, Expr, Get, Load, Put, RdTmp, Store,
                          SuperBlock, WrTmp)

_PROF = get_profiler()

# -- the lattice -------------------------------------------------------------

UNKNOWN = "unknown"          # bottom: no classification, runtime path
STACK_LOCAL = "stack"        # provably confined to a frame the segment pushes
TLS_LOCAL = "tls"            # provably a thread-local slot
ALLOC_LOCAL = "alloc"        # provably a non-escaping allocation
SHARED = "shared"            # top: proven escaping, runtime path

#: the elidable middle layer of the lattice
PRIVATE_CLASSES = (STACK_LOCAL, TLS_LOCAL, ALLOC_LOCAL)


def join(a: str, b: str) -> str:
    """Lattice join: agreeing private classes stay, disagreement escalates."""
    if a == b:
        return a
    if a == UNKNOWN:
        return b
    if b == UNKNOWN:
        return a
    return SHARED


@dataclass(frozen=True)
class StaticSite:
    """One classified access site (a declaration or one IR statement)."""

    site_id: int
    name: str                     # variable / buffer name
    klass: str                    # lattice class at decision time
    symbol: str = ""              # enclosing guest function
    file: str = ""
    line: int = 0

    def to_dict(self) -> dict:
        return {"id": self.site_id, "name": self.name, "class": self.klass,
                "symbol": self.symbol, "file": self.file, "line": self.line}


class ElisionPlan:
    """Per-run site registry + elision decisions + counters.

    Owned by the tool; decisions are taken once at declaration time against
    the run's :class:`~repro.core.suppress.SuppressionConfig` so the hot
    path is a single ``site is not None`` test.
    """

    def __init__(self, config, enabled: bool = True) -> None:
        self.config = config
        self.enabled = enabled
        self.sites: List[StaticSite] = []
        self.decisions: Dict[int, bool] = {}       # site_id -> elide?
        self.elided_counts: Dict[int, int] = {}    # site_id -> accesses dropped

    # -- decision ------------------------------------------------------------

    def site_elidable(self, klass: str) -> bool:
        """Gate each lattice class on its *runtime* suppression toggle.

        This is what keeps elision a subset of runtime suppression: a class
        whose runtime mechanism is disabled (``--break-suppression``) must
        not be compiled away either.
        """
        cfg = self.config
        if klass == STACK_LOCAL:
            return cfg.suppress_stack
        if klass == TLS_LOCAL:
            return cfg.suppress_tls
        if klass == ALLOC_LOCAL:
            return cfg.suppress_recycling
        return False                               # UNKNOWN / SHARED

    def declare(self, name: str, klass: str, *, symbol: str = "",
                file: str = "", line: int = 0) -> Optional[StaticSite]:
        """Register one site; returns the token iff its accesses are elided.

        A ``None`` return means "record as usual" — the caller attaches no
        site and the runtime path is the fallback, so a declaration can
        never make the tool *less* correct than having said nothing.
        """
        site = StaticSite(len(self.sites), name, klass, symbol=symbol,
                          file=file, line=line)
        elide = self.enabled and self.site_elidable(klass)
        self.sites.append(site)
        self.decisions[site.site_id] = elide
        return site if elide else None

    # -- hot path ------------------------------------------------------------

    def note(self, site: StaticSite, n: int = 1) -> None:
        """Count ``n`` accesses dropped at ``site`` (the no-op hook body)."""
        counts = self.elided_counts
        counts[site.site_id] = counts.get(site.site_id, 0) + n
        if _PROF.enabled:
            _PROF.count(f"elide.{site.klass}",
                        f"{site.symbol or site.name}:{site.name}", n=n)

    # -- observability -------------------------------------------------------

    @property
    def elided_sites(self) -> int:
        return sum(1 for v in self.decisions.values() if v)

    @property
    def elided_accesses(self) -> int:
        return sum(self.elided_counts.values())

    def stats_doc(self) -> dict:
        """The ``suppress.elision`` block of ``taskgrind-stats/1``.

        Every declared site appears with its class, decision and drop
        count — a fuzz divergence names the site, not just the total.
        """
        return {
            "enabled": self.enabled,
            "elided_sites": self.elided_sites,
            "elided_accesses": self.elided_accesses,
            "sites": [dict(s.to_dict(),
                           elided=self.decisions[s.site_id],
                           accesses=self.elided_counts.get(s.site_id, 0))
                      for s in self.sites],
        }


# ---------------------------------------------------------------------------
# static IR classification (the binary / GuestVM path)
# ---------------------------------------------------------------------------

@dataclass
class _Range:
    lo: int
    hi: int
    klass: str
    name: str


class StaticElider:
    """Classify ``Load``/``Store`` sites of translated blocks ahead of time.

    Declared private address ranges come from the same source-level
    assertions as the Python API (``declare_range``); the per-block pass is
    a constant-propagation sweep: a register set by ``li`` inside the block
    makes derived address expressions compile-time constants, and a constant
    address inside exactly one declared private range classifies the site.
    Anything else — unknown base register, address outside every declared
    range, range straddling — stays :data:`UNKNOWN` and keeps the tracking
    hook.
    """

    def __init__(self, plan: ElisionPlan, *, symbol: str = "") -> None:
        self.plan = plan
        self.symbol = symbol
        self.ranges: List[_Range] = []

    def declare_range(self, lo: int, hi: int, klass: str,
                      name: str = "") -> None:
        """Assert ``[lo, hi)`` is private of class ``klass``."""
        self.ranges.append(_Range(lo, hi, klass, name))

    def _classify_addr(self, lo: int, hi: int) -> str:
        for r in self.ranges:
            if r.lo <= lo and hi <= r.hi:
                return r.klass
        return UNKNOWN

    def _range_name(self, lo: int) -> str:
        for r in self.ranges:
            if r.lo <= lo < r.hi:
                return r.name
        return ""                                  # pragma: no cover

    def classify_block(self, sb: SuperBlock) -> Dict[int, StaticSite]:
        """Map statement index → elided site for every provable access.

        Only statements whose access is *provably* inside one declared
        private range — and whose class the plan elides — appear in the
        result; the instrumenter keeps tracking hooks for the rest.
        """
        out: Dict[int, StaticSite] = {}
        regs: Dict[int, int] = {}
        tmps: Dict[int, int] = {}

        def const_of(expr: Expr) -> Optional[int]:
            if isinstance(expr, Const):
                return expr.value
            if isinstance(expr, RdTmp):
                return tmps.get(expr.tmp)
            if isinstance(expr, Get):
                return regs.get(expr.reg)
            if isinstance(expr, Binop) and expr.op in ("add", "sub", "mul"):
                a, b = const_of(expr.a), const_of(expr.b)
                if a is None or b is None:
                    return None
                return a + b if expr.op == "add" else \
                    a - b if expr.op == "sub" else a * b
            return None

        def try_site(k: int, addr: Optional[int], size: int) -> None:
            if addr is None:
                return
            klass = self._classify_addr(addr, addr + size)
            if klass == UNKNOWN:
                return
            site = self.plan.declare(
                self._range_name(addr) or f"{addr:#x}", klass,
                symbol=self.symbol, line=sb.guest_addr)
            if site is not None:
                out[k] = site

        for k, stmt in enumerate(sb.stmts):
            if isinstance(stmt, WrTmp):
                if isinstance(stmt.expr, Load):
                    try_site(k, const_of(stmt.expr.addr), stmt.expr.size)
                    tmps.pop(stmt.tmp, None)       # loaded value: not const
                else:
                    v = const_of(stmt.expr)
                    if v is None:
                        tmps.pop(stmt.tmp, None)
                    else:
                        tmps[stmt.tmp] = v
            elif isinstance(stmt, Put):
                v = const_of(stmt.expr)
                if v is None:
                    regs.pop(stmt.reg, None)
                else:
                    regs[stmt.reg] = v
            elif isinstance(stmt, Store):
                try_site(k, const_of(stmt.addr), stmt.size)
        return out
