"""VEX-style dynamic instrumentation layer (the Valgrind-core analogue).

In real Valgrind the core JIT-recompiles guest code to VEX IR and lets the
tool plugin inject instrumentation around every load/store.  Here the
"recompilation" is structural: every guest access performed through
:class:`repro.machine.program.GuestContext` is funneled through
:class:`~repro.vex.instrument.Instrumentation`, which dispatches to the
registered tools — with each tool's *visibility* honoured (a compile-time
tool does not observe accesses in symbols that were not compiled with
instrumentation; a DBI tool observes everything).

The other two Valgrind facilities the paper leans on are here too:

* :mod:`repro.vex.client_requests` — the client-request channel through which
  the injected OMPT shim forwards runtime state to the tool (Section III-A);
* :mod:`repro.vex.replacement` — function replacement, used to wrap the
  allocator (stack traces on allocation, ``free`` as a no-op; Sections III-C
  and IV-B).
"""

from repro.vex.events import AccessEvent, AllocEvent, FreeEvent
from repro.vex.instrument import Instrumentation
from repro.vex.client_requests import ClientRequestRouter
from repro.vex.replacement import ReplacementRegistry
from repro.vex.tool import Tool
from repro.vex.ir import SuperBlock
from repro.vex.translate import Assembler, GuestVM

__all__ = [
    "AccessEvent", "AllocEvent", "FreeEvent",
    "Instrumentation", "ClientRequestRouter", "ReplacementRegistry", "Tool",
    "SuperBlock", "Assembler", "GuestVM",
]
