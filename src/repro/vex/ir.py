"""A miniature VEX-style intermediate representation.

The paper's Section II-B: Valgrind JIT-recompiles guest code blocks to the
VEX IR; the tool plugin instruments the IR (most importantly around ``Load``
and ``Store``) and the core executes the result.  This module defines the
reproduction's IR — a small, typed, SSA-ish subset sufficient to express the
guest ISA of :mod:`repro.vex.translate`:

expressions
    ``Const``, ``RdTmp``, ``Get`` (guest register read), ``Binop``, ``Load``
statements
    ``IMark`` (guest-instruction boundary), ``WrTmp``, ``Put`` (guest
    register write), ``Store``, ``Dirty`` (a helper call — how tools inject
    instrumentation), ``Exit`` (conditional side exit)

A :class:`SuperBlock` is a straight-line statement list with a fall-through
``next`` address, exactly VEX's IRSB shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    value: int

    def __str__(self) -> str:
        return f"0x{self.value:x}" if self.value >= 10 else str(self.value)


@dataclass(frozen=True)
class RdTmp:
    tmp: int

    def __str__(self) -> str:
        return f"t{self.tmp}"


@dataclass(frozen=True)
class Get:
    reg: int

    def __str__(self) -> str:
        return f"GET(r{self.reg})"


@dataclass(frozen=True)
class Binop:
    op: str                       # 'add' | 'sub' | 'mul' | 'cmpne' | 'cmplt'
    a: "Expr"
    b: "Expr"

    def __str__(self) -> str:
        return f"{self.op}({self.a},{self.b})"


@dataclass(frozen=True)
class Load:
    addr: "Expr"
    size: int = 8

    def __str__(self) -> str:
        return f"LD{self.size}({self.addr})"


Expr = Union[Const, RdTmp, Get, Binop, Load]


# -- statements ------------------------------------------------------------------


@dataclass(frozen=True)
class IMark:
    """Guest instruction boundary: address + encoded length."""

    addr: int
    length: int

    def __str__(self) -> str:
        return f"------ IMark(0x{self.addr:x}, {self.length}) ------"


@dataclass(frozen=True)
class WrTmp:
    tmp: int
    expr: Expr

    def __str__(self) -> str:
        return f"t{self.tmp} = {self.expr}"


@dataclass(frozen=True)
class Put:
    reg: int
    expr: Expr

    def __str__(self) -> str:
        return f"PUT(r{self.reg}) = {self.expr}"


@dataclass(frozen=True)
class Store:
    addr: Expr
    data: Expr
    size: int = 8

    def __str__(self) -> str:
        return f"ST{self.size}({self.addr}) = {self.data}"


@dataclass(frozen=True)
class Dirty:
    """A helper call injected by the tool (instrumentation hook)."""

    name: str
    callback: Callable
    args: Tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return f"DIRTY {self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class Exit:
    """Conditional side exit: if guard != 0, jump to target."""

    guard: Expr
    target: int

    def __str__(self) -> str:
        return f"if ({self.guard}) goto 0x{self.target:x}"


Stmt = Union[IMark, WrTmp, Put, Store, Dirty, Exit]


@dataclass
class SuperBlock:
    """One translated guest block (VEX IRSB)."""

    guest_addr: int
    stmts: List[Stmt] = field(default_factory=list)
    next_addr: Optional[int] = None       # fall-through; None = halt
    n_tmps: int = 0

    def new_tmp(self) -> int:
        self.n_tmps += 1
        return self.n_tmps - 1

    def pretty(self) -> str:
        body = "\n".join(f"   {s}" for s in self.stmts)
        nxt = "halt" if self.next_addr is None else f"0x{self.next_addr:x}"
        return f"IRSB @ 0x{self.guest_addr:x} {{\n{body}\n   goto {nxt}\n}}"


BINOPS = {
    "add": lambda a, b: (a + b) & (2 ** 64 - 1),
    "sub": lambda a, b: (a - b) & (2 ** 64 - 1),
    "mul": lambda a, b: (a * b) & (2 ** 64 - 1),
    "cmpne": lambda a, b: int(a != b),
    "cmpeq": lambda a, b: int(a == b),
    "cmplt": lambda a, b: int(a < b),
}
