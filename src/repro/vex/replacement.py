"""Function replacement, Valgrind-style.

Tools can *replace* named guest functions.  The reproduction uses it exactly
where the paper does:

* ``malloc`` — Taskgrind wraps it to record an allocation-site stack trace per
  block (Section III-C);
* ``free`` — Taskgrind replaces it with a no-op so the allocator never
  recycles addresses (Section IV-B).

The allocator (:class:`repro.machine.allocator.Allocator`) consults this
registry on every call; library-internal allocators (the simulated
``__kmp_fast_allocate`` pool) deliberately bypass it, reproducing the paper's
future-work limitation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class ReplacementRegistry:
    """Named guest-function replacements installed by tools."""

    def __init__(self) -> None:
        self._replacements: Dict[str, Callable] = {}

    def replace(self, name: str, handler: Optional[Callable] = None) -> None:
        """Install a replacement for guest function ``name``.

        ``handler`` may be ``None`` for pure no-op replacements (the
        Taskgrind ``free`` case); its mere presence changes allocator
        behaviour.
        """
        self._replacements[name] = handler or (lambda *a, **k: None)

    def remove(self, name: str) -> None:
        self._replacements.pop(name, None)

    def is_replaced(self, name: str) -> bool:
        return name in self._replacements

    def call(self, name: str, *args, **kwargs):
        return self._replacements[name](*args, **kwargs)

    def clear(self) -> None:
        self._replacements.clear()
