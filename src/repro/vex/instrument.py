"""The instrumentation hub: every guest access flows through here.

This is the reproduction's stand-in for the VEX JIT loop: the
:class:`~repro.machine.program.GuestContext` calls :meth:`Instrumentation.access`
for each load/store, and the hub

1. validates the mapping (a bad guest access is a simulated SIGSEGV),
2. charges simulated time (base cost × the tool's per-access factor when the
   tool observes the access, plus a one-time translation charge per symbol
   for DBI tools),
3. dispatches the event to every attached tool whose visibility covers it.

Symbol filtering for Taskgrind's *ignore-list*/*instrument-list*
(Section IV-A) is deliberately **not** done here: it is tool policy, applied
inside :class:`repro.core.tool.TaskgrindTool`, exactly as in the real tool
where the core hands the tool every IR block and the plugin decides what to
instrument.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine.cost import CostModel
from repro.machine.debuginfo import SourceLocation, Symbol
from repro.machine.memory import AddressSpace
from repro.vex.events import AccessEvent
from repro.vex.tool import Tool


class Instrumentation:
    """Access funnel + tool dispatch."""

    def __init__(self, space: AddressSpace, cost: CostModel) -> None:
        self.space = space
        self.cost = cost
        self.tools: List[Tool] = []
        self.enabled = True
        self.access_count = 0
        self._all_fast = False      # every attached tool accepts raw dispatch
        # hot-path hit rates, published into the stats doc at snapshot time
        self.raw_dispatched = 0     # accesses through the no-event fast path
        self.event_dispatched = 0   # accesses through AccessEvent objects
        self.unobserved = 0         # accesses no attached tool saw

    def add_tool(self, tool: Tool) -> None:
        self.tools.append(tool)
        self._all_fast = all(t.fast_path for t in self.tools)

    # -- the hot path -------------------------------------------------------

    def access(self, addr: int, size: int, is_write: bool, *,
               thread, symbol: Symbol, loc: Optional[SourceLocation],
               atomic: bool = False, site=None) -> None:
        """Record one guest access of ``size`` bytes at ``addr``.

        ``site`` is the :class:`~repro.vex.elide.StaticSite` token attached
        to statically-elided access handles; it rides through to the tools,
        which drop the access before recording (the declaration already
        proved the runtime suppression verdict).

        Sync-only recording (``TaskgrindOptions.record_mode="sync"``, the
        two-phase first pass) changes nothing here on purpose: the tool is
        still dispatched and still *observes* every access, so the charge
        below — and with it the virtual clock and the schedule — is
        bit-identical to a full-recording run.  Only the tool-side work
        behind the dispatch collapses to a counter bump.
        """
        self.space.check_mapped(addr, size, "write" if is_write else "read")
        self.access_count += 1
        if not self.enabled:
            self.cost.charge_access(thread, size, observed=False)
            return
        if self._all_fast and not atomic:
            # raw dispatch: no AccessEvent allocation, cheaper access charge
            observed = False
            thread_id = getattr(thread, "id", -1)
            for tool in self.tools:
                if tool.sees_symbol(symbol):
                    observed = True
                    if tool.is_dbi:
                        self.cost.charge_translation(thread, symbol.name)
                    tool.on_access_raw(thread_id, addr, size, is_write,
                                       symbol, loc, site)
            if observed:
                self.raw_dispatched += 1
            else:
                self.unobserved += 1
            self.cost.charge_access(thread, size, observed=observed,
                                    fast=True)
            return
        event = AccessEvent(addr=addr, size=size, is_write=is_write,
                            thread_id=getattr(thread, "id", -1),
                            symbol=symbol, loc=loc, atomic=atomic,
                            site=site)
        observed = False
        for tool in self.tools:
            if tool.sees(event):
                observed = True
                if tool.is_dbi:
                    self.cost.charge_translation(thread, symbol.name)
                tool.on_access(event)
        if observed:
            self.event_dispatched += 1
        else:
            self.unobserved += 1
        self.cost.charge_access(thread, size, observed=observed)

    def stats(self) -> dict:
        """Hub-level dispatch mix for the stats document."""
        return {
            "accesses": self.access_count,
            "raw_dispatched": self.raw_dispatched,
            "event_dispatched": self.event_dispatched,
            "unobserved": self.unobserved,
            # dispatched but not recorded (tools in sync-only record mode)
            "sync_skipped": sum(getattr(t, "sync_skipped", 0)
                                for t in self.tools),
        }
