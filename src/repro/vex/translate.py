"""Guest ISA, translator, instrumenter, and dispatcher.

The Valgrind execution model, end to end, in miniature:

1. a *guest binary* — a program in a small RISC-like ISA, assembled by
   :class:`Assembler` into basic blocks keyed by address;
2. :func:`translate_block` — JIT the guest block to a VEX
   :class:`~repro.vex.ir.SuperBlock` (one ``IMark`` per instruction, loads
   and stores made explicit);
3. :func:`instrument_block` — the *tool pass*: a ``Dirty`` helper call is
   inserted before every ``Load``/``Store``, exactly where a Valgrind plugin
   injects its hooks;
4. :class:`GuestVM` — the dispatcher: translates blocks on first execution
   (kept in a translation cache, charging the cost model's translation
   price), then interprets the instrumented IR against the simulated
   address space — so every memory access of the "binary" flows through the
   machine's instrumentation hub even though no source was ever available.

This is what lets a benchmark embed a *binary-only library function* whose
accesses compile-time tools cannot see but DBI tools can — the paper's core
motivation (Section I).

Guest ISA (all operands are registers ``r0..r15`` unless noted)::

    li   rd, imm          load immediate
    mov  rd, rs
    add  rd, ra, rb       (also sub, mul)
    addi rd, ra, imm
    ld   rd, [ra+off]     64-bit load
    st   [ra+off], rs     64-bit store
    bne  ra, rb, label    branch if not equal
    blt  ra, rb, label
    jmp  label
    halt
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MachineError
from repro.obs.metrics import get_registry
from repro.obs.prof import get_profiler
from repro.vex.ir import (BINOPS, Binop, Const, Dirty, Exit, Expr, Get,
                          IMark, Load, Put, RdTmp, Store, SuperBlock, WrTmp)

N_REGS = 16
INSTR_LEN = 4

#: prebound hot-path counter (per executed block, so no registry lookup)
_TCACHE_HITS = get_registry().counter("vex.tcache_hits")
_PROF = get_profiler()


@dataclass(frozen=True)
class Instr:
    """One assembled guest instruction."""

    addr: int
    op: str
    args: Tuple = ()

    def __str__(self) -> str:
        return f"0x{self.addr:x}: {self.op} " + \
            ", ".join(str(a) for a in self.args)


class Assembler:
    """Two-pass assembler for the guest ISA."""

    def __init__(self, base: int = 0x40_0000) -> None:
        self.base = base

    def assemble(self, source: str) -> "GuestBinary":
        labels: Dict[str, int] = {}
        raw: List[Tuple[str, List[str]]] = []
        addr = self.base
        for line in source.splitlines():
            line = line.split(";", 1)[0].strip()
            if not line:
                continue
            if line.endswith(":"):
                labels[line[:-1]] = addr
                continue
            parts = line.replace(",", " ").split()
            raw.append((parts[0], parts[1:]))
            addr += INSTR_LEN

        def reg(tok: str) -> int:
            if not tok.startswith("r"):
                raise MachineError(f"expected register, got {tok!r}")
            return int(tok[1:])

        def imm_or_label(tok: str) -> int:
            if tok in labels:
                return labels[tok]
            return int(tok, 0)

        def memref(tok: str) -> Tuple[int, int]:
            # "[ra+off]" or "[ra]"
            inner = tok.strip("[]")
            if "+" in inner:
                r, off = inner.split("+")
                return reg(r), int(off, 0)
            if "-" in inner and not inner.startswith("r-"):
                r, off = inner.split("-")
                return reg(r), -int(off, 0)
            return reg(inner), 0

        instrs: List[Instr] = []
        addr = self.base
        for op, args in raw:
            if op == "li":
                parsed = (reg(args[0]), imm_or_label(args[1]))
            elif op == "mov":
                parsed = (reg(args[0]), reg(args[1]))
            elif op in ("add", "sub", "mul"):
                parsed = (reg(args[0]), reg(args[1]), reg(args[2]))
            elif op == "addi":
                parsed = (reg(args[0]), reg(args[1]), imm_or_label(args[2]))
            elif op == "ld":
                base_r, off = memref(args[1])
                parsed = (reg(args[0]), base_r, off)
            elif op == "st":
                base_r, off = memref(args[0])
                parsed = (base_r, off, reg(args[1]))
            elif op in ("bne", "blt"):
                parsed = (reg(args[0]), reg(args[1]), imm_or_label(args[2]))
            elif op == "jmp":
                parsed = (imm_or_label(args[0]),)
            elif op == "halt":
                parsed = ()
            else:
                raise MachineError(f"unknown mnemonic {op!r}")
            instrs.append(Instr(addr, op, parsed))
            addr += INSTR_LEN
        return GuestBinary(self.base, instrs, labels)


@dataclass
class GuestBinary:
    """An assembled guest program."""

    base: int
    instrs: List[Instr]
    labels: Dict[str, int] = field(default_factory=dict)

    def at(self, addr: int) -> Instr:
        idx = (addr - self.base) // INSTR_LEN
        if not 0 <= idx < len(self.instrs):
            raise MachineError(f"guest PC out of range: {addr:#x}")
        return self.instrs[idx]

    def block_at(self, addr: int) -> List[Instr]:
        """The basic block starting at ``addr`` (ends at any control flow)."""
        block: List[Instr] = []
        while True:
            instr = self.at(addr)
            block.append(instr)
            if instr.op in ("bne", "blt", "jmp", "halt"):
                return block
            addr += INSTR_LEN


# ---------------------------------------------------------------------------
# translation: guest block -> IR superblock
# ---------------------------------------------------------------------------

def translate_block(block: List[Instr]) -> SuperBlock:
    sb = SuperBlock(guest_addr=block[0].addr)
    for instr in block:
        sb.stmts.append(IMark(instr.addr, INSTR_LEN))
        op, a = instr.op, instr.args
        if op == "li":
            sb.stmts.append(Put(a[0], Const(a[1])))
        elif op == "mov":
            sb.stmts.append(Put(a[0], Get(a[1])))
        elif op in ("add", "sub", "mul"):
            t = sb.new_tmp()
            sb.stmts.append(WrTmp(t, Binop(op, Get(a[1]), Get(a[2]))))
            sb.stmts.append(Put(a[0], RdTmp(t)))
        elif op == "addi":
            t = sb.new_tmp()
            sb.stmts.append(WrTmp(t, Binop("add", Get(a[1]), Const(a[2]))))
            sb.stmts.append(Put(a[0], RdTmp(t)))
        elif op == "ld":
            addr_t = sb.new_tmp()
            sb.stmts.append(WrTmp(addr_t,
                                  Binop("add", Get(a[1]), Const(a[2]))))
            val_t = sb.new_tmp()
            sb.stmts.append(WrTmp(val_t, Load(RdTmp(addr_t))))
            sb.stmts.append(Put(a[0], RdTmp(val_t)))
        elif op == "st":
            addr_t = sb.new_tmp()
            sb.stmts.append(WrTmp(addr_t,
                                  Binop("add", Get(a[0]), Const(a[1]))))
            sb.stmts.append(Store(RdTmp(addr_t), Get(a[2])))
        elif op == "bne":
            t = sb.new_tmp()
            sb.stmts.append(WrTmp(t, Binop("cmpne", Get(a[0]), Get(a[1]))))
            sb.stmts.append(Exit(RdTmp(t), a[2]))
            sb.next_addr = instr.addr + INSTR_LEN
        elif op == "blt":
            t = sb.new_tmp()
            sb.stmts.append(WrTmp(t, Binop("cmplt", Get(a[0]), Get(a[1]))))
            sb.stmts.append(Exit(RdTmp(t), a[2]))
            sb.next_addr = instr.addr + INSTR_LEN
        elif op == "jmp":
            sb.next_addr = a[0]
        elif op == "halt":
            sb.next_addr = None
        else:  # pragma: no cover
            raise MachineError(f"untranslatable {op!r}")
    if block[-1].op not in ("bne", "blt", "jmp", "halt"):  # pragma: no cover
        sb.next_addr = block[-1].addr + INSTR_LEN
    return sb


# ---------------------------------------------------------------------------
# the tool pass: Dirty hooks around every Load/Store
# ---------------------------------------------------------------------------

def instrument_block(sb: SuperBlock,
                     on_access: Callable[[int, int, bool], None],
                     elider=None) -> SuperBlock:
    """Insert a Dirty call before every memory access (the plugin pass).

    With an ``elider`` (:class:`repro.vex.elide.StaticElider`), accesses the
    static pre-pass proves private get a counting **no-op** hook instead of
    the tracking call — the site never reaches the tool's recording path.
    """
    decisions = elider.classify_block(sb) if elider is not None else {}
    out = SuperBlock(guest_addr=sb.guest_addr, next_addr=sb.next_addr,
                     n_tmps=sb.n_tmps)
    for k, stmt in enumerate(sb.stmts):
        site = decisions.get(k)
        if site is not None:
            out.stmts.append(Dirty("elided_access",
                                   lambda site=site: elider.plan.note(site),
                                   ()))
        elif isinstance(stmt, WrTmp) and isinstance(stmt.expr, Load):
            out.stmts.append(Dirty("track_load", on_access,
                                   (stmt.expr.addr, Const(stmt.expr.size),
                                    Const(0))))
        elif isinstance(stmt, Store):
            out.stmts.append(Dirty("track_store", on_access,
                                   (stmt.addr, Const(stmt.size), Const(1))))
        out.stmts.append(stmt)
    return out


# ---------------------------------------------------------------------------
# the dispatcher
# ---------------------------------------------------------------------------

class GuestVM:
    """Translation-cached IR interpreter over the simulated machine.

    Every Load/Store goes through ``ctx.read_mem``/``ctx.write_mem`` — i.e.
    the machine's instrumentation hub — inside the *guest symbol* the binary
    was registered under (``instrumented=False``: no source, no compile-time
    hooks).  Registers live in a plain array, temporaries per block run.
    """

    def __init__(self, ctx, binary: GuestBinary, *,
                 symbol: str = "binary_blob",
                 library: str = "libvendor.so",
                 elider=None) -> None:
        self.ctx = ctx
        self.binary = binary
        self.symbol = symbol
        self.library = library
        self.elider = elider
        self.regs = [0] * N_REGS
        self._cache: Dict[int, SuperBlock] = {}
        self.translations = 0
        self.blocks_executed = 0

    # -- translation cache --------------------------------------------------

    def _fetch(self, addr: int) -> SuperBlock:
        sb = self._cache.get(addr)
        if sb is None:
            reg = get_registry()
            with reg.phase("vex.translate"):
                sb = translate_block(self.binary.block_at(addr))
                sb = instrument_block(sb, self._track_access,
                                      elider=self.elider)
            reg.counter("vex.translations").inc()
            reg.histogram("vex.block_stmts").observe(len(sb.stmts))
            self._cache[addr] = sb
            self.translations += 1
            if _PROF.enabled:
                # count-axis view of the JIT: one event per translated
                # SuperBlock, attributed to the block itself (the vtime
                # cost flows through charge_translation below)
                _PROF.count("translate.block", f"{self.symbol}@{addr:#x}")
            self.ctx.machine.cost.charge_translation(
                self.ctx.machine.scheduler.current(),
                f"{self.symbol}@{addr:#x}")
        else:
            _TCACHE_HITS.inc()
        return sb

    def _track_access(self, addr: int, size: int, is_write: int) -> None:
        if is_write:
            self.ctx.write_mem(addr, size)
        else:
            self.ctx.read_mem(addr, size)

    # -- evaluation ---------------------------------------------------------------

    def _eval(self, expr: Expr, tmps: List[int]) -> int:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, RdTmp):
            return tmps[expr.tmp]
        if isinstance(expr, Get):
            return self.regs[expr.reg]
        if isinstance(expr, Binop):
            return BINOPS[expr.op](self._eval(expr.a, tmps),
                                   self._eval(expr.b, tmps))
        if isinstance(expr, Load):
            addr = self._eval(expr.addr, tmps)
            # the access event was already emitted by the Dirty hook; read
            # the value store silently
            return self.ctx.machine.space.load(addr, expr.size) or 0
        raise MachineError(f"unknown expr {expr!r}")  # pragma: no cover

    def run(self, entry: Optional[int] = None, *, max_blocks: int = 100_000
            ) -> None:
        """Execute from ``entry`` (default: binary base) until halt.

        Runs inside the binary's (uninstrumented) symbol so every access the
        Dirty hooks emit carries the right provenance.
        """
        pc: Optional[int] = entry if entry is not None else self.binary.base
        with self.ctx.function(self.symbol, instrumented=False,
                               library=self.library):
            while pc is not None:
                self.blocks_executed += 1
                if self.blocks_executed > max_blocks:
                    raise MachineError("guest VM block budget exhausted "
                                       "(infinite loop?)")
                sb = self._fetch(pc)
                tmps = [0] * max(sb.n_tmps, 1)
                next_pc = sb.next_addr
                for stmt in sb.stmts:
                    if isinstance(stmt, IMark):
                        self.ctx.compute(1.0)
                    elif isinstance(stmt, WrTmp):
                        tmps[stmt.tmp] = self._eval(stmt.expr, tmps)
                    elif isinstance(stmt, Put):
                        self.regs[stmt.reg] = self._eval(stmt.expr, tmps)
                    elif isinstance(stmt, Store):
                        addr = self._eval(stmt.addr, tmps)
                        value = self._eval(stmt.data, tmps)
                        self.ctx.machine.space.store(addr, stmt.size, value)
                    elif isinstance(stmt, Dirty):
                        args = [self._eval(a, tmps) for a in stmt.args]
                        stmt.callback(*args)
                    elif isinstance(stmt, Exit):
                        if self._eval(stmt.guard, tmps):
                            next_pc = stmt.target
                            break
                pc = next_pc
