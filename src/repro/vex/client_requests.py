"""Client requests: the guest-to-tool side channel.

Valgrind client requests let the instrumented program (or code injected into
it, like Taskgrind's built-in OMPT tool) hand structured information to the
tool plugin.  Here a request is a ``(name, payload)`` pair; the router
dispatches it to every registered tool that handles the name.

Request names used by the shims in :mod:`repro.core`:

=====================  ========================================================
name                   payload
=====================  ========================================================
``segment_begin``      dict describing the new segment (task, thread, kind...)
``segment_end``        dict with the completed segment id + TLS/stack snapshot
``hb_edge``            ``(src_segment_id, dst_segment_id, why)``
``parallel_begin``     parallel region descriptor
``parallel_end``       region id
``task_annotate``      user annotation, e.g. semantically-deferrable (Table II)
=====================  ========================================================
"""

from __future__ import annotations

from typing import Dict, List


class ClientRequestRouter:
    """Dispatches ``(name, payload)`` requests to subscribed tools."""

    def __init__(self) -> None:
        self._handlers: Dict[str, List] = {}
        self.request_count = 0

    def subscribe(self, name: str, handler) -> None:
        self._handlers.setdefault(name, []).append(handler)

    def unsubscribe_all(self, handler_owner) -> None:
        for handlers in self._handlers.values():
            handlers[:] = [h for h in handlers
                           if getattr(h, "__self__", None) is not handler_owner]

    def request(self, name: str, payload=None):
        """Issue a client request; returns the last non-None handler result."""
        self.request_count += 1
        result = None
        for handler in self._handlers.get(name, ()):
            r = handler(payload)
            if r is not None:
                result = r
        return result
