"""Event records emitted by the instrumentation layer.

An :class:`AccessEvent` is the simulated equivalent of one instrumented VEX
load/store (possibly covering a dense byte range — the same compaction the
paper's interval trees perform).  It carries everything a tool may condition
on: the executing simulated thread, the enclosing symbol and its
instrumentation provenance, and the source location if debug info is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.machine.debuginfo import SourceLocation, Symbol


@dataclass(frozen=True)
class AccessEvent:
    """One guest memory access of ``size`` bytes at ``addr``."""

    addr: int
    size: int
    is_write: bool
    thread_id: int
    symbol: Symbol                      # enclosing guest function
    loc: Optional[SourceLocation]       # precise file:line, if any
    atomic: bool = False                # issued via an atomic construct
    site: Optional[object] = None       # StaticSite when the access flows
                                        # through an elided declared handle

    @property
    def end(self) -> int:
        return self.addr + self.size

    @property
    def kind(self) -> str:
        return "write" if self.is_write else "read"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f" at {self.loc}" if self.loc else ""
        return (f"{self.kind}[{self.addr:#x}+{self.size}] "
                f"t{self.thread_id} in {self.symbol.name}{where}")


@dataclass(frozen=True)
class AllocEvent:
    """A heap allocation, as seen by the (possibly wrapping) tool."""

    addr: int
    size: int
    thread_id: int
    seq: int
    site: Optional[SourceLocation]
    stack: Tuple[SourceLocation, ...]


@dataclass(frozen=True)
class FreeEvent:
    """A heap deallocation; ``retained`` when a tool no-op'd it."""

    addr: int
    size: int
    thread_id: int
    seq: int
    retained: bool
