"""Base class for analysis tools (Valgrind plugins *and* compile-time tools).

Every comparator in the paper's evaluation is modeled as a :class:`Tool`:

* DBI tools (``Taskgrind``, ``ROMP``) set ``is_dbi = True`` — they observe
  every access, including those in uninstrumented symbols.
* Compile-time tools (``Archer``/TSan, ``TaskSanitizer``) observe only
  accesses whose enclosing symbol has ``instrumented=True`` — the mechanism
  behind the paper's false-negative discussion.
* ``compile_check`` models the compiler front-end: TaskSanitizer's Clang 8
  rejects newer OpenMP constructs, producing the ``ncs`` cells of Table I.

The lifecycle mirrors a Valgrind tool: ``attach`` wires the tool into the
machine (client requests, replacements, OMPT); per-event callbacks fire during
the run; ``finalize`` runs post-mortem analysis and returns the list of race
reports the benchmark runner classifies against ground truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.machine.cost import ToolCost
from repro.vex.events import AccessEvent, AllocEvent, FreeEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine


class Tool:
    """Lifecycle + observation interface for one analysis tool."""

    #: Human-readable tool name (used in harness tables).
    name: str = "nulgrind"
    #: True for dynamic *binary* instrumentation: sees every access.
    is_dbi: bool = False
    #: True when the tool accepts raw access dispatch (:meth:`on_access_raw`)
    #: — lets the hub skip :class:`AccessEvent` allocation on the hot path.
    fast_path: bool = False
    #: Simulated time/memory behaviour (see :class:`repro.machine.cost.ToolCost`).
    cost = ToolCost()

    def __init__(self) -> None:
        self.machine: Optional["Machine"] = None

    # -- compile-time gate ----------------------------------------------------

    def compile_check(self, program) -> None:
        """Raise :class:`repro.errors.NoCompilerSupport` on rejected constructs.

        ``program`` exposes ``required_features`` (a set of construct tags);
        the default accepts everything.
        """

    # -- lifecycle ---------------------------------------------------------------

    def attach(self, machine: "Machine") -> None:
        """Wire the tool into the machine before the guest starts."""
        self.machine = machine

    def detach(self) -> None:
        self.machine = None

    def finalize(self) -> List:
        """Post-execution analysis; returns the tool's race reports."""
        return []

    # -- visibility ---------------------------------------------------------------

    def sees(self, event: AccessEvent) -> bool:
        """Whether this tool observes ``event`` (DBI vs compile-time scope)."""
        return self.is_dbi or event.symbol.instrumented

    def sees_symbol(self, symbol) -> bool:
        """:meth:`sees` without an event object (the raw fast path)."""
        return self.is_dbi or symbol.instrumented

    # -- event callbacks --------------------------------------------------------

    def on_access(self, event: AccessEvent) -> None:
        """Called for every access the tool *sees* (per :meth:`sees`)."""

    def on_access_raw(self, thread_id: int, addr: int, size: int,
                      is_write: bool, symbol, loc, site=None) -> None:
        """Raw fast-path observation (only when ``fast_path`` is True).

        Semantically identical to :meth:`on_access` but the hub passes the
        fields directly instead of allocating an :class:`AccessEvent` per
        access — the dominant Python-side cost of the hot loop.  ``site``
        carries the static-elision token of declared private handles (see
        :mod:`repro.vex.elide`).
        """

    def on_alloc(self, event: AllocEvent) -> None:
        """Heap allocation (fires for all tools; wrapping is separate)."""

    def on_free(self, event: FreeEvent) -> None:
        """Heap deallocation."""

    def on_thread_start(self, thread_id: int) -> None:
        """A simulated thread came to life."""

    def on_thread_exit(self, thread_id: int) -> None:
        """A simulated thread finished."""

    def memory_bytes(self, app_bytes: int = 0) -> int:
        """Simulated bytes of tool metadata at end of run (for Table II).

        ``app_bytes`` is the application-side footprint (including the
        process image); tools whose overhead scales with it — TSan shadow
        maps everything the process touches — use it.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Tool {self.name}>"


class NullTool(Tool):
    """The no-instrumentation baseline ("No tools" columns of Table II)."""

    name = "none"
    cost = ToolCost(access_factor=1.0, serialize=False)
