"""Workloads: the LULESH proxy app and synthetic task benchmarks."""

from repro.workloads.lulesh import LuleshConfig, run_lulesh

__all__ = ["LuleshConfig", "run_lulesh"]
