"""Synthetic task workloads: fib, 1-D heat diffusion, scratch, n-queens.

Small, self-checking task kernels used by the stress tests and extra
benchmarks.  Each has a correct version and (where meaningful) a racy
variant with one synchronisation removed, so they double as detector
fixtures beyond the DRB/TMB suites.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.openmp.api import OmpEnv


# ---------------------------------------------------------------------------
# fib: nested task recursion (taskwait joins)
# ---------------------------------------------------------------------------

def omp_fib(env: OmpEnv, n: int, *, cutoff: int = 4) -> int:
    """Task-recursive Fibonacci with sequential cutoff."""
    ctx = env.ctx
    box = {}

    def fib(k: int) -> int:
        if k < cutoff:
            a, b = 0, 1
            for _ in range(k):
                a, b = b, a + b
            ctx.compute(float(k))
            return a
        out = {}

        def left(tv):
            out["l"] = fib(k - 1)

        def right(tv):
            out["r"] = fib(k - 2)

        env.task(left, name=f"fib{k}l")
        env.task(right, name=f"fib{k}r")
        env.taskwait()
        return out["l"] + out["r"]

    def body():
        box["result"] = fib(n)
    env.parallel_single(body)
    return box["result"]


def fib_reference(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


# ---------------------------------------------------------------------------
# heat: iterative stencil with dependence-chained chunk tasks
# ---------------------------------------------------------------------------

def omp_heat(env: OmpEnv, n: int = 64, steps: int = 8, chunks: int = 4, *,
             racy: bool = False, alpha: float = 0.25) -> np.ndarray:
    """1-D explicit heat diffusion; ``racy`` drops the halo dependences.

    Double-buffered: each step's chunk task reads ``src`` (with halo) and
    writes ``dst``; per-chunk dependence tokens order step k's reads after
    step k-1's writes.  Removing the halo tokens makes boundary reads race.
    """
    ctx = env.ctx
    src = ctx.malloc(8 * n, elem=8, name="heat_src")
    dst = ctx.malloc(8 * n, elem=8, name="heat_dst")
    data = [np.zeros(n), np.zeros(n)]
    data[0][n // 2] = 100.0                      # hot spot
    bounds = [(i * n // chunks, (i + 1) * n // chunks)
              for i in range(chunks)]

    def body():
        for step in range(steps):
            cur, nxt = data[step % 2], data[(step + 1) % 2]
            cur_buf = src if step % 2 == 0 else dst
            nxt_buf = dst if step % 2 == 0 else src
            for c, (lo, hi) in enumerate(bounds):
                def kernel(tv, lo=lo, hi=hi, cur=cur, nxt=nxt,
                           cur_buf=cur_buf, nxt_buf=nxt_buf):
                    cur_buf.read_range(max(0, lo - 1), min(n, hi + 1),
                                       line=20)
                    # neighbours clamp at the *global* edges only
                    left = cur[np.clip(np.arange(lo - 1, hi - 1), 0, n - 1)]
                    right = cur[np.clip(np.arange(lo + 1, hi + 1), 0, n - 1)]
                    nxt[lo:hi] = cur[lo:hi] + alpha * (
                        left - 2 * cur[lo:hi] + right)
                    nxt_buf.write_range(lo, hi, line=24)
                    ctx.compute(float(hi - lo) * 6)

                in_chunks = [c] if racy else \
                    [i for i in (c - 1, c, c + 1) if 0 <= i < chunks]
                depend = {
                    "in": [cur_buf.index_addr(0) + i for i in in_chunks],
                    "out": [nxt_buf.index_addr(0) + c],
                }
                ctx.line(30 + c)
                env.task(kernel, depend=depend, name=f"heat.s{step}.c{c}",
                         annotate_deferrable=True)
        env.taskwait()

    env.parallel_single(body)
    return data[steps % 2]


def heat_reference(n: int = 64, steps: int = 8,
                   alpha: float = 0.25) -> np.ndarray:
    cur = np.zeros(n)
    cur[n // 2] = 100.0
    for _ in range(steps):
        left = np.concatenate(([cur[0]], cur[:-1]))
        right = np.concatenate((cur[1:], [cur[-1]]))
        cur = cur + alpha * (left - 2 * cur + right)
    return cur


# ---------------------------------------------------------------------------
# scratch: private stack slots — the access-elision showcase
# ---------------------------------------------------------------------------

def omp_scratch(env: OmpEnv, tasks: int = 8, iters: int = 64) -> int:
    """Independent tasks, each hammering a ``private=True`` stack slot.

    Every task allocates a compiler-proved non-escaping scratch variable
    and read-modify-writes it ``iters`` times before publishing one sum
    into its own result cell.  With elision on (the default) the scratch
    traffic lands in the ``elide.noop`` bucket of the attribution
    profiler; with ``elide_sites=False`` the same accesses pay the full
    recording path — which is exactly the before/after pair
    ``repro profile diff`` exists to explain.
    """
    ctx = env.ctx
    result = ctx.malloc(8 * tasks, elem=8, name="scratch_result")
    sums: List[int] = [0] * tasks

    def body():
        for t in range(tasks):
            def task_body(tv, t=t):
                acc = ctx.stack_var("acc", 8, elem=8, private=True)
                total = 0
                for i in range(iters):
                    acc.write(0, i, line=10)
                    total += acc.read(0, line=11)
                sums[t] = total
                result.write(t, total, line=13)
                ctx.compute(float(iters))
            ctx.line(5 + t)
            env.task(task_body, name=f"scratch{t}")
        env.taskwait()

    env.parallel_single(body)
    return sum(sums)


def scratch_reference(tasks: int = 8, iters: int = 64) -> int:
    return tasks * sum(range(iters))


# ---------------------------------------------------------------------------
# n-queens: irregular task tree with a shared counter
# ---------------------------------------------------------------------------

def omp_nqueens(env: OmpEnv, n: int = 6, *, racy: bool = False) -> int:
    """Count n-queens solutions with one task per first-row placement.

    The correct version accumulates per-task partials and reduces after the
    taskwait; the racy variant has every task read-modify-write the shared
    counter directly.
    """
    ctx = env.ctx
    counter = ctx.malloc(8, elem=8, name="nq_counter")
    counter.write(0, 0, line=3)
    partials: List[int] = [0] * n

    def solve(cols: int, diag1: int, diag2: int, row: int) -> int:
        if row == n:
            return 1
        total = 0
        free = ~(cols | diag1 | diag2) & ((1 << n) - 1)
        while free:
            bit = free & -free
            free -= bit
            total += solve(cols | bit, (diag1 | bit) << 1,
                           (diag2 | bit) >> 1, row + 1)
        return total

    def body():
        for first in range(n):
            def task_body(tv, first=first):
                bit = 1 << first
                count = solve(bit, bit << 1, bit >> 1, 1)
                ctx.compute(200.0)
                if racy:
                    counter.write(0, counter.read(0, line=12) + count,
                                  line=12)
                else:
                    partials[first] = count
            ctx.line(8 + first)
            env.task(task_body, name=f"nq{first}", annotate_deferrable=True)
        env.taskwait()
        if not racy:
            counter.write(0, sum(partials), line=20)

    env.parallel_single(body)
    return counter.read(0)


NQUEENS_SOLUTIONS = {4: 2, 5: 10, 6: 4, 7: 40, 8: 92}
