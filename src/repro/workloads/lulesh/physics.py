"""Simplified Lagrangian hydro kernels (banded-stencil form).

Each kernel processes one chunk ``[lo, hi)`` of a field: it reads its inputs
(with a one-element halo where the real code gathers over the element-node
connectivity), computes with numpy, writes its output slice, and charges the
cost model with a per-element flop count in the right ballpark for LULESH.

The kernels are deliberately *determinate*: given the same input chunking
they produce the same field values in any task order — unless the racy
variant drops the halo dependences, in which case the values genuinely depend
on the schedule (verified in ``tests/workloads/test_lulesh.py``).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.lulesh.mesh import Mesh

#: non-memory op charge per element per kernel (cost-model units; paired
#: with ~12 access ops per element so memory traffic is ~55% of the mix,
#: the ratio that reproduces the paper's tool slowdowns)
FLOPS_PER_ELEM = 10.0
DT = 1.0e-7
Q_COEF = 2.0
EOS_GAMMA = 1.4e-6


def _charge(ctx, lo: int, hi: int) -> None:
    ctx.compute((hi - lo) * FLOPS_PER_ELEM)


def calc_force(ctx, mesh: Mesh, lo: int, hi: int) -> None:
    """Nodal force from the pressure gradient (halo read of p)."""
    p = mesh.p
    left = p.read(max(0, lo - 1), min(p.n, hi - 1), line=101)
    right = p.read(min(lo + 1, p.n), min(p.n, hi + 1), line=102)
    width = hi - lo
    grad = np.zeros(width)
    grad[:len(left)] -= left[:width]
    grad[:len(right)] += right[:width]
    mesh.fx.write(lo, hi, -grad, line=103)
    _charge(ctx, lo, hi)


def calc_accel_vel(ctx, mesh: Mesh, lo: int, hi: int) -> None:
    """a = F/m; v += a dt."""
    f = mesh.fx.read(lo, hi, line=111)
    m = mesh.nodal_mass.read(lo, hi, line=112)
    mesh.xdd.write(lo, hi, f / m, line=113)
    a = mesh.xdd.read(lo, hi, line=114)
    mesh.xd.rmw(lo, hi, lambda v: v + a * DT, line=115)
    _charge(ctx, lo, hi)


def calc_position(ctx, mesh: Mesh, lo: int, hi: int) -> None:
    """x += v dt."""
    v = mesh.xd.read(lo, hi, line=121)
    mesh.x.rmw(lo, hi, lambda x: x + v * DT, line=122)
    _charge(ctx, lo, hi)


def calc_kinematics(ctx, mesh: Mesh, lo: int, hi: int, *,
                    halo: bool = True) -> None:
    """delv = div(v) over the element chunk (halo read of xd)."""
    rlo = lo - 1 if halo else lo
    rhi = hi + 1 if halo else hi
    v = mesh.xd.read(max(0, rlo), min(mesh.xd.n, rhi), line=131)
    width = hi - lo
    dv = np.zeros(width)
    if len(v) >= 2:
        d = np.diff(v)
        dv[:min(width, len(d))] = d[:width]
    mesh.delv.write(lo, hi, dv, line=132)
    _charge(ctx, lo, hi)


def calc_q(ctx, mesh: Mesh, lo: int, hi: int) -> None:
    """Artificial viscosity from the velocity divergence."""
    dv = mesh.delv.read(lo, hi, line=141)
    q = np.where(dv < 0.0, Q_COEF * dv * dv, 0.0)
    mesh.q.write(lo, hi, q, line=142)
    _charge(ctx, lo, hi)


def apply_material(ctx, mesh: Mesh, lo: int, hi: int) -> None:
    """EOS: update energy and pressure."""
    dv = mesh.delv.read(lo, hi, line=151)
    q = mesh.q.read(lo, hi, line=152)
    e = mesh.e.read(lo, hi, line=153)
    e_new = np.maximum(e - 0.5 * dv * (e * EOS_GAMMA + q), 0.0)
    mesh.e.write(lo, hi, e_new, line=154)
    mesh.p.write(lo, hi, EOS_GAMMA * e_new, line=155)
    mesh.ss.write(lo, hi, np.sqrt(np.abs(EOS_GAMMA * e_new) + 1e-30),
                  line=156)
    _charge(ctx, lo, hi)


def update_volume(ctx, mesh: Mesh, lo: int, hi: int) -> None:
    """v *= (1 + delv), clipped to stay physical."""
    dv = mesh.delv.read(lo, hi, line=161)
    mesh.v.rmw(lo, hi, lambda v: np.clip(v * (1.0 + dv), 0.1, 10.0),
               line=162)
    _charge(ctx, lo, hi)


#: (name, kernel, field domain, writes-token fields, halo-read fields)
NODAL_PHASES = [
    ("force", calc_force, "node", ("fx",), ("p",)),
    ("accelvel", calc_accel_vel, "node", ("xdd", "xd"), ()),
    ("position", calc_position, "node", ("x",), ()),
]

ELEMENTAL_PHASES = [
    ("kinematics", calc_kinematics, "elem", ("delv",), ("xd",)),
    ("q", calc_q, "elem", ("q",), ()),
    ("material", apply_material, "elem", ("e", "p", "ss"), ()),
    ("volume", update_volume, "elem", ("v",), ()),
]
