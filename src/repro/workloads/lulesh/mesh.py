"""Mesh fields: numpy-backed arrays registered in simulated memory.

A :class:`Field` owns a heap allocation in the simulated address space (so
race analysis sees real addresses, allocation sites and block metadata) and a
numpy array holding the actual values (so the proxy physics computes real
numbers).  Slice reads/writes emit one dense interval access event each —
the access pattern the paper's interval trees compact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.machine.program import Buffer, GuestContext

ELEM_BYTES = 8


class Field:
    """One mesh field: simulated allocation + numpy payload."""

    def __init__(self, ctx: GuestContext, name: str, n: int,
                 init: float = 0.0, line: int = 0) -> None:
        self.ctx = ctx
        self.name = name
        self.n = n
        self.buf: Buffer = ctx.malloc(n * ELEM_BYTES, name=name,
                                      elem=ELEM_BYTES, line=line)
        self.data = np.full(n, init, dtype=np.float64)

    # -- dependence tokens --------------------------------------------------

    def dep_token(self, chunk: int) -> int:
        """Canonical depend-clause address for (field, chunk)."""
        return self.buf.addr + chunk

    # -- instrumented slice access -------------------------------------------

    def read(self, lo: int, hi: int, *, line: Optional[int] = None
             ) -> np.ndarray:
        lo, hi = max(0, lo), min(self.n, hi)
        if hi <= lo:
            return self.data[0:0]
        self.buf.read_range(lo, hi, line=line)
        return self.data[lo:hi]

    def write(self, lo: int, hi: int, values, *,
              line: Optional[int] = None) -> None:
        lo, hi = max(0, lo), min(self.n, hi)
        if hi <= lo:
            return
        self.buf.write_range(lo, hi, line=line)
        self.data[lo:hi] = values

    def rmw(self, lo: int, hi: int, fn, *, line: Optional[int] = None) -> None:
        """Read-modify-write of a slice (one read + one write event)."""
        lo, hi = max(0, lo), min(self.n, hi)
        if hi <= lo:
            return
        self.buf.read_range(lo, hi, line=line)
        self.buf.write_range(lo, hi, line=line)
        self.data[lo:hi] = fn(self.data[lo:hi])


class Mesh:
    """The problem state: O(s^3) elements, ~18 fields (nodal + elemental)."""

    NODAL = ("x", "xd", "xdd", "fx", "fy", "fz", "nodal_mass")
    ELEMENTAL = ("e", "p", "q", "v", "delv", "vdov", "arealg", "ss",
                 "elem_mass", "vnew", "qq", "ql")

    def __init__(self, ctx: GuestContext, s: int) -> None:
        self.ctx = ctx
        self.s = s
        self.numelem = s ** 3
        self.numnode = (s + 1) ** 3
        self.fields: Dict[str, Field] = {}
        line = 30
        for name in self.NODAL:
            init = 1.0 if name == "nodal_mass" else 0.0
            self.fields[name] = Field(ctx, name, self.numnode, init=init,
                                      line=line)
            line += 1
        for name in self.ELEMENTAL:
            init = 1.0 if name in ("v", "elem_mass") else 0.0
            self.fields[name] = Field(ctx, name, self.numelem, init=init,
                                      line=line)
            line += 1
        # deposit the initial energy at the origin (the LULESH Sedov setup)
        self.fields["e"].data[0] = 3.948746e7

    def __getattr__(self, name: str) -> Field:
        fields = object.__getattribute__(self, "__dict__").get("fields")
        if fields and name in fields:
            return fields[name]
        raise AttributeError(name)

    def origin_energy(self) -> float:
        """Final energy of the origin element (LULESH's check figure)."""
        return float(self.fields["e"].data[0])

    @staticmethod
    def chunks(n: int, parts: int) -> List[Tuple[int, int]]:
        """Split ``[0, n)`` into ``parts`` contiguous chunks."""
        size = (n + parts - 1) // parts
        return [(i, min(i + size, n)) for i in range(0, n, size)]
