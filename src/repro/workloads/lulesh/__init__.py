"""Dependent task-based LULESH proxy (paper Section V-B).

The paper evaluates on an OpenMP dependent-task port of LULESH with options
``-s`` (mesh size; O(s^3) time and memory), ``-tel``/``-tnl`` (tasks per
elemental/nodal loop), ``-i`` (iterations) and ``-p`` (progress), plus a
*racy* variant obtained by removing one task dependence.

This proxy keeps exactly what the evaluation needs:

* the O(s^3) field footprint and per-iteration work,
* the dependent-taskloop structure (halo reads -> in-deps on neighbour
  chunks, chunk writes -> out-deps),
* the *deferrable* Taskgrind annotation on every task (the paper's
  annotation, and the trigger of the modeled 4-thread Taskgrind lock-up),
* the racy variant: the kinematics phase drops its halo in-dependences, so
  chunk tasks read velocity halos concurrently with the neighbour chunk's
  position-phase writes.

The hydro math is a banded-stencil simplification computed with numpy (real
values flow through the fields; ``origin_energy`` is checkable in tests),
while memory traffic is recorded as dense interval accesses — the same
compaction the paper's interval trees apply.
"""

from repro.workloads.lulesh.driver import LuleshConfig, run_lulesh
from repro.workloads.lulesh.mesh import Mesh

__all__ = ["LuleshConfig", "run_lulesh", "Mesh"]
