"""LULESH proxy driver: the dependent-taskloop structure + CLI options.

Mirrors the paper's invocation ``-s $s -tel 4 -tnl 4 -p -i 4``:

* per iteration, one parallel region whose ``single`` creates, for every
  phase, one task per chunk (``tnl`` chunks for nodal loops, ``tel`` for
  elemental ones) with ``depend`` clauses derived from the fields each
  kernel reads (with halo) and writes;
* every task carries the Taskgrind *deferrable* annotation (the paper
  annotated the code so single-thread serialization does not hide the task
  graph);
* the force phase allocates and frees per-iteration scratch arrays the way
  LULESH's hourglass-control code does — under Taskgrind's no-op ``free``
  these are retained, which is the paper's 6x memory-overhead mechanism;
* ``racy=True`` removes the kinematics phase's halo in-dependences (the
  paper: "removing a task dependence to introduce data races
  intentionally"), making the velocity halo reads race with the neighbour
  chunk's writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.openmp.api import OmpEnv
from repro.workloads.lulesh.mesh import ELEM_BYTES, Mesh
from repro.workloads.lulesh.physics import ELEMENTAL_PHASES, NODAL_PHASES

#: scratch doubles allocated per element per iteration by the force phase
#: (LULESH's CalcHourglassControlForElems allocates 8-per-node gradients +
#: per-element work arrays)
SCRATCH_DOUBLES_PER_ELEM = 64


@dataclass
class LuleshConfig:
    """The paper's CLI options."""

    s: int = 16                 # mesh size (-s): O(s^3) work and memory
    tel: int = 4                # tasks per elemental loop (-tel)
    tnl: int = 4                # tasks per nodal loop (-tnl)
    iterations: int = 4         # -i
    progress: bool = False      # -p
    racy: bool = False          # remove one dependence class
    annotate: bool = True       # Taskgrind deferrable annotation


def _overlapping_chunks(src_parts: int, dst_parts: int, c: int,
                        halo: bool) -> List[int]:
    """Indices of src-domain chunks a dst-domain chunk (+halo) touches."""
    lo = (c * src_parts) // dst_parts
    hi = ((c + 1) * src_parts - 1) // dst_parts
    if halo:
        lo, hi = lo - 1, hi + 1
    return [i for i in range(lo, hi + 1) if 0 <= i < src_parts]


def _phase_tasks(env: OmpEnv, mesh: Mesh, cfg: LuleshConfig,
                 phases, parts: int, n: int, *, line0: int) -> None:
    """Create the dependent tasks of one phase group."""
    ctx = env.ctx
    chunks = Mesh.chunks(n, parts)
    for pidx, (pname, kernel, _domain, writes, halo_reads) in enumerate(phases):
        reads = _phase_reads(pname)
        for c, (lo, hi) in enumerate(chunks):
            in_tokens: List[int] = []
            for fname in reads:
                field = mesh.fields[fname]
                src_parts = cfg.tnl if field.n == mesh.numnode else cfg.tel
                is_halo = fname in halo_reads
                if cfg.racy and pname == "kinematics" and is_halo:
                    # the intentionally-removed dependence: only the local
                    # chunk is declared, the halo read is unprotected
                    is_halo = False
                for sc in _overlapping_chunks(src_parts, parts, c, is_halo):
                    in_tokens.append(mesh.fields[fname].dep_token(sc))
            out_tokens = [mesh.fields[w].dep_token(c) for w in writes]
            ctx.line(line0 + pidx)

            def body(tv, kernel=kernel, lo=lo, hi=hi, pname=pname):
                if pname == "force":
                    _force_scratch(env, mesh, lo, hi)
                kernel(ctx, mesh, lo, hi)

            env.task(body, depend={"in": in_tokens, "out": out_tokens},
                     name=f"lulesh.{pname}",
                     annotate_deferrable=cfg.annotate)


def _phase_reads(pname: str) -> Tuple[str, ...]:
    """Input fields per kernel (matches the kernels in physics.py)."""
    return {
        "force": ("p",),
        "accelvel": ("fx", "nodal_mass", "xd"),
        "position": ("xd", "x"),
        "kinematics": ("xd",),
        "q": ("delv",),
        "material": ("delv", "q", "e"),
        "volume": ("delv", "v"),
    }[pname]


def _force_scratch(env: OmpEnv, mesh: Mesh, lo: int, hi: int) -> None:
    """Per-task scratch arrays, allocated and freed like LULESH's hourglass
    gradients.  Taskgrind's no-op free retains every one of them.

    The buffer element width is one cacheline: streaming writes through
    scratch run at line granularity, keeping the force phase ~3-5x the other
    kernels (as in LULESH) instead of drowning them.
    """
    ctx = env.ctx
    nbytes = (hi - lo) * SCRATCH_DOUBLES_PER_ELEM * ELEM_BYTES
    lines = max(1, nbytes // 64)
    scratch = ctx.malloc(max(nbytes, 64), name="hg_scratch",
                         elem=64, line=171)
    scratch.write_range(0, lines, line=172)
    scratch.read_range(0, lines, line=173)
    ctx.free(scratch)


def run_lulesh(env: OmpEnv, cfg: LuleshConfig) -> Mesh:
    """Run the proxy; returns the mesh (for energy checks)."""
    ctx = env.ctx
    with ctx.function("lulesh_main", file="lulesh.cc", line=2):
        mesh = Mesh(ctx, cfg.s)
        for it in range(cfg.iterations):
            def single_body() -> None:
                _phase_tasks(env, mesh, cfg, NODAL_PHASES, cfg.tnl,
                             mesh.numnode, line0=100)
                _phase_tasks(env, mesh, cfg, ELEMENTAL_PHASES, cfg.tel,
                             mesh.numelem, line0=130)
                env.taskwait()
            ctx.line(50 + it)
            env.parallel_single(single_body, num_threads=env.nthreads)
            if cfg.progress:
                ctx.compute(10.0)        # the -p progress printf
    return mesh
