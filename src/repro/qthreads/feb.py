"""Full/empty bits: the Qthreads synchronisation primitive.

Every 8-byte word can carry a *full* bit; ``writeEF`` blocks until the word
is empty, writes, and marks it full; ``readFE`` blocks until full, reads,
and marks it empty; ``readFF`` reads without consuming.  This is classic
M-structure/I-structure synchronisation (Tera MTA lineage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class FebWord:
    """The synchronisation state of one address."""

    full: bool = False
    value: object = None
    #: monotonically increasing transfer counter (tools key HB edges on it)
    generation: int = 0


class FebTable:
    """FEB state per address (the runtime's hashed FEB table)."""

    def __init__(self) -> None:
        self._words: Dict[int, FebWord] = {}

    def word(self, addr: int) -> FebWord:
        w = self._words.get(addr)
        if w is None:
            w = self._words[addr] = FebWord()
        return w

    def is_full(self, addr: int) -> bool:
        return self.word(addr).full

    def fill(self, addr: int, value: object) -> int:
        """Mark full with ``value``; returns the new generation."""
        w = self.word(addr)
        w.full = True
        w.value = value
        w.generation += 1
        return w.generation

    def drain(self, addr: int) -> object:
        """Mark empty; returns the stored value."""
        w = self.word(addr)
        w.full = False
        return w.value

    def peek(self, addr: int) -> object:
        return self.word(addr).value

    @property
    def tracked_words(self) -> int:
        return len(self._words)
