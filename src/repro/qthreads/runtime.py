"""Qthreads-style runtime: fork + FEB synchronisation over the worker pool."""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.machine.machine import Machine
from repro.machine.program import Buffer, GuestContext
from repro.machine.threads import ThreadState
from repro.qthreads.feb import FebTable


class QthreadsObserver:
    """Tool callbacks (what a Qthreads shim would hook)."""

    def on_fork(self, parent: Optional["QTask"], child: "QTask",
                thread_id: int) -> None: ...
    def on_task_begin(self, task: "QTask", thread_id: int) -> None: ...
    def on_task_end(self, task: "QTask", thread_id: int) -> None: ...
    def on_feb_fill(self, addr: int, generation: int,
                    thread_id: int) -> None: ...
    def on_feb_consume(self, addr: int, generation: int, thread_id: int,
                       drained: bool) -> None: ...


@dataclass
class QTask:
    """One qthread (a lightweight task)."""

    qid: int
    fn: Callable
    args: tuple
    parent: Optional["QTask"]
    name: str = ""
    done: bool = False
    result: object = None
    exec_thread: int = -1
    create_loc: object = None

    def label(self) -> str:
        loc = f" @ {self.create_loc}" if self.create_loc else ""
        return f"{self.name}{loc}"

    def __hash__(self) -> int:
        return self.qid


class QthreadsEnv:
    """The runtime instance bound to one guest run."""

    #: the shepherd queue is strict FIFO — no scheduler randomness beyond
    #: the simulator's own sched.* streams (see OmpRuntime.SCHED_STREAMS)
    SCHED_STREAMS: tuple = ()

    def __init__(self, ctx: GuestContext, *, nworkers: int = 4) -> None:
        self.ctx = ctx
        self.machine = ctx.machine
        self.nworkers = nworkers
        self.feb = FebTable()
        self.observers: List[QthreadsObserver] = []
        self._queue: collections.deque = collections.deque()
        self._task_stack: Dict[int, List[QTask]] = {}
        self._next_qid = 0
        self._outstanding = 0
        self._shutdown = False

    def register(self, observer: QthreadsObserver) -> None:
        self.observers.append(observer)

    def _emit(self, method: str, *args) -> None:
        for obs in self.observers:
            getattr(obs, method)(*args)

    def _tid(self) -> int:
        return self.machine.scheduler.current_id()

    def current_task(self) -> Optional[QTask]:
        stack = self._task_stack.get(self._tid())
        return stack[-1] if stack else None

    # -- program entry -----------------------------------------------------------

    def run(self, fn: Callable, *args) -> object:
        """Run ``fn(*args)`` as the main qthread with the pool active."""
        workers = [self.machine.new_thread(self._worker_loop,
                                           name=f"qt.shep{w}")
                   for w in range(1, self.nworkers)]
        main_task = self._make_task(fn, args, name="qthread_main")
        self._outstanding += 1
        result = self._execute(main_task)
        # wait for every forked qthread, then shut the shepherds down
        self.machine.scheduler.block_until(
            lambda: self._outstanding == 0, "qthreads drain")
        self._shutdown = True
        self.machine.scheduler.block_until(
            lambda: all(t.state == ThreadState.DONE for t in workers),
            "qthreads pool shutdown")
        return result

    def _worker_loop(self) -> None:
        while not self._shutdown:
            if self._queue:
                self._execute(self._queue.popleft())
            else:
                self.machine.scheduler.block_until(
                    lambda: self._shutdown or bool(self._queue),
                    "qthreads idle shepherd")

    # -- fork -----------------------------------------------------------------------

    def _make_task(self, fn, args, name="") -> QTask:
        task = QTask(qid=self._next_qid, fn=fn, args=tuple(args),
                     parent=self.current_task(),
                     name=name or f"qthread{self._next_qid}",
                     create_loc=self.ctx.current_location
                     if self._task_stack.get(self._tid()) else None)
        self._next_qid += 1
        return task

    def fork(self, fn: Callable, *args, name: str = "") -> QTask:
        """``qthread_fork`` — schedule a new qthread."""
        self.machine.cost.charge_task(self.machine.scheduler.current())
        task = self._make_task(fn, args, name=name)
        self._outstanding += 1
        self._emit("on_fork", task.parent, task, self._tid())
        self._queue.append(task)
        self.machine.scheduler.yield_point()
        return task

    def _execute(self, task: QTask) -> object:
        tid = self._tid()
        self.machine.cost.charge_schedule(self.machine.scheduler.current())
        task.exec_thread = tid
        self._task_stack.setdefault(tid, []).append(task)
        self._emit("on_task_begin", task, tid)
        with self.ctx.function(task.name, line=0):
            task.result = task.fn(*task.args)
        self._emit("on_task_end", task, tid)
        self._task_stack[tid].pop()
        task.done = True
        self._outstanding -= 1
        self.machine.scheduler.yield_point()
        return task.result

    # -- FEB operations ------------------------------------------------------------------

    def _addr(self, target) -> int:
        return target.addr if isinstance(target, Buffer) else int(target)

    def writeEF(self, target, value: object) -> None:
        """Wait until empty, write the value, mark full."""
        addr = self._addr(target)
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        self.machine.scheduler.block_until(
            lambda: not self.feb.is_full(addr), f"writeEF {addr:#x}")
        self.ctx.write_mem(addr, 8)
        gen = self.feb.fill(addr, value)
        self._emit("on_feb_fill", addr, gen, self._tid())

    def writeF(self, target, value: object) -> None:
        """Unconditional write + mark full (no waiting)."""
        addr = self._addr(target)
        self.ctx.write_mem(addr, 8)
        gen = self.feb.fill(addr, value)
        self._emit("on_feb_fill", addr, gen, self._tid())

    def readFE(self, target) -> object:
        """Wait until full, read, mark empty (consume)."""
        addr = self._addr(target)
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        self.machine.scheduler.block_until(
            lambda: self.feb.is_full(addr), f"readFE {addr:#x}")
        gen = self.feb.word(addr).generation
        # acquire first: the read itself must land in the post-edge segment
        self._emit("on_feb_consume", addr, gen, self._tid(), True)
        self.ctx.read_mem(addr, 8)
        return self.feb.drain(addr)

    def readFF(self, target) -> object:
        """Wait until full, read, leave full."""
        addr = self._addr(target)
        self.machine.cost.charge_sync(self.machine.scheduler.current())
        self.machine.scheduler.block_until(
            lambda: self.feb.is_full(addr), f"readFF {addr:#x}")
        gen = self.feb.word(addr).generation
        self._emit("on_feb_consume", addr, gen, self._tid(), False)
        self.ctx.read_mem(addr, 8)
        return self.feb.peek(addr)


def make_qthreads_env(machine: Machine, *, nworkers: int = 4,
                      source_file: str = "main.c") -> QthreadsEnv:
    """Build the GuestContext + QthreadsEnv pair for one run."""
    ctx = GuestContext(machine, source_file=source_file, nthreads=nworkers)
    env = QthreadsEnv(ctx, nworkers=nworkers)
    ctx.extensions["qthreads"] = env
    return env
