"""Simulated Qthreads runtime: lightweight tasks + full/empty bits.

The paper (Section III-A-c) lists Qthreads support as future work, noting
that its full/empty-bit (FEB) primitives "require subtle extensions to
Taskgrind semantics" and that basic tasking "should be instrumentable".
This package provides that basic surface:

* ``qthread_fork``-style task spawning over the shared worker-pool design;
* FEB words: ``writeEF`` (wait-empty, write, set full), ``readFE``
  (wait-full, read, set empty), ``readFF`` (wait-full, read, keep full) —
  the producer/consumer synchronisation Qthreads builds everything on.

The matching Taskgrind shim lives in :mod:`repro.core.qthreads_shim`: FEB
transfers become happens-before edges from the fulfilling write's segment to
the consuming read's next segment.
"""

from repro.qthreads.feb import FebTable, FebWord
from repro.qthreads.runtime import (QthreadsEnv, QthreadsObserver, QTask,
                                    make_qthreads_env)

__all__ = ["FebTable", "FebWord", "QthreadsEnv", "QthreadsObserver",
           "QTask", "make_qthreads_env"]
