"""repro — a simulated reproduction of Taskgrind (Correctness'24 @ SC24).

Taskgrind is a Valgrind tool for determinacy-race analysis of task-parallel
programs (OpenMP, Cilk).  This package reproduces the paper's entire system
in pure Python over a deterministic simulated process: the instrumentation
substrate, the task-parallel runtimes, Taskgrind itself, the comparator
tools of the evaluation, and the harnesses regenerating every table and
figure.

The 60-second tour::

    from repro import Machine, TaskgrindTool, make_env, format_report

    machine = Machine(seed=0)
    tool = TaskgrindTool()
    machine.add_tool(tool)
    env = make_env(machine, nthreads=4)
    env.rt.ompt.register(tool.make_ompt_shim())

    def program():
        with env.ctx.function("main", line=1):
            x = env.ctx.malloc(8, line=3)
            def body():
                env.task(lambda tv: x.write(0, line=7))
                env.task(lambda tv: x.write(0, line=10))   # races!
                env.taskwait()
            env.parallel_single(body)

    machine.run(program)
    for report in tool.finalize():
        print(format_report(report))

Package map (details in each subpackage's docstring):

* :mod:`repro.machine` — the simulated process + cost model
* :mod:`repro.vex` — the Valgrind-core-style instrumentation layer
* :mod:`repro.openmp` / :mod:`repro.cilk` / :mod:`repro.qthreads` — runtimes
* :mod:`repro.core` — Taskgrind (segments, Algorithm 1, suppressions)
* :mod:`repro.baselines` — Archer, TaskSanitizer, ROMP, SP-bags models
* :mod:`repro.workloads` — the LULESH proxy and synthetic kernels
* :mod:`repro.bench` — the Table I / Table II / Fig. 4 harnesses
"""

from repro.baselines.archer import ArcherTool
from repro.baselines.romp import RompTool
from repro.baselines.tasksanitizer import TaskSanitizerTool
from repro.core.reports import RaceReport, format_report
from repro.core.tool import TaskgrindOptions, TaskgrindTool
from repro.machine.machine import Machine
from repro.openmp.api import OmpEnv, make_env

__version__ = "1.0.0"

__all__ = [
    "Machine", "OmpEnv", "make_env",
    "TaskgrindTool", "TaskgrindOptions", "RaceReport", "format_report",
    "ArcherTool", "TaskSanitizerTool", "RompTool",
    "__version__",
]
